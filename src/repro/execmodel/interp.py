"""Functional interpreter for Fortran 77 and Cedar Fortran ASTs.

The interpreter exists to *verify transformations*: running the original
and the restructured program on the same inputs must give the same
results.  Parallel loops are executed worker-by-worker — each simulated
processor gets its own loop-local scope, runs the preamble, executes its
share of the iterations (self-scheduling order: worker ``w`` takes
iterations ``w, w+P, …``), then the postamble — so privatization,
scalar expansion, reduction partials and last-value code are all checked
for real.

Limitations (documented, enforced): GOTO works only between statements of
the same statement list; no I/O beyond ``print``/``read`` item queues;
character data is not modelled.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.cedar import nodes as C
from repro.cedar.library import CEDAR_LIBRARY
from repro.errors import InterpreterBudgetError, InterpreterError
from repro.fortran import ast_nodes as F
from repro.fortran.intrinsics import INTRINSICS
from repro.fortran.symtab import SymbolTable, build_symbol_table
from repro.execmodel.values import DTYPES, FArray, Scope

if TYPE_CHECKING:  # pragma: no cover
    from repro.execmodel.shadow import ShadowRecorder

def _np_sign(a, b):
    # Fortran SIGN: |a| carrying b's arithmetic sign, with SIGN(a, -0.0)
    # = +|a| (np.copysign would propagate the negative zero).
    return np.where(np.greater_equal(b, 0), np.abs(a), -np.abs(a))


def _np_nint(x):
    return np.where(np.greater_equal(x, 0), np.floor(x + 0.5),
                    -np.floor(-x + 0.5)).astype(np.int64)


def _np_min(*xs):
    # n-ary, unlike np.minimum: np.minimum(a, b, c) treats c as out=.
    out = xs[0]
    for x in xs[1:]:
        out = np.minimum(out, x)
    return out


def _np_max(*xs):
    out = xs[0]
    for x in xs[1:]:
        out = np.maximum(out, x)
    return out


def _np_int(x):
    return np.asarray(np.trunc(x)).astype(np.int64)


def _np_float(x):
    return np.asarray(x).astype(np.float64)


#: numpy equivalents for intrinsics applied to array sections.  Every
#: entry must agree elementwise with the scalar INTRINSICS callable —
#: tests/execmodel/test_intrinsic_consistency.py cross-checks them.
_NP_FUNCS = {
    "sqrt": np.sqrt, "dsqrt": np.sqrt,
    "abs": np.abs, "dabs": np.abs, "iabs": np.abs,
    "exp": np.exp, "dexp": np.exp,
    "log": np.log, "alog": np.log, "dlog": np.log,
    "log10": np.log10, "alog10": np.log10,
    "sin": np.sin, "dsin": np.sin, "cos": np.cos, "dcos": np.cos,
    "tan": np.tan, "atan": np.arctan, "datan": np.arctan,
    "atan2": np.arctan2, "datan2": np.arctan2,
    "asin": np.arcsin, "acos": np.arccos,
    "min": _np_min, "max": _np_max, "min0": _np_min, "max0": _np_max,
    "amin1": _np_min, "amax1": _np_max, "dmin1": _np_min, "dmax1": _np_max,
    # Fortran MOD truncates toward zero (result carries the *dividend*'s
    # sign); np.mod is floored division and follows the divisor instead.
    "mod": np.fmod, "amod": np.fmod, "dmod": np.fmod,
    "sign": _np_sign, "isign": _np_sign,
    "dim": lambda a, b: np.maximum(a - b, 0),
    "nint": _np_nint,
    "int": _np_int, "ifix": _np_int, "idint": _np_int,
    "float": _np_float, "real": _np_float, "dble": _np_float,
    "sngl": _np_float,
    "tanh": np.tanh, "sinh": np.sinh, "cosh": np.cosh,
}


class _GotoSignal(Exception):
    def __init__(self, label: int):
        self.label = label


class _ReturnSignal(Exception):
    pass


class _StopSignal(Exception):
    def __init__(self, message: Optional[str]):
        self.message = message


#: the three execution engine tiers, slowest (reference) first
ENGINES = ("tree", "compiled", "source")


class Interpreter:
    """Executes program units of one source file."""

    #: default global statement budget per :meth:`call` — generous enough
    #: for every workload at validation sizes, small enough to stop a
    #: livelocked program (e.g. a GOTO cycle) in bounded time
    STEP_BUDGET = 50_000_000

    def __init__(self, sf: F.SourceFile, processors: int = 4,
                 inputs: list[float] | None = None,
                 shadow: "ShadowRecorder | None" = None,
                 step_budget: int | None = STEP_BUDGET,
                 engine: str | None = None):
        """``shadow`` is an optional
        :class:`repro.execmodel.shadow.ShadowRecorder`; when given, every
        shared-storage access inside parallel DOALL loops is logged and
        cross-iteration conflicts are collected on ``shadow.conflicts``.

        ``step_budget`` caps the total statements one :meth:`call` may
        execute (``None`` disables the guard); exhausting it raises
        :class:`repro.errors.InterpreterBudgetError` carrying the source
        line of the statement that tripped the budget.

        ``engine`` selects ``"tree"`` (the reference tree-walk),
        ``"compiled"`` (:mod:`repro.execmodel.compiled` closures —
        numerics-identical, several times faster) or ``"source"``
        (:mod:`repro.execmodel.source_jit` — cached Python/NumPy source
        modules with generalized loop-nest vectorization; falls back
        per loop to the closure tier, and from there to the tree walk).
        A shadow recorder forces the tree-walk: race instrumentation
        lives on that path.  ``engine=None`` (the default) resolves to
        ``$REPRO_ENGINE`` when set, else ``"tree"`` — harnesses that
        construct interpreters without an explicit engine inherit the
        sweep-wide selection."""
        if engine is None:
            engine = os.environ.get("REPRO_ENGINE") or "tree"
        if engine not in ENGINES:
            raise InterpreterError(f"unknown engine {engine!r}")
        self.sf = sf
        self.units = {u.name: u for u in sf.units}
        self.tables: dict[str, SymbolTable] = {
            u.name: build_symbol_table(u) for u in sf.units}
        self.processors = processors
        self.outputs: list[list[Any]] = []
        self.inputs = list(inputs or [])
        self.commons: dict[str, dict[str, Any]] = {}
        self.shadow = shadow
        self.step_budget = step_budget
        self._steps = 0
        self.engine = engine if shadow is None else "tree"
        self._compiler = None
        if self.engine == "compiled":
            from repro.execmodel.compiled import ClosureCompiler

            self._compiler = ClosureCompiler(self)
            # instance attribute shadows the method: every recursive
            # self.exec_body — unit bodies, loop bodies, _invoke —
            # routes through the compiler
            self.exec_body = self._compiler.exec_body
        elif self.engine == "source":
            from repro.execmodel.source_jit import SourceJit

            self._compiler = SourceJit(self)
            self.exec_body = self._compiler.exec_body

    # ------------------------------------------------------------------

    def call(self, name: str, *args: Any) -> dict[str, Any]:
        """Call a subroutine/program with Python values.

        Arrays pass as numpy arrays (modified in place); scalars by value
        with their final values returned.  Returns the final values of all
        dummy arguments (and, for functions, the key ``__result__``).
        """
        unit = self.units.get(name)
        if unit is None:
            raise InterpreterError(f"no unit named {name!r}")
        if len(args) != len(unit.args):
            raise InterpreterError(
                f"{name} expects {len(unit.args)} args, got {len(args)}")
        self._steps = 0
        scope = self._unit_scope(unit)
        for dummy, actual in zip(unit.args, args):
            if isinstance(actual, np.ndarray):
                sym = self.tables[name].lookup(dummy)
                lowers = tuple(
                    self._const_lower(b.lower) for b in sym.dims) \
                    if sym and sym.is_array else (1,) * actual.ndim
                scope.declare(dummy, FArray(actual, lowers))
            else:
                scope.declare(dummy, actual)
        from repro.telemetry import span

        with span("execute", entry=name, engine=self.engine):
            try:
                self.exec_body(unit.body, scope, name)
            except _ReturnSignal:
                pass
            except _StopSignal:
                pass
        out = {d: self._export(scope.vars.get(d)) for d in unit.args}
        if isinstance(unit, F.Function):
            out["__result__"] = self._export(scope.vars.get(name))
        return out

    @staticmethod
    def _export(v: Any) -> Any:
        if isinstance(v, FArray):
            return v.data
        return v

    def _const_lower(self, e: F.Expr) -> int:
        from repro.analysis.expr import const_value

        v = const_value(e)
        return int(v) if v is not None else 1

    # ------------------------------------------------------------------

    def _unit_scope(self, unit: F.ProgramUnit) -> Scope:
        scope = Scope()
        st = self.tables[unit.name]
        # PARAMETER constants
        params: dict[str, int | float] = {}
        for sym in st.symbols.values():
            if sym.is_parameter and sym.param_value is not None:
                params[sym.name] = self._eval_const(sym.param_value, params)
                scope.declare(sym.name, params[sym.name])
        # declared arrays (locals): allocate when bounds are constant
        for sym in st.symbols.values():
            if sym.is_array and not sym.is_dummy:
                bounds = []
                ok = True
                for b in sym.dims:
                    lo = self._try_const(b.lower, params)
                    hi = self._try_const(b.upper, params) \
                        if b.upper is not None else None
                    if lo is None or hi is None:
                        ok = False
                        break
                    bounds.append((int(lo), int(hi)))
                if ok:
                    arr = FArray.zeros(sym.type, bounds)
                    scope.declare(sym.name, arr)
        # COMMON storage shared across units; scalars live in 0-d boxes so
        # every unit mutates the same cell
        for block, names in st.common_blocks.items():
            store = self.commons.setdefault(block, {})
            for n in names:
                if n in store:
                    scope.declare(n, store[n])
                elif n in scope.vars:  # array allocated above
                    store[n] = scope.vars[n]
                else:
                    sym = st.lookup(n)
                    ftype = sym.type if sym else "real"
                    box = FArray(np.zeros((), dtype=DTYPES.get(
                        ftype, np.float64)), ())
                    store[n] = box
                    scope.declare(n, box)
        # DATA statements
        for spec in unit.specs:
            if isinstance(spec, F.DataStmt):
                for tgt, val in zip(spec.names, spec.values):
                    v = self._eval_const(val, params)
                    if isinstance(tgt, F.Var):
                        scope.declare(tgt.name, v)
        return scope

    def _try_const(self, e: Optional[F.Expr], params) -> Optional[float]:
        if e is None:
            return None
        from repro.analysis.expr import const_value

        v = const_value(e)
        if v is not None:
            return v
        if isinstance(e, F.Var) and e.name in params:
            return params[e.name]
        from repro.analysis.expr import linearize

        le = linearize(e, {k: int(v) for k, v in params.items()
                           if isinstance(v, (int,))})
        if le is not None and le.is_constant:
            return le.const
        return None

    def _eval_const(self, e: F.Expr, params) -> Any:
        v = self._try_const(e, params)
        if v is None:
            raise InterpreterError("non-constant initializer")
        return v

    # ------------------------------------------------------------------
    # statement execution

    def exec_body(self, stmts: list[F.Stmt], scope: Scope,
                  unit_name: str) -> None:
        labels = {s.label: i for i, s in enumerate(stmts)
                  if s.label is not None}
        # hot loop: hoist everything invariant out of the trip
        exec_stmt = self.exec_stmt
        budget = self.step_budget
        pc, n = 0, len(stmts)
        while pc < n:
            self._steps += 1
            if budget is not None and self._steps > budget:
                raise InterpreterBudgetError(
                    f"statement budget of {budget} exceeded in "
                    f"{unit_name} (livelock?)",
                    line=getattr(stmts[pc], "line", None))
            try:
                exec_stmt(stmts[pc], scope, unit_name)
            except _GotoSignal as g:
                if g.label in labels:
                    pc = labels[g.label]
                    continue
                raise
            pc += 1

    def exec_stmt(self, s: F.Stmt, scope: Scope, unit: str) -> None:
        # memoized type dispatch: the first statement of each concrete
        # class walks the subclass-aware chain (ParallelDo before DoLoop
        # — it *is* a DoLoop); every later one is a single dict hit
        handler = _STMT_HANDLERS.get(type(s))
        if handler is None:
            handler = _resolve_handler(type(s), _STMT_CHAIN)
            if handler is None:
                raise InterpreterError(
                    f"cannot execute {type(s).__name__}")
            _STMT_HANDLERS[type(s)] = handler
        handler(self, s, scope, unit)

    # -- statement handlers (bound via _STMT_CHAIN) -------------------------

    def _exec_assign(self, s: F.Assign, scope: Scope, unit: str) -> None:
        self._assign(s.target, self.eval(s.value, scope, unit), scope, unit)

    def _exec_if_block(self, s: F.IfBlock, scope: Scope, unit: str) -> None:
        for cond, body in s.arms:
            if cond is None or self._truth(self.eval(cond, scope, unit)):
                self.exec_body(body, scope, unit)
                return

    def _exec_logical_if(self, s: F.LogicalIf, scope: Scope,
                         unit: str) -> None:
        if self._truth(self.eval(s.cond, scope, unit)):
            self.exec_stmt(s.stmt, scope, unit)

    def _exec_goto(self, s: F.Goto, scope: Scope, unit: str) -> None:
        raise _GotoSignal(s.target)

    def _exec_computed_goto(self, s: F.ComputedGoto, scope: Scope,
                            unit: str) -> None:
        k = int(self.eval(s.index, scope, unit))
        if 1 <= k <= len(s.targets):
            raise _GotoSignal(s.targets[k - 1])

    def _exec_return(self, s: F.ReturnStmt, scope: Scope, unit: str) -> None:
        raise _ReturnSignal()

    def _exec_stop(self, s: F.StopStmt, scope: Scope, unit: str) -> None:
        raise _StopSignal(s.message)

    def _exec_print(self, s: F.PrintStmt, scope: Scope, unit: str) -> None:
        self.outputs.append([self._scalarize(self.eval(i, scope, unit))
                             for i in s.items])

    def _exec_read(self, s: F.ReadStmt, scope: Scope, unit: str) -> None:
        for item in s.items:
            if not self.inputs:
                raise InterpreterError("input queue exhausted")
            self._assign(item, self.inputs.pop(0), scope, unit)

    def _exec_sync(self, s: F.Stmt, scope: Scope, unit: str) -> None:
        # synchronization: functional no-ops under simulation, but the
        # race detector tracks critical sections so lock-protected
        # accesses are not reported as conflicts
        if self.shadow is not None:
            if isinstance(s, C.LockStmt):
                self.shadow.acquire(s.name)
            elif isinstance(s, C.UnlockStmt):
                self.shadow.release(s.name)

    def _exec_noop(self, s: F.Stmt, scope: Scope, unit: str) -> None:
        return  # declarations/CONTINUE in executable position

    # -- loops -------------------------------------------------------------

    def _loop_range(self, s, scope: Scope, unit: str) -> range:
        lo = int(self.eval(s.start, scope, unit))
        hi = int(self.eval(s.end, scope, unit))
        step = int(self.eval(s.step, scope, unit)) if s.step is not None else 1
        if step == 0:
            raise InterpreterError("zero DO step")
        return range(lo, hi + (1 if step > 0 else -1), step)

    def _do_loop(self, s: F.DoLoop, scope: Scope, unit: str) -> None:
        r = self._loop_range(s, scope, unit)
        # resolve the index cell once: scope.set per iteration walks the
        # scope chain; the containing scope cannot change mid-loop
        var = s.var
        sc = scope.lookup_scope(var)
        if sc is None:
            sc = scope._root()
        cell = sc.vars
        body = s.body
        exec_body = self.exec_body
        for v in r:
            cell[var] = v
            exec_body(body, scope, unit)

    def _parallel_do(self, s: C.ParallelDo, scope: Scope, unit: str) -> None:
        iters = list(self._loop_range(s, scope, unit))
        if s.order == "doacross":
            # ordered loop: run iterations in order under one worker scope
            # per iteration batch; cascade sync is a no-op sequentially.
            # Not race-checked: carried dependences are covered by the
            # await/advance synchronization by construction.
            wscope = self._worker_scope(s, scope, unit)
            self.exec_body(s.preamble, wscope, unit)
            for v in iters:
                wscope.set(s.var, v)
                self.exec_body(s.body, wscope, unit)
            self.exec_body(s.postamble, wscope, unit)
            return
        shadow = self.shadow
        ctx = shadow.open_loop(self._loop_label(s)) if shadow is not None \
            else None
        p = max(1, min(self.processors, len(iters) or 1))
        try:
            for w in range(p):
                mine = iters[w::p]
                if not mine and not s.preamble and not s.postamble:
                    continue
                wscope = self._worker_scope(s, scope, unit)
                if ctx is not None:
                    shadow.begin_worker(ctx, wscope)
                    shadow.suspend(ctx)
                try:
                    self.exec_body(s.preamble, wscope, unit)
                finally:
                    if ctx is not None:
                        shadow.resume(ctx)
                for v in mine:
                    if ctx is not None:
                        shadow.begin_iteration(ctx, v)
                    wscope.set(s.var, v)
                    self.exec_body(s.body, wscope, unit)
                if ctx is not None:
                    shadow.suspend(ctx)
                try:
                    self.exec_body(s.postamble, wscope, unit)
                finally:
                    if ctx is not None:
                        shadow.resume(ctx)
        finally:
            if ctx is not None:
                shadow.close_loop(ctx)

    @staticmethod
    def _loop_label(s: C.ParallelDo) -> str:
        where = f" @ line {s.line}" if s.line is not None else ""
        return f"{s.keyword} do {s.var}{where}"

    def _worker_scope(self, s: C.ParallelDo, scope: Scope, unit: str) -> Scope:
        w = Scope(parent=scope)
        w.declare(s.var, 0)
        for decl in s.locals_:
            if isinstance(decl, F.TypeDecl):
                for ent in decl.entities:
                    if ent.dims:
                        bounds = []
                        for d in ent.dims:
                            lo = (int(self.eval(d.lower, scope, unit))
                                  if d.lower is not None else 1)
                            if d.upper is None:
                                raise InterpreterError(
                                    f"assumed-size loop-local {ent.name!r}")
                            hi = int(self.eval(d.upper, scope, unit))
                            bounds.append((lo, hi))
                        w.declare(ent.name,
                                  FArray.zeros(decl.type.base, bounds))
                    else:
                        zero = 0 if decl.type.base == "integer" else 0.0
                        w.declare(ent.name, zero)
        return w

    def _where(self, s: C.WhereStmt, scope: Scope, unit: str) -> None:
        mask = np.asarray(self.eval(s.mask, scope, unit), dtype=bool)
        for body, invert in ((s.body, False), (s.elsewhere, True)):
            m = ~mask if invert else mask
            for st in body:
                if not isinstance(st, F.Assign):
                    raise InterpreterError("WHERE bodies hold assignments only")
                target_view = self._lvalue_view(st.target, scope, unit)
                value = self.eval(st.value, scope, unit)
                value = np.broadcast_to(np.asarray(value), target_view.shape)
                target_view[m] = value[m]

    # -- calls --------------------------------------------------------------

    def _call_stmt(self, s: F.CallStmt, scope: Scope, unit: str) -> None:
        if s.name in CEDAR_LIBRARY:
            self._library_call(s, scope, unit)
            return
        if s.name in ("await", "advance", "lock", "unlock", "post", "wait"):
            return
        callee = self.units.get(s.name)
        if callee is None:
            raise InterpreterError(f"call to unknown routine {s.name!r}")
        self._invoke(callee, s.args, scope, unit)

    def _invoke(self, callee: F.ProgramUnit, actuals: list[F.Expr],
                scope: Scope, unit: str) -> Any:
        cscope = self._unit_scope(callee)
        copy_back: list[tuple[str, F.Expr]] = []
        for dummy, actual in zip(callee.args, actuals):
            dsym = self.tables[callee.name].lookup(dummy)
            if isinstance(actual, F.Var) and scope.has(actual.name):
                v = scope.get(actual.name)
                if isinstance(v, FArray):
                    if dsym is not None and dsym.is_array:
                        lowers = tuple(self._const_lower(b.lower)
                                       for b in dsym.dims)
                        reshaped = self._reshape_for_dummy(v, dsym, cscope)
                        cscope.declare(dummy, reshaped)
                    else:
                        cscope.declare(dummy, v)
                else:
                    cscope.declare(dummy, v)
                    copy_back.append((dummy, actual))
            elif isinstance(actual, (F.ArrayRef, F.Apply)) and \
                    not any(isinstance(x, F.RangeExpr) for x in
                            (actual.subscripts if isinstance(actual, F.ArrayRef)
                             else actual.args)):
                v = self.eval(actual, scope, unit)
                cscope.declare(dummy, v)
                copy_back.append((dummy, actual))
            else:
                cscope.declare(dummy, self.eval(actual, scope, unit))
        try:
            self.exec_body(callee.body, cscope, callee.name)
        except _ReturnSignal:
            pass
        for dummy, actual in copy_back:
            self._assign(actual, cscope.get(dummy), scope, unit)
        if isinstance(callee, F.Function):
            return cscope.vars.get(callee.name)
        return None

    def _reshape_for_dummy(self, v: FArray, dsym, cscope: Scope) -> FArray:
        """Handle rank/extent differences (sequence association)."""
        dims = []
        ok = True
        for b in dsym.dims:
            lo = self._const_lower(b.lower)
            if b.upper is None:
                ok = False
                break
            from repro.analysis.expr import const_value

            hi = const_value(b.upper)
            if hi is None:
                hi_v = cscope.vars.get(getattr(b.upper, "name", None))
                hi = int(hi_v) if hi_v is not None else None
            if hi is None:
                ok = False
                break
            dims.append((lo, int(hi)))
        if not ok:
            return v  # assumed-size or symbolic: share storage as-is
        want_shape = tuple(hi - lo + 1 for lo, hi in dims)
        if want_shape == v.data.shape:
            return FArray(v.data, tuple(lo for lo, _ in dims))
        if int(np.prod(want_shape)) <= v.data.size:
            flat = v.data.reshape(-1, order="F")[: int(np.prod(want_shape))]
            return FArray(flat.reshape(want_shape, order="F"),
                          tuple(lo for lo, _ in dims))
        raise InterpreterError("actual array smaller than dummy")

    def _library_call(self, s: F.CallStmt, scope: Scope, unit: str) -> None:
        if s.name == "ces_linrec":
            x_view = self._lvalue_view(s.args[0], scope, unit)
            b = np.asarray(self.eval(s.args[1], scope, unit), dtype=float)
            c = np.asarray(self.eval(s.args[2], scope, unit), dtype=float)
            # seed with the element before the section (x(lo-1)) when the
            # recurrence starts past the array base; else 0
            seed = 0.0
            arr, lo = self._section_base(s.args[0], scope, unit)
            if arr is not None and lo is not None and lo > arr.lowers[0]:
                seed = float(arr.get((lo - 1,)))
            acc = seed
            out = np.empty_like(c)
            for i in range(len(c)):
                acc = acc * b[i] + c[i]
                out[i] = acc
            x_view[...] = out
            return
        raise InterpreterError(f"library routine {s.name!r} not callable "
                               f"as a subroutine")

    def _section_base(self, e: F.Expr, scope: Scope, unit: str):
        if isinstance(e, F.ArrayRef) and len(e.subscripts) == 1 \
                and isinstance(e.subscripts[0], F.RangeExpr):
            arr = scope.get(e.name)
            rng = e.subscripts[0]
            lo = (int(self.eval(rng.lo, scope, unit))
                  if rng.lo is not None else None)
            if isinstance(arr, FArray):
                return arr, lo
        return None, None

    # ------------------------------------------------------------------
    # expressions

    def eval(self, e: F.Expr, scope: Scope, unit: str) -> Any:
        # same memoized type dispatch as exec_stmt — this is the hottest
        # call site in the whole simulator
        handler = _EVAL_HANDLERS.get(type(e))
        if handler is None:
            handler = _resolve_handler(type(e), _EVAL_CHAIN)
            if handler is None:
                raise InterpreterError(
                    f"cannot evaluate {type(e).__name__}")
            _EVAL_HANDLERS[type(e)] = handler
        return handler(self, e, scope, unit)

    def _eval_lit(self, e, scope: Scope, unit: str):
        return e.value

    def _eval_var(self, e: F.Var, scope: Scope, unit: str):
        sc = scope.lookup_scope(e.name)
        v = sc.vars[e.name] if sc is not None else None
        if v is None:
            raise InterpreterError(f"undefined variable {e.name!r}")
        sh = self.shadow
        if isinstance(v, FArray):
            if sh is not None and sh.recording:
                sh.record_array(v, e.name, "r",
                                idx=() if v.data.ndim == 0 else None)
            if v.data.ndim == 0:  # COMMON scalar box
                return v.data.item()
            return v.data
        if sh is not None and sh.recording:
            sh.record_scalar(sc, e.name, "r")
        return v

    def _eval_unop(self, e: F.UnOp, scope: Scope, unit: str):
        v = self.eval(e.operand, scope, unit)
        if e.op == "-":
            return -v
        if e.op == "+":
            return v
        if e.op == ".not.":
            return ~np.asarray(v) if isinstance(v, np.ndarray) else not v
        raise InterpreterError(f"cannot evaluate {type(e).__name__}")

    def _ref_or_call(self, e, scope: Scope, unit: str):
        subs = e.subscripts if isinstance(e, F.ArrayRef) else e.args
        if scope.has(e.name):
            v = scope.get(e.name)
            if isinstance(v, FArray):
                sh = self.shadow
                if any(isinstance(x, F.RangeExpr) for x in subs):
                    specs = [self._spec(x, scope, unit) for x in subs]
                    if sh is not None and sh.recording:
                        sh.record_array(v, e.name, "r", specs=specs)
                    return v.slice_of(specs)
                idx = tuple(int(self.eval(x, scope, unit)) for x in subs)
                if sh is not None and sh.recording:
                    sh.record_array(v, e.name, "r", idx=idx)
                return v.get(idx)
        # not an array: function call
        return self._func_call(
            F.FuncCall(e.name, list(subs),
                       intrinsic=e.name in INTRINSICS), scope, unit)

    def _spec(self, x: F.Expr, scope: Scope, unit: str):
        if isinstance(x, F.RangeExpr):
            lo = self.eval(x.lo, scope, unit) if x.lo is not None else None
            hi = self.eval(x.hi, scope, unit) if x.hi is not None else None
            st = (self.eval(x.stride, scope, unit)
                  if x.stride is not None else None)
            return (lo, hi, st)
        return int(self.eval(x, scope, unit))

    def _func_call(self, e: F.FuncCall, scope: Scope, unit: str):
        routine = CEDAR_LIBRARY.get(e.name)
        if routine is not None:
            args = [self.eval(a, scope, unit) for a in e.args]
            return routine.fn(*args)
        callee = self.units.get(e.name)
        if callee is not None:
            return self._invoke(callee, e.args, scope, unit)
        info = INTRINSICS.get(e.name)  # one lookup, not membership + index
        if info is not None:
            args = [self.eval(a, scope, unit) for a in e.args]
            if any(isinstance(a, np.ndarray) for a in args):
                fn = _NP_FUNCS.get(e.name)
                if fn is None:
                    raise InterpreterError(
                        f"intrinsic {e.name!r} not vectorized")
                return fn(*args)
            return info.fn(*args)
        raise InterpreterError(f"unknown function {e.name!r}")

    def _binop(self, e: F.BinOp, scope: Scope, unit: str):
        l = self.eval(e.left, scope, unit)
        r = self.eval(e.right, scope, unit)
        op = e.op
        if op == "+":
            return l + r
        if op == "-":
            return l - r
        if op == "*":
            return l * r
        if op == "/":
            if self._is_int(l) and self._is_int(r):
                return np.trunc(np.divide(l, r)).astype(np.int64) \
                    if isinstance(l, np.ndarray) or isinstance(r, np.ndarray) \
                    else int(l / r)
            return l / r
        if op == "**":
            return l ** r
        if op == ".lt.":
            return l < r
        if op == ".le.":
            return l <= r
        if op == ".eq.":
            return l == r
        if op == ".ne.":
            return l != r
        if op == ".gt.":
            return l > r
        if op == ".ge.":
            return l >= r
        if op == ".and.":
            return np.logical_and(l, r) if self._any_arr(l, r) else (l and r)
        if op == ".or.":
            return np.logical_or(l, r) if self._any_arr(l, r) else (l or r)
        if op == ".eqv.":
            return np.equal(l, r) if self._any_arr(l, r) else (bool(l) == bool(r))
        if op == ".neqv.":
            return np.not_equal(l, r) if self._any_arr(l, r) \
                else (bool(l) != bool(r))
        raise InterpreterError(f"unknown operator {op!r}")

    @staticmethod
    def _any_arr(*vs) -> bool:
        return any(isinstance(v, np.ndarray) for v in vs)

    @staticmethod
    def _is_int(v) -> bool:
        if isinstance(v, (bool, np.bool_)):
            return False
        if isinstance(v, (int, np.integer)):
            return True
        if isinstance(v, np.ndarray):
            return np.issubdtype(v.dtype, np.integer)
        return False

    @staticmethod
    def _truth(v) -> bool:
        if isinstance(v, np.ndarray):
            raise InterpreterError("array condition in scalar IF")
        return bool(v)

    @staticmethod
    def _scalarize(v):
        if isinstance(v, np.ndarray):
            return v.copy()
        return v

    # ------------------------------------------------------------------
    # assignment

    def _lvalue_view(self, target: F.Expr, scope: Scope, unit: str):
        """A writable numpy view of the target (WHERE bodies, library
        calls).  The shadow recorder logs the full section as a write —
        a deliberate over-approximation for masked assignments."""
        sh = self.shadow
        if isinstance(target, F.Var):
            v = scope.get(target.name)
            if isinstance(v, FArray):
                if sh is not None and sh.recording:
                    sh.record_array(v, target.name, "w",
                                    idx=() if v.data.ndim == 0 else None)
                return v.data
            raise InterpreterError("scalar has no view")
        if isinstance(target, (F.ArrayRef, F.Apply)):
            v = scope.get(target.name)
            if not isinstance(v, FArray):
                raise InterpreterError(f"{target.name!r} is not an array")
            subs = (target.subscripts if isinstance(target, F.ArrayRef)
                    else target.args)
            specs = [self._spec(x, scope, unit) for x in subs]
            if sh is not None and sh.recording:
                sh.record_array(v, target.name, "w", specs=specs)
            return v.slice_of(specs)
        raise InterpreterError("invalid assignment target")

    def _record_scalar_write(self, scope: Scope, name: str) -> None:
        sh = self.shadow
        if sh is not None and sh.recording:
            # an undefined name is about to be created in the root scope
            # (Scope.set semantics) — key it there so later reads match
            containing = scope.lookup_scope(name) or scope._root()
            sh.record_scalar(containing, name, "w")

    def _assign(self, target: F.Expr, value: Any, scope: Scope,
                unit: str) -> None:
        sh = self.shadow
        if isinstance(target, F.Var):
            cur = scope.get(target.name) if scope.has(target.name) else None
            if isinstance(cur, FArray):
                if sh is not None and sh.recording:
                    sh.record_array(cur, target.name, "w",
                                    idx=() if cur.data.ndim == 0 else None)
                cur.data[...] = value
                return
            self._record_scalar_write(scope, target.name)
            if isinstance(cur, (int, np.integer)) and not isinstance(
                    cur, (bool, np.bool_)):
                scope.set(target.name, int(np.trunc(value)))
                return
            if isinstance(value, np.ndarray):
                raise InterpreterError(
                    f"array value assigned to scalar {target.name!r}")
            # type from implicit rules on first assignment
            st = self.tables.get(unit)
            sym = st.lookup(target.name) if st else None
            if sym is not None and sym.type == "integer" and not isinstance(
                    value, (bool, np.bool_)):
                scope.set(target.name, int(np.trunc(value)))
            elif sym is None and target.name[0] in "ijklmn" and not \
                    isinstance(value, (bool, np.bool_)):
                scope.set(target.name, int(np.trunc(value)))
            else:
                scope.set(target.name, value)
            return
        if isinstance(target, (F.ArrayRef, F.Apply)):
            v = scope.get(target.name)
            if not isinstance(v, FArray):
                raise InterpreterError(f"{target.name!r} is not an array")
            subs = (target.subscripts if isinstance(target, F.ArrayRef)
                    else target.args)
            if any(isinstance(x, F.RangeExpr) for x in subs):
                specs = [self._spec(x, scope, unit) for x in subs]
                if sh is not None and sh.recording:
                    sh.record_array(v, target.name, "w", specs=specs)
                view = v.slice_of(specs)
                view[...] = value
            else:
                idx = tuple(int(self.eval(x, scope, unit)) for x in subs)
                if sh is not None and sh.recording:
                    sh.record_array(v, target.name, "w", idx=idx)
                v.set(idx, value)
            return
        raise InterpreterError("invalid assignment target")


# ---------------------------------------------------------------------------
# dispatch tables
#
# exec_stmt/eval resolve handlers through these subclass-aware chains the
# first time each concrete node class appears, then memoize the result in
# a plain dict (_STMT_HANDLERS/_EVAL_HANDLERS).  The chain order mirrors
# the original isinstance ladders — in particular C.ParallelDo precedes
# F.DoLoop, which it subclasses.


def _resolve_handler(t: type, chain):
    for cls, handler in chain:
        if issubclass(t, cls):
            return handler
    return None


_STMT_CHAIN = [
    (F.Assign, Interpreter._exec_assign),
    (C.ParallelDo, Interpreter._parallel_do),
    (F.DoLoop, Interpreter._do_loop),
    (F.IfBlock, Interpreter._exec_if_block),
    (F.LogicalIf, Interpreter._exec_logical_if),
    (C.WhereStmt, Interpreter._where),
    (F.Goto, Interpreter._exec_goto),
    (F.ComputedGoto, Interpreter._exec_computed_goto),
    (F.ContinueStmt, Interpreter._exec_noop),
    (F.CallStmt, Interpreter._call_stmt),
    (F.ReturnStmt, Interpreter._exec_return),
    (F.StopStmt, Interpreter._exec_stop),
    (F.PrintStmt, Interpreter._exec_print),
    (F.ReadStmt, Interpreter._exec_read),
    ((C.AwaitStmt, C.AdvanceStmt, C.LockStmt, C.UnlockStmt,
      C.PostWaitStmt), Interpreter._exec_sync),
    ((F.TypeDecl, F.DimensionStmt, F.CommonStmt, F.ParameterStmt,
      F.DataStmt, F.EquivalenceStmt, F.ImplicitStmt, F.ExternalStmt,
      F.IntrinsicStmt, F.SaveStmt, C.GlobalDecl, C.ClusterDecl,
      C.ProcessCommonStmt), Interpreter._exec_noop),
]
_STMT_HANDLERS: dict[type, Any] = {}

_EVAL_CHAIN = [
    ((F.IntLit, F.RealLit, F.LogicalLit, F.StrLit), Interpreter._eval_lit),
    (F.Var, Interpreter._eval_var),
    ((F.ArrayRef, F.Apply), Interpreter._ref_or_call),
    (F.FuncCall, Interpreter._func_call),
    (F.BinOp, Interpreter._binop),
    (F.UnOp, Interpreter._eval_unop),
]
_EVAL_HANDLERS: dict[type, Any] = {}
