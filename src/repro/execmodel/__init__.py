"""Execution of Fortran 77 / Cedar Fortran ASTs.

Two engines:

- :mod:`repro.execmodel.interp` — a functional interpreter (numpy-backed)
  used to verify that restructured programs compute the same results as
  the originals;
- :mod:`repro.execmodel.perf` — a performance estimator that walks an AST
  with concrete parameter bindings and a machine configuration, pricing
  every operation, memory access, parallel loop and synchronization
  through the :mod:`repro.machine` models.
"""

from repro.execmodel.interp import Interpreter
from repro.execmodel.perf import PerfEstimator, PerfResult

__all__ = ["Interpreter", "PerfEstimator", "PerfResult"]
