"""Runtime value representation for the interpreter."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.errors import InterpreterError

#: numpy dtype per Fortran type
DTYPES = {
    "integer": np.int64,
    "real": np.float64,          # interpreted at double precision
    "doubleprecision": np.float64,
    "logical": np.bool_,
}


@dataclass
class FArray:
    """A Fortran array: numpy storage plus per-dimension lower bounds."""

    data: np.ndarray
    lowers: tuple[int, ...]

    @staticmethod
    def zeros(ftype: str, bounds: list[tuple[int, int]]) -> "FArray":
        shape = tuple(hi - lo + 1 for lo, hi in bounds)
        if any(s < 0 for s in shape):
            raise InterpreterError(f"negative array extent {bounds}")
        return FArray(np.zeros(shape, dtype=DTYPES.get(ftype, np.float64)),
                      tuple(lo for lo, _ in bounds))

    def _offset(self, idx: tuple[int, ...]) -> tuple[int, ...]:
        if len(idx) != self.data.ndim:
            raise InterpreterError(
                f"rank mismatch: {len(idx)} subscripts for rank "
                f"{self.data.ndim} array")
        out = []
        for i, (v, lo, n) in enumerate(zip(idx, self.lowers, self.data.shape)):
            j = int(v) - lo
            if not (0 <= j < n):
                raise InterpreterError(
                    f"subscript {int(v)} out of bounds in dimension {i + 1} "
                    f"[{lo}, {lo + n - 1}]")
            out.append(j)
        return tuple(out)

    def get(self, idx: tuple[int, ...]):
        return self.data[self._offset(idx)]

    def set(self, idx: tuple[int, ...], value) -> None:
        self.data[self._offset(idx)] = value

    def slice_of(self, specs: list[tuple[Any, Any, Any] | int]):
        """Build a numpy view for mixed scalar/section subscripts.

        Each spec is either an int (scalar subscript) or (lo, hi, stride).
        """
        key = []
        for dim, spec in enumerate(specs):
            lo_bound = self.lowers[dim]
            if isinstance(spec, tuple):
                lo, hi, stride = spec
                lo = lo_bound if lo is None else int(lo)
                hi = (lo_bound + self.data.shape[dim] - 1
                      if hi is None else int(hi))
                step = 1 if stride is None else int(stride)
                key.append(slice(lo - lo_bound, hi - lo_bound + 1, step))
            else:
                j = int(spec) - lo_bound
                if not (0 <= j < self.data.shape[dim]):
                    raise InterpreterError(
                        f"subscript {int(spec)} out of bounds")
                key.append(j)
        return self.data[tuple(key)]


class Scope:
    """Lexical scope chain: unit scope, loop-local scopes."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.vars: dict[str, Any] = {}

    def lookup_scope(self, name: str) -> Optional["Scope"]:
        s: Optional[Scope] = self
        while s is not None:
            if name in s.vars:
                return s
            s = s.parent
        return None

    def get(self, name: str) -> Any:
        s = self.lookup_scope(name)
        if s is None:
            raise InterpreterError(f"reference to undefined variable {name!r}")
        return s.vars[name]

    def set(self, name: str, value: Any) -> None:
        s = self.lookup_scope(name)
        if s is None:
            s = self._root()
        s.vars[name] = value

    def declare(self, name: str, value: Any) -> None:
        self.vars[name] = value

    def has(self, name: str) -> bool:
        return self.lookup_scope(name) is not None

    def _root(self) -> "Scope":
        s = self
        while s.parent is not None:
            s = s.parent
        return s
