"""Source-emitting JIT: compile statement lists to Python/NumPy modules.

``Interpreter(engine="source")`` routes every ``exec_body`` through this
module — the third execution tier.  Where the closure tier
(:mod:`repro.execmodel.compiled`) lowers each statement to a Python
closure, this tier emits a real Python/NumPy *source module* per
statement list, compiles it (``compile()``/``exec`` into a private
namespace), and executes the resulting functions.  The emitted text is
cached by the engine's SHA-256 content address (artifact kind
``jit-source`` in :mod:`repro.engine.cache`), so warm runs skip both
analysis and emission; the on-disk store reuses the digest-verified v2
format, so a corrupt module quarantines and recompiles like any other
entry.

The vectorized fast path is generalized beyond the closure tier's
single-statement innermost-DOALL whitelist:

- **loop nests** — a DOALL (or plain sequential DO) whose body is a
  chain of nested loops ending in eligible assignments is lowered to
  one set of broadcast NumPy operations over the full iteration grid;
- **IF-guarded bodies** — ``IF (c) a(i) = e`` and two-arm block IFs
  lower to masked assignment: the guard is evaluated over the whole
  grid (exactly as the scalar loop evaluates it every iteration), and
  the guarded statement's reads, evaluation, and writes happen only on
  the compressed true lanes, so the executed operation set is identical
  to the scalar loop's;
- **reductions** — scalar SUM/PRODUCT accumulators recognized by
  :func:`repro.analysis.reductions.find_reductions` evaluate their
  contributed terms vectorized, then replay the tree walk's exact
  per-iteration accumulation: same left-spine operator order, same
  per-store integer-coercion ladder, same worker-interleaved iteration
  order when the outer axis is a DOALL.  MIN/MAX accumulators lower to
  ``np.minimum.reduce``/``np.maximum.reduce`` when the accumulator and
  contribution provably share a type class.

Every lowering carries the same exactness obligation as the closure
fast path: plain loop-variable subscripts, exactness-whitelisted
intrinsics only (``_VEC_EXACT_INTRINSICS``), reads of written arrays
restricted to the writing iteration's element.  Anything that cannot be
proven bit-identical falls back *per loop* to the closure tier, which
itself falls back per statement to the tree walk — coverage is total.

Signed-zero and NaN treatment of the MIN/MAX lowerings follows the
established whitelist policy (``min``/``max`` are already
exactness-whitelisted elementwise in the closure tier).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.cedar import nodes as C
from repro.cedar.library import CEDAR_LIBRARY
from repro.errors import InterpreterError
from repro.execmodel.compiled import (ClosureCompiler, _NOOP_STMTS,
                                      _VEC_EXACT_INTRINSICS)
from repro.execmodel.values import FArray, Scope
from repro.fortran import ast_nodes as F
from repro.fortran.intrinsics import INTRINSICS

if TYPE_CHECKING:  # pragma: no cover
    from repro.execmodel.interp import Interpreter

#: bump when the emitter changes: keys every cached ``jit-source``
#: artifact so stale module text can never be served to a newer runtime
_JIT_VERSION = 1

#: loop-nest levels the lowerer can walk through
_LOOPS = (F.DoLoop, C.ParallelDo)

#: intrinsics whose result type class is fixed regardless of arguments
_INT_INTRINSICS = frozenset({"int", "ifix", "idint", "nint", "iabs",
                             "isign", "min0", "max0"})
_FLOAT_INTRINSICS = frozenset({"float", "real", "dble", "sngl", "sqrt",
                               "dsqrt", "amin1", "amax1", "dmin1",
                               "dmax1"})
#: intrinsics whose result type class follows their arguments
_POLY_INTRINSICS = frozenset({"abs", "dabs", "min", "max", "sign"})


class _Ineligible(Exception):
    """Internal: the loop (or one statement of it) cannot be lowered."""


def _fmt_literal(v) -> str:
    if isinstance(v, bool):
        return "True" if v else "False"
    if isinstance(v, float):
        if math.isfinite(v):
            return repr(v)
        return f"float({str(v)!r})"
    return repr(v)


class _Runtime:
    """The ``rt`` object handed to every emitted module's ``make()``.

    Holds the per-interpreter state the generated source cannot embed:
    scope access, bounds-checked grid loads/stores, the Fortran
    division/logical helpers, the numpy intrinsic table, and the
    closure-tier fallback for statements the emitter declined.
    """

    def __init__(self, compiler: "SourceJit", stmts: list, unit: str):
        self.compiler = compiler
        self.stmts = stmts
        self.unit = unit
        from repro.execmodel.interp import _NP_FUNCS

        self.np_funcs = _NP_FUNCS

    # -- fallback ladder: source -> closure (-> tree inside closures) --

    def fallback(self, i: int):
        return ClosureCompiler._stmt(self.compiler, self.stmts[i],
                                     self.unit)

    def tally(self, loops: int, fallback: int) -> None:
        self.compiler.vectorized_loops += loops
        self.compiler.source_stmts += loops
        self.compiler.fallback_stmts += fallback

    @property
    def processors(self) -> int:
        return self.compiler.interp.processors

    # -- scope access --------------------------------------------------

    @staticmethod
    def scalar(scope: Scope, name: str):
        sc = scope.lookup_scope(name)
        if sc is None:
            raise InterpreterError(f"undefined variable {name!r}")
        v = sc.vars[name]
        if isinstance(v, FArray):
            d = v.data
            if d.ndim == 0:          # COMMON scalar box
                return d.item()
            return d
        return v

    @staticmethod
    def sset(scope: Scope, name: str, value) -> None:
        scope.set(name, value)

    @staticmethod
    def astore(scope: Scope, name: str, value, coerce_int: bool):
        """Replay ``ClosureCompiler._assign_var`` for one scalar store.

        Returns the stored value exactly as a fresh scope read would see
        it, so a reduction's accumulation loop observes the same
        per-iteration coercions as the tree walk's store-then-reload.
        """
        sc = scope.lookup_scope(name)
        cur = sc.vars[name] if sc is not None else None
        if isinstance(cur, FArray):
            cur.data[...] = value
            d = cur.data
            return d.item() if d.ndim == 0 else d
        if sc is None:
            sc = scope._root()
        if isinstance(cur, (int, np.integer)) and not isinstance(
                cur, (bool, np.bool_)):
            v = int(np.trunc(value))
            sc.vars[name] = v
            return v
        if isinstance(value, np.ndarray):
            raise InterpreterError(
                f"array value assigned to scalar {name!r}")
        if coerce_int and not isinstance(value, (bool, np.bool_)):
            v = int(np.trunc(value))
            sc.vars[name] = v
            return v
        sc.vars[name] = value
        return value

    def error(self, msg: str):
        raise InterpreterError(msg)

    # -- runtime calls replicating the closure tier --------------------

    @staticmethod
    def call(scope: Scope, name: str, vals: tuple):
        if name in CEDAR_LIBRARY:
            return CEDAR_LIBRARY[name].fn(*vals)
        info = INTRINSICS.get(name)
        if info is not None:
            from repro.execmodel.interp import _NP_FUNCS

            for v in vals:
                if isinstance(v, np.ndarray):
                    np_fn = _NP_FUNCS.get(name)
                    if np_fn is None:
                        raise InterpreterError(
                            f"intrinsic {name!r} not vectorized")
                    return np_fn(*vals)
            return info.fn(*vals)
        raise InterpreterError(f"unknown function {name!r}")

    # -- grid loads/stores (bounds-checked like the closure fast path) -

    @staticmethod
    def _grid_key(arr: FArray, parts: tuple) -> tuple:
        key = []
        for dim, part in enumerate(parts):
            lo = arr.lowers[dim]
            n = arr.data.shape[dim]
            if isinstance(part, np.ndarray):
                j = part - lo
                if j.size and (int(j.min()) < 0 or int(j.max()) >= n):
                    bad = int(part.min()) if int(j.min()) < 0 \
                        else int(part.max())
                    raise InterpreterError(
                        f"subscript {bad} out of bounds in dimension "
                        f"{dim + 1} [{lo}, {lo + n - 1}]")
                key.append(j)
            else:
                j = int(part) - lo
                if not (0 <= j < n):
                    raise InterpreterError(
                        f"subscript {j + lo} out of bounds in dimension "
                        f"{dim + 1} [{lo}, {lo + n - 1}]")
                key.append(j)
        return tuple(key)

    def vload(self, scope: Scope, name: str, parts: tuple):
        arr = scope.get(name)
        if not isinstance(arr, FArray):
            raise InterpreterError(f"{name!r} is not an array")
        return arr.data[self._grid_key(arr, parts)]

    def vstore(self, scope: Scope, name: str, parts: tuple,
               value) -> None:
        arr = scope.get(name)
        if not isinstance(arr, FArray):
            raise InterpreterError(f"{name!r} is not an array")
        arr.data[self._grid_key(arr, parts)] = value

    # -- Fortran operator semantics ------------------------------------

    @staticmethod
    def div(l, r):
        from repro.execmodel.interp import Interpreter

        if Interpreter._is_int(l) and Interpreter._is_int(r):
            if isinstance(l, np.ndarray) or isinstance(r, np.ndarray):
                return np.trunc(np.divide(l, r)).astype(np.int64)
            return int(l / r)
        return l / r

    @staticmethod
    def and_(l, r):
        return np.logical_and(l, r) \
            if isinstance(l, np.ndarray) or isinstance(r, np.ndarray) \
            else (l and r)

    @staticmethod
    def or_(l, r):
        return np.logical_or(l, r) \
            if isinstance(l, np.ndarray) or isinstance(r, np.ndarray) \
            else (l or r)

    @staticmethod
    def eqv(l, r):
        return np.equal(l, r) \
            if isinstance(l, np.ndarray) or isinstance(r, np.ndarray) \
            else (bool(l) == bool(r))

    @staticmethod
    def neqv(l, r):
        return np.not_equal(l, r) \
            if isinstance(l, np.ndarray) or isinstance(r, np.ndarray) \
            else (bool(l) != bool(r))

    @staticmethod
    def not_(v):
        return ~np.asarray(v) if isinstance(v, np.ndarray) else not v

    # -- reduction support ---------------------------------------------

    def red_flat(self, value, shape: tuple, doall_outer: bool):
        """Flatten a grid of contributed terms into scalar-loop order.

        C-order ravel is the sequential nest order; a DOALL outer axis
        is permuted into the simulator's worker-interleaved order
        (worker ``w`` takes iterations ``w, w+P, ...``).
        """
        a = np.broadcast_to(np.asarray(value), shape)
        if doall_outer and len(shape) >= 1:
            n0 = shape[0]
            p = max(1, min(self.processors, n0 or 1))
            if p > 1:
                idx = np.concatenate(
                    [np.arange(w, n0, p) for w in range(p)])
                a = a[idx]
        return a.ravel()


def _scalar_locals(node: C.ParallelDo) -> Optional[set]:
    """Names declared by a DOALL's private ``locals_`` when every one is
    a scalar declaration, else None."""
    names: set = set()
    for d in node.locals_:
        if not isinstance(d, F.TypeDecl):
            return None
        for ent in d.entities:
            if ent.dims:
                return None
            names.add(ent.name)
    return names


def _desugar_stripmine(pdo: F.Stmt) -> Optional[C.ParallelDo]:
    """Collapse the restructurer's canonical strip-mined DOALL back to a
    plain elementwise DOALL.

    The memory-hierarchy pass emits::

        PARALLEL DO v = lo, end, B  (private L, U)
          L = min(B, end - v + 1)
          U = v + L - 1
          x(c + v : c + U) = <elementwise section expression>
          ...

    The per-lane blocks ``[v, U]`` tile ``[lo, end]`` disjointly, and
    every statement is an elementwise section assignment evaluated with
    NumPy ufuncs — so executing each statement once over the whole range
    is bit-identical to executing it block-by-block in any block order.
    Returns the rewritten nest (fresh nodes; the original is untouched
    for the fallback path) or None when the shape doesn't match.
    """
    if not isinstance(pdo, C.ParallelDo) or pdo.order != "doall" \
            or pdo.preamble or pdo.postamble:
        return None
    if not isinstance(pdo.step, F.IntLit) or pdo.step.value < 1:
        return None
    blk = pdo.step.value
    names = _scalar_locals(pdo)
    if names is None or len(names) != 2:
        return None
    v = pdo.var
    body = [s for s in pdo.body if not isinstance(s, _NOOP_STMTS)]
    if len(body) < 3:
        return None
    a1, a2, rest = body[0], body[1], body[2:]
    # a1:  L = min(B, end - v + 1)
    if not (isinstance(a1, F.Assign) and isinstance(a1.target, F.Var)
            and a1.target.name in names):
        return None
    lname = a1.target.name
    m = a1.value
    if not (isinstance(m, F.FuncCall) and m.name == "min"
            and len(m.args) == 2 and isinstance(m.args[0], F.IntLit)
            and m.args[0].value == blk):
        return None
    rem = m.args[1]
    if not (isinstance(rem, F.BinOp) and rem.op == "+"
            and isinstance(rem.right, F.IntLit) and rem.right.value == 1
            and isinstance(rem.left, F.BinOp) and rem.left.op == "-"
            and isinstance(rem.left.right, F.Var)
            and rem.left.right.name == v
            and repr(rem.left.left) == repr(pdo.end)):
        return None
    # a2:  U = v + L - 1
    uname = (names - {lname}).pop()
    if not (isinstance(a2, F.Assign) and isinstance(a2.target, F.Var)
            and a2.target.name == uname):
        return None
    u = a2.value
    if not (isinstance(u, F.BinOp) and u.op == "-"
            and isinstance(u.right, F.IntLit) and u.right.value == 1
            and isinstance(u.left, F.BinOp) and u.left.op == "+"
            and isinstance(u.left.left, F.Var) and u.left.left.name == v
            and isinstance(u.left.right, F.Var)
            and u.left.right.name == lname):
        return None

    def bound_split(e: F.Expr, base: str) -> Optional[tuple]:
        """``e`` as ``base``, ``base + c`` or ``c + base`` with an
        offset free of v/L/U: (offset repr, offset node)."""
        if isinstance(e, F.Var) and e.name == base:
            return ("", None)
        if isinstance(e, F.BinOp) and e.op == "+":
            for off, bvar in ((e.left, e.right), (e.right, e.left)):
                if isinstance(bvar, F.Var) and bvar.name == base \
                        and not any(isinstance(n, F.Var)
                                    and n.name in (v, lname, uname)
                                    for n in off.walk()):
                    return (repr(off), off)
        return None

    def rw(e: F.Expr) -> Optional[F.Expr]:
        if isinstance(e, (F.IntLit, F.RealLit, F.LogicalLit)):
            return e
        if isinstance(e, F.Var):
            return None if e.name in (lname, uname) else e
        if isinstance(e, F.BinOp):
            l, r = rw(e.left), rw(e.right)
            return None if l is None or r is None \
                else F.BinOp(e.op, l, r)
        if isinstance(e, F.UnOp):
            x = rw(e.operand)
            return None if x is None else F.UnOp(e.op, x)
        if isinstance(e, F.FuncCall):
            args = [rw(a) for a in e.args]
            return None if any(a is None for a in args) \
                else F.FuncCall(e.name, args, intrinsic=e.intrinsic)
        if isinstance(e, (F.ArrayRef, F.Apply)):
            subs = (e.subscripts if isinstance(e, F.ArrayRef)
                    else e.args)
            parts = []
            for sub in subs:
                if isinstance(sub, F.RangeExpr):
                    if sub.stride is not None or sub.lo is None \
                            or sub.hi is None:
                        return None
                    lo = bound_split(sub.lo, v)
                    hi = bound_split(sub.hi, uname)
                    if lo is None or hi is None or lo[0] != hi[0]:
                        return None
                    parts.append(sub.lo)   # element at lane v
                else:
                    parts.append(rw(sub))
            if any(p is None for p in parts):
                return None
            if isinstance(e, F.ArrayRef):
                return F.ArrayRef(e.name, parts)
            return F.Apply(e.name, parts)
        return None

    new_body: list[F.Stmt] = []
    for st in rest:
        if not (isinstance(st, F.Assign)
                and isinstance(st.target, F.ArrayRef)):
            return None
        nt = rw(st.target)
        nv = rw(st.value)
        if nt is None or nv is None:
            return None
        new_body.append(F.Assign(label=st.label, line=st.line,
                                 target=nt, value=nv))
    return C.ParallelDo(level=pdo.level, order="doall", var=v,
                        start=pdo.start, end=pdo.end, step=None,
                        locals_=[], preamble=[], body=new_body,
                        postamble=[])


class _LoopLowerer:
    """Analysis + Python/NumPy source emission for one loop nest."""

    def __init__(self, jit: "SourceJit", loop: F.Stmt, unit: str):
        self.jit = jit
        self.unit = unit
        self.symtab = jit.interp.tables.get(unit)
        if self.symtab is None:
            raise _Ineligible("no symbol table")
        self.levels: list[F.Stmt] = []
        self.axes: list[str] = []            # loop vars, outer -> inner
        self.private_axes: set[int] = set()  # declared in a PDO's locals
        self.writes: dict[str, tuple] = {}   # array -> per-dim axis mask
        self.red_vars: set[str] = set()
        self.reductions: dict[int, tuple] = {}  # id(stmt) -> lowering
        self.body: list[F.Stmt] = []
        self._uniq = 0
        self._collect_nest(loop)
        self._collect_reductions(loop)
        self._collect_writes()

    # -- structure -----------------------------------------------------

    @staticmethod
    def _plain_level(s: F.Stmt) -> bool:
        if isinstance(s, C.ParallelDo):
            return (s.order == "doall" and not s.preamble
                    and not s.postamble and not s.locals_)
        return isinstance(s, F.DoLoop)

    def _collect_nest(self, loop: F.Stmt) -> None:
        node: F.Stmt = loop
        pending: list[tuple[int, set]] = []
        while True:
            if not self._plain_level(node):
                d = _desugar_stripmine(node)
                if d is not None:
                    node = d
                else:
                    # a DOALL whose private locals declare only inner
                    # loop variables is still plain: worker scopes hide
                    # those names either way (validated below)
                    names = (_scalar_locals(node)
                             if isinstance(node, C.ParallelDo)
                             and node.order == "doall"
                             and not node.preamble
                             and not node.postamble else None)
                    if not names:
                        raise _Ineligible("ineligible nest level")
                    pending.append((len(self.axes), names))
            if node.var in self.axes:
                raise _Ineligible("duplicate loop variable")
            self.levels.append(node)
            self.axes.append(node.var)
            body = node.body
            # declaration/CONTINUE no-ops around a single nested loop do
            # not break the nest (shared-termination DO chains end in a
            # labelled CONTINUE the tree walk also ignores)
            inner = [s for s in body if not isinstance(s, _NOOP_STMTS)]
            if len(inner) == 1 and isinstance(inner[0], _LOOPS):
                node = inner[0]
                continue
            if not inner:
                raise _Ineligible("empty body")
            self.body = body
            break
        for lvl, names in pending:
            deeper = set(self.axes[lvl + 1:])
            if not names <= deeper:
                raise _Ineligible("private scalar locals")
            # a sequential DO over a privately-declared variable must
            # not leak its final value to the parent scope
            self.private_axes.update(self.axes.index(n) for n in names)

    def _collect_reductions(self, loop: F.Stmt) -> None:
        from repro.analysis.reductions import find_reductions

        # a reduction's accumulation order is only reproducible when the
        # sharded axis is the outermost one (or no axis is sharded)
        if any(isinstance(lv, C.ParallelDo) for lv in self.levels[1:]):
            return
        for red in find_reductions(loop):
            if red.kind != "scalar" or red.var in self.axes:
                continue
            if red.op not in ("+", "*", "min", "max"):
                continue
            if red.op in ("+", "*") and len(red.stmts) != 1:
                continue   # interleaved accumulations: order not ours
            entries = []
            for st in red.stmts:
                if not any(st is b for b in self.body):
                    entries = None     # accumulated outside our body
                    break
                info = self._match_strict(st, red.var, red.op)
                if info is None:
                    entries = None
                    break
                entries.append((st, info))
            if not entries:
                continue   # unhandled form: the loop will fall back
            for st, info in entries:
                self.reductions[id(st)] = info
            self.red_vars.add(red.var)

    @staticmethod
    def _match_strict(st: F.Stmt, var: str, op: str) -> Optional[tuple]:
        """Map one accumulation statement to a lowering that replays the
        tree walk's exact evaluation order, or None if the shape is not
        one we can replay."""
        if not isinstance(st, F.Assign) \
                or not isinstance(st.target, F.Var) \
                or st.target.name != var:
            return None
        v = st.value
        if op in ("min", "max"):
            if isinstance(v, (F.FuncCall, F.Apply)) and len(v.args) == 2:
                a, b = v.args
                if isinstance(a, F.Var) and a.name == var:
                    return ("minmax", var, op, b)
                if isinstance(b, F.Var) and b.name == var:
                    return ("minmax", var, op, a)
            return None
        if not isinstance(v, F.BinOp):
            return None
        if op == "+" and v.op in ("+", "-"):
            # left spine  s = (((s op1 e1) op2 e2) ...): the tree walk
            # folds left-to-right; we replay the same association
            terms: list[tuple] = []
            node: F.Expr = v
            while isinstance(node, F.BinOp) and node.op in ("+", "-"):
                terms.append((node.op, node.right))
                node = node.left
            if isinstance(node, F.Var) and node.name == var:
                return ("spine", var, list(reversed(terms)))
            if v.op == "+" and isinstance(v.right, F.Var) \
                    and v.right.name == var:
                return ("right", var, "+", v.left)
            return None
        if op == "*" and v.op == "*":
            if isinstance(v.left, F.Var) and v.left.name == var:
                return ("spine", var, [("*", v.right)])
            if isinstance(v.right, F.Var) and v.right.name == var:
                return ("right", var, "*", v.left)
        return None

    def _collect_writes(self) -> None:
        for st in self.body:
            for t in self._write_targets(st):
                name = t.name
                subs = (t.subscripts if isinstance(t, F.ArrayRef)
                        else t.args)
                mask = self._axis_mask(subs)
                if set(e[0] for e in mask if e is not None) != \
                        set(range(len(self.axes))):
                    raise _Ineligible("write misses a nest axis")
                prev = self.writes.get(name)
                if prev is not None and prev != mask:
                    raise _Ineligible("two write shapes for one array")
                self.writes[name] = mask

    def _write_targets(self, st: F.Stmt):
        """Array-element targets of one innermost statement (validated)."""
        if id(st) in self.reductions:
            return []
        if isinstance(st, _NOOP_STMTS):
            return []
        if isinstance(st, F.Assign):
            t = st.target
            if not isinstance(t, (F.ArrayRef, F.Apply)):
                raise _Ineligible("non-array write")
            return [t]
        if isinstance(st, F.LogicalIf):
            inner = st.stmt
            if not isinstance(inner, F.Assign):
                raise _Ineligible("guarded non-assignment")
            return self._write_targets(inner)
        if isinstance(st, F.IfBlock):
            if len(st.arms) > 2 or not st.arms:
                raise _Ineligible("multi-arm IF")
            if len(st.arms) == 2 and st.arms[1][0] is not None:
                raise _Ineligible("ELSE IF chain")
            out = []
            for _, arm_body in st.arms:
                for inner in arm_body:
                    if not isinstance(inner, F.Assign):
                        raise _Ineligible("guarded non-assignment")
                    out.extend(self._write_targets(inner))
            return out
        raise _Ineligible(f"ineligible statement "
                          f"{type(st).__name__}")

    def _uses_axis(self, e: F.Expr) -> bool:
        return any(isinstance(n, F.Var) and n.name in self.axes
                   for n in e.walk())

    def _split_affine(self, sub: F.Expr) -> Optional[tuple]:
        """``sub`` as ``axis``, ``axis ± c`` or ``c + axis`` with an
        integer-classed invariant offset: (axis, op, offset|None)."""
        if isinstance(sub, F.Var) and sub.name in self.axes:
            return (self.axes.index(sub.name), "+", None)
        if isinstance(sub, F.BinOp) and sub.op in ("+", "-"):
            l, r = sub.left, sub.right
            l_ax = isinstance(l, F.Var) and l.name in self.axes
            r_ax = isinstance(r, F.Var) and r.name in self.axes
            cand = None
            if l_ax and not r_ax and not self._uses_axis(r):
                cand = (self.axes.index(l.name), sub.op, r)
            elif sub.op == "+" and r_ax and not l_ax \
                    and not self._uses_axis(l):
                cand = (self.axes.index(r.name), "+", l)
            if cand is not None and self._type_class(cand[2]) == "i":
                return cand
        return None

    def _axis_mask(self, subs) -> tuple:
        """Per-dim subscript classification: None for invariant
        subscripts, ``(axis, op, offset-key)`` for affine ones.  The
        offset key (a structural repr) makes masks comparable, so the
        read-equals-write proof covers offsets too — a stencil read
        ``u(j+1)`` against a write ``u(j)`` is a mask mismatch, i.e. a
        rejected recurrence."""
        mask = []
        for sub in subs:
            if isinstance(sub, F.RangeExpr):
                raise _Ineligible("section subscript")
            aff = self._split_affine(sub)
            if aff is not None:
                a, op, off = aff
                mask.append((a, op, "" if off is None else repr(off)))
            elif self._uses_axis(sub):
                raise _Ineligible("loop var inside subscript arithmetic")
            else:
                mask.append(None)
        return tuple(mask)

    def _sub_src(self, sub: F.Expr, entry, ctx: dict) -> str:
        """Python source for one subscript's lane index array."""
        if entry is None:
            return f"({self.ex(sub, None)})"
        a, op, off = self._split_affine(sub)
        base = ctx[self.axes[a]]
        if off is None:
            return base
        return f"({base} {op} ({self.ex(off, None)}))"

    # -- expression emission -------------------------------------------

    def _is_array_sym(self, name: str) -> bool:
        sym = self.symtab.lookup(name)
        return sym is not None and sym.is_array

    def ex(self, e: F.Expr, ctx: Optional[dict]) -> str:
        """Emit ``e`` as Python source.

        ``ctx`` maps each axis variable to its lane-array name (open grid
        or compressed); ``ctx=None`` is invariant/scalar mode, mirroring
        the closure tier's ``_expr`` semantics.
        """
        if isinstance(e, (F.IntLit, F.RealLit, F.LogicalLit)):
            return _fmt_literal(e.value)
        if isinstance(e, F.Var):
            name = e.name
            if name in self.red_vars:
                raise _Ineligible("accumulator read outside reduction")
            if ctx is not None and name in ctx:
                return ctx[name]
            if name in self.axes or name in self.writes:
                raise _Ineligible("loop-carried scalar read")
            if self._is_array_sym(name):
                # a whole-array read would vectorize where the scalar
                # loop raises (array condition / array arithmetic)
                raise _Ineligible("bare array reference")
            return f"G(s, {name!r})"
        if isinstance(e, (F.ArrayRef, F.Apply)):
            return self._ex_ref(e, ctx)
        if isinstance(e, F.FuncCall):
            return self._ex_call(e.name, e.args, ctx)
        if isinstance(e, F.BinOp):
            return self._ex_binop(e, ctx)
        if isinstance(e, F.UnOp):
            x = self.ex(e.operand, ctx)
            if e.op == "-":
                return f"(-{x})"
            if e.op == "+":
                return x
            if e.op == ".not.":
                if ctx is not None:
                    return f"(~np.asarray({x}))"
                return f"NOT({x})"
        raise _Ineligible(f"cannot emit {type(e).__name__}")

    def _ex_ref(self, e, ctx: Optional[dict]) -> str:
        name = e.name
        subs = e.subscripts if isinstance(e, F.ArrayRef) else e.args
        if self._is_array_sym(name):
            mask = self._axis_mask(subs)
            if name in self.writes and ctx is not None \
                    and mask != self.writes[name]:
                raise _Ineligible("read crosses written iterations")
            if name in self.writes and ctx is None:
                raise _Ineligible("written array in invariant position")
            parts = []
            for sub, entry in zip(subs, mask):
                if entry is not None and ctx is None:
                    raise _Ineligible("axis in invariant position")
                parts.append(self._sub_src(sub, entry, ctx))
            return f"VL(s, {name!r}, ({', '.join(parts)},))"
        return self._ex_call(name, list(subs), ctx)

    def _ex_call(self, name: str, args, ctx: Optional[dict]) -> str:
        if name in self.writes or name in self.red_vars:
            raise _Ineligible("call shadows a written name")
        if ctx is not None:
            from repro.execmodel.interp import _NP_FUNCS

            if name not in _VEC_EXACT_INTRINSICS or name not in _NP_FUNCS:
                raise _Ineligible(f"intrinsic {name!r} not exactness-"
                                  f"whitelisted")
            parts = [self.ex(a, ctx) for a in args]
            return f"NP[{name!r}]({', '.join(parts)})"
        if name in self.jit.interp.units:
            raise _Ineligible("user routine in invariant position")
        parts = [self.ex(a, None) for a in args]
        return f"CALL(s, {name!r}, ({', '.join(parts)},))"

    def _ex_binop(self, e: F.BinOp, ctx: Optional[dict]) -> str:
        l = self.ex(e.left, ctx)
        r = self.ex(e.right, ctx)
        op = e.op
        simple = {"+": "+", "-": "-", "*": "*", "**": "**",
                  ".lt.": "<", ".le.": "<=", ".eq.": "==",
                  ".ne.": "!=", ".gt.": ">", ".ge.": ">="}
        if op in simple:
            return f"({l} {simple[op]} {r})"
        if op == "/":
            return f"DIV({l}, {r})"
        if ctx is not None:
            vec_logical = {".and.": "np.logical_and",
                           ".or.": "np.logical_or",
                           ".eqv.": "np.equal",
                           ".neqv.": "np.not_equal"}
            if op in vec_logical:
                return f"{vec_logical[op]}({l}, {r})"
        else:
            scalar_logical = {".and.": "AND", ".or.": "OR",
                              ".eqv.": "EQV", ".neqv.": "NEQV"}
            if op in scalar_logical:
                return f"{scalar_logical[op]}({l}, {r})"
        raise _Ineligible(f"operator {op!r}")

    # -- type-class inference (MIN/MAX reduction proof) ----------------

    def _type_class(self, e: F.Expr) -> Optional[str]:
        if isinstance(e, F.IntLit):
            return "i"
        if isinstance(e, F.RealLit):
            return "f"
        if isinstance(e, F.Var):
            if e.name in self.axes:
                return "i"
            return self._sym_class(e.name)
        if isinstance(e, (F.ArrayRef, F.Apply, F.FuncCall)):
            if isinstance(e, (F.ArrayRef, F.Apply)) \
                    and self._is_array_sym(e.name):
                return self._sym_class(e.name)
            name = e.name
            args = (e.subscripts if isinstance(e, F.ArrayRef) else e.args)
            if name in _INT_INTRINSICS:
                return "i"
            if name in _FLOAT_INTRINSICS:
                return "f"
            if name in _POLY_INTRINSICS:
                return self._join_class([self._type_class(a)
                                         for a in args])
            return None
        if isinstance(e, F.BinOp):
            if e.op in ("+", "-", "*", "/", "**"):
                return self._join_class([self._type_class(e.left),
                                         self._type_class(e.right)])
            return None
        if isinstance(e, F.UnOp) and e.op in ("-", "+"):
            return self._type_class(e.operand)
        return None

    def _sym_class(self, name: str) -> Optional[str]:
        sym = self.symtab.lookup(name)
        if sym is not None:
            if sym.type == "integer":
                return "i"
            if sym.type in ("real", "doubleprecision"):
                return "f"
            return None
        return "i" if name[0] in "ijklmn" else "f"

    @staticmethod
    def _join_class(classes) -> Optional[str]:
        if any(c is None for c in classes):
            return None
        return "f" if "f" in classes else "i"

    # -- statement lowerings -------------------------------------------

    def _grid_ctx(self) -> dict:
        return {v: f"_g{a}" for a, v in enumerate(self.axes)}

    def _coerce_flag(self, var: str) -> str:
        sym = self.symtab.lookup(var)
        declared_int = sym is not None and sym.type == "integer"
        implicit_int = sym is None and var[0] in "ijklmn"
        return "True" if declared_int or implicit_int else "False"

    def _target_parts(self, t, ctx: dict) -> str:
        subs = t.subscripts if isinstance(t, F.ArrayRef) else t.args
        mask = self._axis_mask(subs)
        parts = [self._sub_src(sub, entry, ctx)
                 for sub, entry in zip(subs, mask)]
        return ", ".join(parts) + ","

    def _emit_assign(self, st: F.Assign, ctx: dict, out: list,
                     indent: str) -> None:
        rhs = self.ex(st.value, ctx)
        t = st.target
        out.append(f"{indent}VS(s, {t.name!r}, "
                   f"({self._target_parts(t, ctx)}), {rhs})")

    def _emit_guarded(self, mask_src: str, assigns: list, out: list,
                      indent: str) -> None:
        """Compressed-lane lowering of one guard arm."""
        self._uniq += 1
        u = self._uniq
        out.append(f"{indent}_w{u} = np.nonzero({mask_src})")
        cctx = {}
        for a, v in enumerate(self.axes):
            out.append(f"{indent}_h{u}_{a} = _iv{a}[_w{u}[{a}]]")
            cctx[v] = f"_h{u}_{a}"
        out.append(f"{indent}if _h{u}_0.size:")
        for st in assigns:
            self._emit_assign(st, cctx, out, indent + "    ")

    def _emit_reduction(self, st: F.Stmt, out: list,
                        indent: str) -> None:
        info = self.reductions[id(st)]
        kind, var = info[0], info[1]
        ctx = self._grid_ctx()
        k = len(self.axes)
        shape = ", ".join(f"_n{a}" for a in range(k))
        doall0 = isinstance(self.levels[0], C.ParallelDo)
        self._uniq += 1
        u = self._uniq
        coerce = self._coerce_flag(var)
        out.append(f"{indent}_a{u} = G(s, {var!r})")
        if kind == "minmax":
            op, contrib = info[2], info[3]
            acls = self._sym_class(var)
            ccls = self._type_class(contrib)
            if acls is None or ccls != acls:
                raise _Ineligible("min/max reduction type classes differ")
            csrc = self.ex(contrib, ctx)
            red = "np.minimum" if op == "min" else "np.maximum"
            out.append(f"{indent}_f{u} = RED({csrc}, ({shape},), False)")
            out.append(f"{indent}_v{u} = {red}(_a{u}, "
                       f"{red}.reduce(_f{u}))")
            out.append(f"{indent}_a{u} = AST(s, {var!r}, _v{u}, "
                       f"{coerce})")
            return
        # '+'/'*': vectorize the contributed terms, then replay the
        # scalar loop's accumulation order store-for-store
        if kind == "spine":
            terms = info[2]
            upd = f"_a{u}"
            for j, (top, te) in enumerate(terms):
                csrc = self.ex(te, ctx)
                out.append(f"{indent}_f{u}_{j} = RED({csrc}, "
                           f"({shape},), {doall0})")
                upd = f"({upd} {top} _f{u}_{j}[_q{u}])"
        else:   # ("right", var, op, expr):  s = e op s
            top, te = info[2], info[3]
            csrc = self.ex(te, ctx)
            out.append(f"{indent}_f{u}_0 = RED({csrc}, ({shape},), "
                       f"{doall0})")
            upd = f"(_f{u}_0[_q{u}] {top} _a{u})"
        out.append(f"{indent}for _q{u} in range(_f{u}_0.shape[0]):")
        out.append(f"{indent}    _a{u} = AST(s, {var!r}, {upd}, "
                   f"{coerce})")

    def _emit_stmt(self, st: F.Stmt, out: list, indent: str) -> None:
        if id(st) in self.reductions:
            self._emit_reduction(st, out, indent)
            return
        if isinstance(st, _NOOP_STMTS):
            return
        ctx = self._grid_ctx()
        if isinstance(st, F.Assign):
            self._emit_assign(st, ctx, out, indent)
            return
        k = len(self.axes)
        shape = ", ".join(f"_n{a}" for a in range(k))
        if isinstance(st, F.LogicalIf):
            self._uniq += 1
            u = self._uniq
            cond = self.ex(st.cond, ctx)
            out.append(f"{indent}_m{u} = np.broadcast_to(np.asarray("
                       f"{cond}, dtype=bool), ({shape},))")
            self._emit_guarded(f"_m{u}", [st.stmt], out, indent)
            return
        if isinstance(st, F.IfBlock):
            self._uniq += 1
            u = self._uniq
            cond = self.ex(st.arms[0][0], ctx)
            out.append(f"{indent}_m{u} = np.broadcast_to(np.asarray("
                       f"{cond}, dtype=bool), ({shape},))")
            self._emit_guarded(f"_m{u}", list(st.arms[0][1]), out,
                               indent)
            if len(st.arms) == 2:
                self._emit_guarded(f"(~_m{u})", list(st.arms[1][1]),
                                   out, indent)
            return
        raise _Ineligible(f"ineligible statement {type(st).__name__}")

    # -- whole-loop emission -------------------------------------------

    def emit(self, fn_name: str) -> list[str]:
        out = [f"def {fn_name}(s):"]
        k = len(self.axes)
        indent = "    "
        for a, lv in enumerate(self.levels):
            out.append(f"{indent}_lo{a} = int({self.ex(lv.start, None)})")
            out.append(f"{indent}_hi{a} = int({self.ex(lv.end, None)})")
            if lv.step is not None:
                out.append(f"{indent}_st{a} = "
                           f"int({self.ex(lv.step, None)})")
                out.append(f"{indent}if _st{a} == 0:")
                out.append(f"{indent}    ERR('zero DO step')")
            else:
                out.append(f"{indent}_st{a} = 1")
            out.append(f"{indent}_n{a} = len(range(_lo{a}, _hi{a} + "
                       f"(1 if _st{a} > 0 else -1), _st{a}))")
            out.append(f"{indent}if _n{a}:")
            indent += "    "
        for a in range(k):
            out.append(f"{indent}_iv{a} = np.arange(_lo{a}, _lo{a} + "
                       f"_st{a} * _n{a}, _st{a}, dtype=np.int64)")
            shape = ["1"] * k
            shape[a] = "-1"
            out.append(f"{indent}_g{a} = _iv{a}.reshape"
                       f"({', '.join(shape)})")
        for st in self.body:
            self._emit_stmt(st, out, indent)
        # sequential DO variables keep their scalar-loop final values;
        # DOALL variables live in discarded worker scopes and must not
        # leak (matching _parallel_do/_do_loop semantics exactly)
        for a in range(k - 1, -1, -1):
            indent = "    " * (a + 2)
            if not isinstance(self.levels[a], C.ParallelDo) \
                    and a not in self.private_axes:
                out.append(f"{indent}SSET(s, {self.axes[a]!r}, "
                           f"_lo{a} + _st{a} * (_n{a} - 1))")
        return out


class SourceJit(ClosureCompiler):
    """Compile statement lists to cached Python/NumPy source modules."""

    def __init__(self, interp: "Interpreter"):
        super().__init__(interp)
        #: statements whose lowering came from emitted source (vs the
        #: closure-tier fallback), for observability and tests
        self.source_stmts = 0
        self.fallback_stmts = 0

    # the closure tier's exec_body drives execution; only the per-list
    # compilation step is replaced
    def _compile_entry(self, stmts: list[F.Stmt],
                       unit_name: str) -> tuple:
        from repro.telemetry import span

        with span("compile", unit=unit_name, stmts=len(stmts)):
            fns = self._compile_list(stmts, unit_name)
            labels = {s.label: i for i, s in enumerate(stmts)
                      if s.label is not None}
        return (fns, labels, stmts)

    def _compile_list(self, stmts: list[F.Stmt], unit: str) -> list:
        from repro.engine.cache import get_cache
        from repro.obs.log import get_logger

        try:
            text = get_cache().jit_source(
                self._dump(stmts), fingerprint=self._fingerprint(unit),
                emit=lambda: self.emit_module(stmts, unit))
            code = compile(text, f"<jit-source:{unit}>", "exec")
            ns: dict = {}
            exec(code, ns)
            fns = ns["make"](_Runtime(self, stmts, unit))
            if len(fns) != len(stmts):
                raise ValueError(
                    f"module yields {len(fns)} fns for {len(stmts)} "
                    f"statements")
        except InterpreterError:
            raise
        except Exception as exc:   # corrupt or stale module text: the
            # closure tier is always able to take the whole list
            get_logger("execmodel.source_jit").warning(
                "module_rejected", unit=unit,
                error_type=type(exc).__name__)
            self.fallback_stmts += len(stmts)
            return [ClosureCompiler._stmt(self, s, unit) for s in stmts]
        return fns

    def _fingerprint(self, unit: str) -> str:
        """Codegen-relevant facts beyond the statement dump."""
        st = self.interp.tables.get(unit)
        facts = ""
        if st is not None:
            facts = ";".join(
                f"{n}:{sym.type}:{int(sym.is_array)}"
                for n, sym in sorted(st.symbols.items()))
        return f"jit{_JIT_VERSION}|{unit}|{facts}"

    @staticmethod
    def _dump(stmts: list[F.Stmt]) -> str:
        """Deterministic text form of a statement list (cache address).

        AST nodes are plain dataclasses, so ``repr`` is a stable
        structural rendering (including source-line stamps, which only
        narrows sharing, never falsifies it).
        """
        return "\n".join(repr(s) for s in stmts)

    # -- module emission -----------------------------------------------

    def emit_module(self, stmts: list[F.Stmt], unit: str) -> str:
        lowered: dict[int, list[str]] = {}
        for i, s in enumerate(stmts):
            if isinstance(s, _LOOPS):
                try:
                    lowered[i] = _LoopLowerer(self, s, unit).emit(
                        f"_s{i}")
                except _Ineligible:
                    pass
        head = [
            f'"""jit-source module: unit {unit!r}, {len(stmts)} '
            f'statements, {len(lowered)} vectorized loops '
            f'(emitter v{_JIT_VERSION})."""',
            "import numpy as np",
            "",
            "",
            "def make(rt):",
            "    fb = rt.fallback",
            "    G = rt.scalar",
            "    VL = rt.vload",
            "    VS = rt.vstore",
            "    CALL = rt.call",
            "    DIV = rt.div",
            "    AND = rt.and_",
            "    OR = rt.or_",
            "    EQV = rt.eqv",
            "    NEQV = rt.neqv",
            "    NOT = rt.not_",
            "    NP = rt.np_funcs",
            "    ERR = rt.error",
            "    SSET = rt.sset",
            "    AST = rt.astore",
            "    RED = rt.red_flat",
            f"    rt.tally({len(lowered)}, {len(stmts) - len(lowered)})",
            "    fns = []",
        ]
        body: list[str] = []
        for i in range(len(stmts)):
            if i in lowered:
                body.append("")
                body.extend("    " + line for line in lowered[i])
                body.append(f"    fns.append(_s{i})")
            else:
                body.append(f"    fns.append(fb({i}))")
        tail = ["    return fns", ""]
        return "\n".join(head + body + tail)
