"""Linter-grade front door for real-world Fortran 77 files.

``python -m repro.lint FILE.f`` lints fixed-form source with full error
recovery: every lexical, syntactic, and semantic problem in the file is
reported with a line, column, and stable diagnostic code, instead of the
library's default first-error exception.

Library use::

    from repro.lint import lint_source
    report = lint_source(text, path="bad.f")
    if not report.ok:
        print(report.render())

The JSON form (``--json``) follows the ``repro-lint/1`` schema and is
validated by ``scripts/validate_experiment_json.py`` like every other
artifact this repo emits.
"""

from repro.lint.engine import JSON_SCHEMA, LintReport, lint_source, report_json
from repro.lint.rules import ALL_RULES, run_rules

__all__ = [
    "ALL_RULES",
    "JSON_SCHEMA",
    "LintReport",
    "lint_source",
    "report_json",
    "run_rules",
]
