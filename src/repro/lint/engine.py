"""The lint engine: one recovering parse plus the AST rule pack.

:func:`lint_source` is the library entry point behind
``python -m repro.lint`` and the ``--source`` ingestion path of
``repro.experiments``: it runs the lexer and parser with a collecting
:class:`DiagnosticSink` (so every problem in the file is reported, not
just the first) and then the :mod:`repro.lint.rules` pack over whatever
AST survived.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fortran import ast_nodes as F
from repro.fortran.diagnostics import Diagnostic, DiagnosticSink
from repro.fortran.parser import parse_program
from repro.lint.rules import run_rules

#: JSON report schema tag (validated by scripts/validate_experiment_json.py)
JSON_SCHEMA = "repro-lint/1"


@dataclass
class LintReport:
    """Everything one lint run produced: diagnostics plus the partial AST."""

    path: str
    sink: DiagnosticSink
    ast: F.SourceFile = field(default_factory=lambda: F.SourceFile([]))

    @property
    def ok(self) -> bool:
        return self.sink.ok

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return self.sink.sorted()

    @property
    def error_count(self) -> int:
        return self.sink.error_count

    @property
    def warning_count(self) -> int:
        return len(self.sink.warnings)

    def render(self) -> str:
        if not self.sink.diagnostics and not self.sink.suppressed_errors:
            return f"{self.path}: clean"
        return self.sink.render(self.path)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "ok": self.ok,
            "error_count": self.error_count,
            "warning_count": self.warning_count,
            "suppressed_errors": self.sink.suppressed_errors,
            "units": len(self.ast.units),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def lint_source(source: str, path: str = "<source>",
                max_errors: int = 100) -> LintReport:
    """Lint Fortran 77 source text, returning the full diagnostic stream.

    Never raises on malformed input: lexer and parser errors are
    collected with recovery, and the AST rules run over the partial
    parse.  The report's ``ast`` is usable whenever ``error_count`` is
    zero (warnings do not impair it).
    """
    sink = DiagnosticSink(source, max_errors=max_errors)
    ast = parse_program(source, sink)
    run_rules(ast, sink)
    return LintReport(path=path, sink=sink, ast=ast)


def report_json(reports: list[LintReport], meta: dict | None = None) -> dict:
    """Aggregate per-file reports into one ``repro-lint/1`` document."""
    return {
        "schema": JSON_SCHEMA,
        "ok": all(r.ok for r in reports),
        "error_count": sum(r.error_count for r in reports),
        "warning_count": sum(r.warning_count for r in reports),
        "files": [r.to_dict() for r in reports],
        "meta": {"tool": "repro.lint", **(meta or {})},
    }
