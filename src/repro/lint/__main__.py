"""Command-line linter: ``python -m repro.lint FILE.f [FILE2.f ...]``.

``--workloads`` lints the unparsed source of every in-repo validation
workload instead of (or in addition to) files — the CI smoke job uses it
to prove the linter is clean on everything the repo itself generates.

Exit status (shared CLI map):
    0  clean (no errors; warnings allowed unless ``--strict``)
    1  findings: at least one error (or warning, with ``--strict``)
    2  usage error (no inputs, unreadable file)
    3  internal fault (the linter itself crashed)
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.lint.engine import LintReport, lint_source, report_json


def _workload_reports(max_errors: int) -> list[LintReport]:
    from repro.workloads import validation_cases
    reports = []
    for case in validation_cases().values():
        reports.append(lint_source(case.source,
                                   path=f"workload:{case.name}",
                                   max_errors=max_errors))
    return reports


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Lint fixed-form Fortran 77 with full error recovery")
    ap.add_argument("files", nargs="*", metavar="FILE.f",
                    help="fixed-form Fortran source files to lint")
    ap.add_argument("--workloads", action="store_true",
                    help="also lint every in-repo validation workload")
    ap.add_argument("--json", action="store_true", dest="as_json",
                    help="emit a repro-lint/1 JSON report on stdout")
    ap.add_argument("-o", "--output", metavar="FILE", default=None,
                    help="write the report to FILE instead of stdout")
    ap.add_argument("--strict", action="store_true",
                    help="treat warnings as findings (exit 1)")
    ap.add_argument("--max-errors", type=int, default=100, metavar="N",
                    help="stop storing errors after N per file "
                         "(default: %(default)s)")
    try:
        ns = ap.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0

    if not ns.files and not ns.workloads:
        print("error: no input files (pass FILE.f or --workloads)",
              file=sys.stderr)
        return 2

    reports: list[LintReport] = []
    try:
        for path in ns.files:
            try:
                with open(path, "r", encoding="utf-8",
                          errors="replace") as fh:
                    text = fh.read()
            except OSError as exc:
                print(f"error: cannot read {path}: {exc}", file=sys.stderr)
                return 2
            reports.append(lint_source(text, path=path,
                                       max_errors=ns.max_errors))
        if ns.workloads:
            reports.extend(_workload_reports(ns.max_errors))
    except Exception as exc:  # the linter must never crash on bad input
        print(f"internal error: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 3

    if ns.as_json:
        doc = report_json(reports, meta={"strict": bool(ns.strict)})
        out = json.dumps(doc, indent=2, sort_keys=True)
    else:
        out = "\n".join(r.render() for r in reports)

    if ns.output:
        with open(ns.output, "w", encoding="utf-8") as fh:
            fh.write(out + "\n")
    else:
        print(out)

    errors = sum(r.error_count for r in reports)
    warnings = sum(r.warning_count for r in reports)
    if errors or (ns.strict and warnings):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
