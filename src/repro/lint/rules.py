"""AST-level lint rules, run after the recovering parse.

Each rule walks the (possibly partial) AST and reports through the same
:class:`DiagnosticSink` the lexer and parser used, so the CLI presents
one merged, source-ordered stream.  Layout-level traps (tab in the label
field, text lost past column 72) are emitted by the lexer itself; the
rules here need resolved statement structure:

- **F201 undefined-label** — a GOTO/DO/I-O reference to a statement
  label that no statement in the same program unit defines;
- **F202 duplicate-label** — one label defined on two statements;
- **W203 unlabeled-format** — a FORMAT statement without a label can
  never be referenced;
- **W301 do-ends-on-executable** — a labeled DO terminating on a
  statement other than CONTINUE (legal, but a classic restructuring
  trap: the paper's DO-loop transforms assume the terminal card can be
  deleted);
- **W302 unreferenced-format** — a labeled FORMAT no I/O statement uses.
"""

from __future__ import annotations

from repro.fortran import ast_nodes as F
from repro.fortran.diagnostics import DiagnosticSink

#: I/O control keywords whose integer value names a statement label
_LABEL_KEYWORDS = {"fmt", "err", "end"}


def _line(stmt: F.Stmt) -> int:
    return stmt.line if getattr(stmt, "line", 0) else 1


def _label_refs(stmts: list[F.Stmt]) -> list[tuple[int, int]]:
    """Every ``(label, source_line)`` reference in a statement list."""
    refs: list[tuple[int, int]] = []
    for node in F.stmts_walk(stmts):
        line = _line(node) if isinstance(node, F.Stmt) else 1
        if isinstance(node, F.Goto):
            refs.append((node.target, line))
        elif isinstance(node, F.ComputedGoto):
            refs.extend((t, line) for t in node.targets)
        elif isinstance(node, F.AssignedGoto):
            refs.extend((t, line) for t in node.targets)
        elif isinstance(node, F.AssignLabelStmt):
            refs.append((node.target, line))
        elif isinstance(node, F.DoLoop) and node.do_label is not None:
            refs.append((node.do_label, line))
        elif isinstance(node, F.IoStmt):
            refs.extend((lbl, line) for lbl in _io_label_refs(node))
    return refs


def _io_label_refs(stmt: F.IoStmt) -> list[int]:
    """Labels referenced by an I/O statement's control list."""
    labels: list[int] = []
    positional = 0
    for c in stmt.controls:
        is_label = False
        if c.keyword is None:
            positional += 1
            # read/write (unit, fmt): the second positional control;
            # print FMT: the first (and only) positional control
            if stmt.kind == "print":
                is_label = positional == 1
            elif stmt.kind in ("read", "write"):
                is_label = positional == 2 or len(stmt.controls) == 1
        else:
            is_label = c.keyword in _LABEL_KEYWORDS
        if is_label and isinstance(c.value, F.IntLit):
            labels.append(c.value.value)
    return labels


def _defined_labels(unit: F.ProgramUnit,
                    sink: DiagnosticSink) -> dict[int, F.Stmt]:
    """Label → defining statement; duplicates are reported (F202)."""
    defined: dict[int, F.Stmt] = {}
    for node in F.stmts_walk(unit.specs + unit.body):
        if not isinstance(node, F.Stmt) or node.label is None:
            continue
        if node.label in defined:
            first = defined[node.label]
            sink.error(
                "F202",
                f"label {node.label} already defined at line "
                f"{_line(first)}", _line(node), 1)
        else:
            defined[node.label] = node
    return defined


def check_labels(unit: F.ProgramUnit, sink: DiagnosticSink) -> None:
    """F201/F202/W302: label definitions vs references, per unit."""
    defined = _defined_labels(unit, sink)
    refs = _label_refs(unit.specs + unit.body)
    for label, line in refs:
        if label not in defined:
            sink.error("F201",
                       f"label {label} is referenced but never defined",
                       line, 7)
    referenced = {label for label, _ in refs}
    for label, stmt in defined.items():
        if isinstance(stmt, F.FormatStmt) and label not in referenced:
            sink.warning(
                "W302",
                f"format label {label} is never referenced",
                _line(stmt), 1)


def check_formats(unit: F.ProgramUnit, sink: DiagnosticSink) -> None:
    """W203: a FORMAT without a label is unreachable."""
    for node in F.stmts_walk(unit.specs + unit.body):
        if isinstance(node, F.FormatStmt) and node.label is None:
            sink.warning(
                "W203",
                "format statement has no label and can never be used",
                _line(node), 7)


def check_do_terminals(unit: F.ProgramUnit, sink: DiagnosticSink) -> None:
    """W301: labeled DO whose terminal statement is not CONTINUE."""
    for node in F.stmts_walk(unit.body):
        if not isinstance(node, F.DoLoop) or node.do_label is None:
            continue
        if not node.body:
            continue
        last = node.body[-1]
        if last.label == node.do_label and not isinstance(
                last, F.ContinueStmt):
            sink.warning(
                "W301",
                f"do loop ends on an executable statement at label "
                f"{node.do_label}; terminate it with CONTINUE",
                _line(last), 7)


#: the rules `lint_source` runs, in report order
ALL_RULES = (check_labels, check_formats, check_do_terminals)


def run_rules(ast: F.SourceFile, sink: DiagnosticSink) -> None:
    """Run every AST rule over every program unit."""
    for unit in ast.units:
        for rule in ALL_RULES:
            rule(unit, sink)
