"""Cedar Fortran dialect: parallel-loop AST nodes, declarations, library.

Cedar Fortran (paper §2) extends Fortran 77 with:

- three classes of parallel loops — cluster (``CDOALL``/``CDOACROSS``),
  spread (``SDOALL``), and cross-cluster (``XDOALL``/``XDOACROSS``) — each
  with loop-local declarations and optional preamble/postamble blocks;
- memory-visibility declarations ``GLOBAL``, ``CLUSTER`` and
  ``PROCESS COMMON``;
- Fortran 90 vector (array-section) assignments and the ``WHERE`` statement;
- ``await``/``advance`` cascade synchronization and lock intrinsics;
- a library of Cedar-optimized reduction/recurrence routines.
"""

from repro.cedar.nodes import (
    AdvanceStmt,
    AwaitStmt,
    ClusterDecl,
    GlobalDecl,
    LockStmt,
    ParallelDo,
    PostWaitStmt,
    ProcessCommonStmt,
    UnlockStmt,
    WhereStmt,
)
from repro.cedar.unparse import CedarUnparser, unparse_cedar
from repro.cedar.library import CEDAR_LIBRARY, LibraryRoutine

__all__ = [
    "ParallelDo",
    "GlobalDecl",
    "ClusterDecl",
    "ProcessCommonStmt",
    "WhereStmt",
    "AwaitStmt",
    "AdvanceStmt",
    "LockStmt",
    "UnlockStmt",
    "PostWaitStmt",
    "CedarUnparser",
    "unparse_cedar",
    "CEDAR_LIBRARY",
    "LibraryRoutine",
]
