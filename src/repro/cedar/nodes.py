"""AST nodes for the Cedar Fortran extensions (paper §2.1, Figures 3-5).

These nodes live alongside the plain Fortran 77 nodes so one tree can mix
both; the restructurer replaces sequential ``DoLoop`` nodes with
:class:`ParallelDo` and inserts visibility declarations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.fortran import ast_nodes as F

#: Loop level prefixes: Cluster, Spread, Cross-cluster (paper Figure 3).
LEVELS = ("C", "S", "X")

#: Loop ordering forms.
ORDERS = ("doall", "doacross")


@dataclass
class ParallelDo(F.Stmt):
    """A Cedar parallel loop: {C,S,X} × {DOALL, DOACROSS}.

    ``level``:

    - ``'C'`` — all processors of one cluster join (hardware microtasking);
    - ``'S'`` — one processor per cluster joins (spread loop);
    - ``'X'`` — all processors of all clusters join.

    ``locals_`` holds loop-local declarations (each processor gets a private
    copy for C/X loops; cluster-visible for S loops).  ``preamble`` runs once
    per joining processor before its first iteration; ``postamble`` (S/X
    only) once after its last.
    """

    level: str = "C"
    order: str = "doall"
    var: str = ""
    start: F.Expr = None  # type: ignore[assignment]
    end: F.Expr = None  # type: ignore[assignment]
    step: Optional[F.Expr] = None
    locals_: list[F.Stmt] = field(default_factory=list)
    preamble: list[F.Stmt] = field(default_factory=list)
    body: list[F.Stmt] = field(default_factory=list)
    postamble: list[F.Stmt] = field(default_factory=list)

    def __post_init__(self):
        if self.level not in LEVELS:
            raise ValueError(f"bad parallel loop level {self.level!r}")
        if self.order not in ORDERS:
            raise ValueError(f"bad parallel loop order {self.order!r}")

    @property
    def keyword(self) -> str:
        return f"{self.level}{'DOALL' if self.order == 'doall' else 'DOACROSS'}".lower()


@dataclass
class GlobalDecl(F.Stmt):
    """``GLOBAL var, var…`` — one copy in global memory, visible everywhere."""
    names: list[str] = field(default_factory=list)


@dataclass
class ClusterDecl(F.Stmt):
    """``CLUSTER var, var…`` — one copy per cluster, in cluster memory."""
    names: list[str] = field(default_factory=list)


@dataclass
class ProcessCommonStmt(F.Stmt):
    """``PROCESS COMMON /name/ vars`` — a COMMON block in global memory."""
    block: str = ""
    entities: list[F.EntityDecl] = field(default_factory=list)


@dataclass
class WhereStmt(F.Stmt):
    """Fortran 90 WHERE for masked vector assignment (paper §2.1)."""
    mask: F.Expr = None  # type: ignore[assignment]
    body: list[F.Stmt] = field(default_factory=list)
    elsewhere: list[F.Stmt] = field(default_factory=list)


@dataclass
class AwaitStmt(F.Stmt):
    """``call await(point, distance)`` — wait for iteration i-distance."""
    point: int = 1
    distance: int = 1


@dataclass
class AdvanceStmt(F.Stmt):
    """``call advance(point)`` — signal completion of the synchronized region."""
    point: int = 1


@dataclass
class LockStmt(F.Stmt):
    """``call lock(name)`` — enter an unordered critical section (§4.1.6)."""
    name: str = "lck"


@dataclass
class UnlockStmt(F.Stmt):
    """``call unlock(name)`` — leave an unordered critical section."""
    name: str = "lck"


@dataclass
class PostWaitStmt(F.Stmt):
    """``call post(ev)`` / ``call wait(ev)`` event synchronization."""
    action: str = "post"  # 'post' | 'wait'
    event: str = "ev"


def is_cedar_stmt(s: F.Stmt) -> bool:
    """True if the statement is a Cedar Fortran extension node."""
    return isinstance(s, (ParallelDo, GlobalDecl, ClusterDecl,
                          ProcessCommonStmt, WhereStmt, AwaitStmt,
                          AdvanceStmt, LockStmt, UnlockStmt, PostWaitStmt))


def contains_parallelism(stmts: list[F.Stmt]) -> bool:
    """True if any statement in the subtree is a parallel loop."""
    for s in F.stmts_walk(stmts):
        if isinstance(s, ParallelDo):
            return True
    return False
