"""Cedar Fortran unparser.

Extends the Fortran 77 unparser with the parallel-loop syntax of paper
Figure 3 and the data declarations of Figure 5::

    xdoall i = 1, n, strip
       integer i3
       real t(strip)
    loop
       ...body...
    endloop
    end xdoall
"""

from __future__ import annotations

from repro.cedar import nodes as C
from repro.fortran import ast_nodes as F
from repro.fortran.unparse import UnparserBase


class CedarUnparser(UnparserBase):
    """Pretty printer accepting both f77 and Cedar Fortran nodes."""

    def s_ParallelDo(self, s: C.ParallelDo, d: int) -> None:
        header = f"{s.keyword} {s.var} = {self.e(s.start)}, {self.e(s.end)}"
        if s.step is not None:
            header += f", {self.e(s.step)}"
        self.emit(header, s.label, d)
        self.block(s.locals_, d + 1)
        if s.preamble:
            self.block(s.preamble, d + 1)
        if s.preamble or s.postamble:
            self.emit("loop", None, d)
        self.block(s.body, d + 1)
        if s.preamble or s.postamble:
            self.emit("endloop", None, d)
        if s.postamble:
            self.block(s.postamble, d + 1)
        self.emit(f"end {s.keyword}", None, d)

    def s_GlobalDecl(self, s: C.GlobalDecl, d: int) -> None:
        self.emit("global " + ", ".join(s.names), s.label, d)

    def s_ClusterDecl(self, s: C.ClusterDecl, d: int) -> None:
        self.emit("cluster " + ", ".join(s.names), s.label, d)

    def s_ProcessCommonStmt(self, s: C.ProcessCommonStmt, d: int) -> None:
        ents = ", ".join(self._entity(e) for e in s.entities)
        self.emit(f"process common /{s.block}/ {ents}", s.label, d)

    def s_WhereStmt(self, s: C.WhereStmt, d: int) -> None:
        self.emit(f"where ({self.e(s.mask)})", s.label, d)
        self.block(s.body, d + 1)
        if s.elsewhere:
            self.emit("elsewhere", None, d)
            self.block(s.elsewhere, d + 1)
        self.emit("end where", None, d)

    def s_AwaitStmt(self, s: C.AwaitStmt, d: int) -> None:
        self.emit(f"call await({s.point}, {s.distance})", s.label, d)

    def s_AdvanceStmt(self, s: C.AdvanceStmt, d: int) -> None:
        self.emit(f"call advance({s.point})", s.label, d)

    def s_LockStmt(self, s: C.LockStmt, d: int) -> None:
        self.emit(f"call lock({s.name})", s.label, d)

    def s_UnlockStmt(self, s: C.UnlockStmt, d: int) -> None:
        self.emit(f"call unlock({s.name})", s.label, d)

    def s_PostWaitStmt(self, s: C.PostWaitStmt, d: int) -> None:
        self.emit(f"call {s.action}({s.event})", s.label, d)


def unparse_cedar(node: F.Node) -> str:
    """Render an AST possibly containing Cedar nodes to Cedar Fortran text."""
    u = CedarUnparser()
    if isinstance(node, F.SourceFile):
        u.source_file(node)
    elif isinstance(node, F.ProgramUnit):
        u.unit(node)
    elif isinstance(node, F.Stmt):
        u.stmt(node, 0)
    else:
        raise TypeError(f"cannot unparse {type(node).__name__}")
    return u.result()
