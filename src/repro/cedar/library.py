"""The Cedar-optimized runtime library (paper §3.3).

The restructurer replaces recognized reduction/recurrence loops with calls
into this library; each routine records how the Cedar implementation
distributes work (two-step cluster/cross-cluster combining for reductions,
cyclic reduction for linear recurrences) so the performance model can charge
realistic costs, and provides a numpy-backed reference semantics for the
functional interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class LibraryRoutine:
    """One routine of the Cedar library.

    ``parallel_ops(n, p)`` returns the op count of the critical path when
    ``n`` elements are processed by ``p`` processors; the serial loop would
    execute ``serial_ops_per_elem * n`` operations.
    """

    name: str
    kind: str                      # 'reduction' | 'recurrence' | 'scan'
    serial_ops_per_elem: float
    fn: Callable
    combine_steps: int = 2         # within-cluster then cross-cluster (§3.3)

    def parallel_ops(self, n: int, p: int) -> float:
        """Critical-path operation count on ``p`` processors."""
        if p <= 1:
            return self.serial_ops_per_elem * n
        if self.kind == "reduction":
            # local partial results + log-tree combining at two levels
            local = self.serial_ops_per_elem * np.ceil(n / p)
            combine = self.combine_steps * np.ceil(np.log2(p))
            return float(local + combine)
        if self.kind == "recurrence":
            # cyclic reduction: ~2.5x total work, log-depth critical path
            total = 2.5 * self.serial_ops_per_elem * n
            return float(total / p + np.ceil(np.log2(max(n, 2))))
        if self.kind == "scan":
            total = 2.0 * self.serial_ops_per_elem * n
            return float(total / p + np.ceil(np.log2(max(n, 2))))
        raise ValueError(self.kind)


def _dotproduct(x, y):
    return float(np.dot(np.asarray(x, dtype=float), np.asarray(y, dtype=float)))


def _sum(x):
    return float(np.sum(np.asarray(x, dtype=float)))


def _maxval(x):
    return float(np.max(np.asarray(x, dtype=float)))


def _minval(x):
    return float(np.min(np.asarray(x, dtype=float)))


def _maxloc(x):
    return int(np.argmax(np.asarray(x, dtype=float))) + 1


def _minloc(x):
    return int(np.argmin(np.asarray(x, dtype=float))) + 1


def _linrec(b, c):
    """First-order linear recurrence x(i) = x(i-1)*b(i) + c(i), x(0)=0."""
    b = np.asarray(b, dtype=float)
    c = np.asarray(c, dtype=float)
    out = np.empty_like(c)
    acc = 0.0
    for i in range(len(c)):
        acc = acc * b[i] + c[i]
        out[i] = acc
    return out


def _prefix_sum(x):
    return np.cumsum(np.asarray(x, dtype=float))


#: name → routine.  Names carry a ``ces_`` prefix (Cedar scientific library).
CEDAR_LIBRARY: dict[str, LibraryRoutine] = {
    "ces_dotproduct": LibraryRoutine("ces_dotproduct", "reduction", 2.0, _dotproduct),
    "ces_sum": LibraryRoutine("ces_sum", "reduction", 1.0, _sum),
    "ces_maxval": LibraryRoutine("ces_maxval", "reduction", 1.0, _maxval),
    "ces_minval": LibraryRoutine("ces_minval", "reduction", 1.0, _minval),
    "ces_maxloc": LibraryRoutine("ces_maxloc", "reduction", 1.0, _maxloc),
    "ces_minloc": LibraryRoutine("ces_minloc", "reduction", 1.0, _minloc),
    "ces_linrec": LibraryRoutine("ces_linrec", "recurrence", 2.0, _linrec),
    "ces_prefix_sum": LibraryRoutine("ces_prefix_sum", "scan", 1.0, _prefix_sum),
}


def is_library_call(name: str) -> bool:
    return name in CEDAR_LIBRARY
