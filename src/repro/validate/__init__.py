"""Translation validation: differential execution + dynamic race detection.

The restructurer is only trustworthy if every variant it emits computes
what the serial original computes.  This package runs each workload's
sequential baseline and the output of each staged pipeline configuration
through the functional interpreter on seeded randomized inputs, compares
results element-wise with dtype-aware tolerances, and — on divergence —
bisects over the canonical pass list
(:data:`repro.restructurer.pipeline.PASS_STAGES`) to name the pass that
introduced the mismatch.  A shadow-access recorder
(:class:`repro.execmodel.shadow.ShadowRecorder`) threaded through the
interpreter's worker-by-worker parallel-loop execution simultaneously
validates the dependence analysis's no-conflict claims at runtime.

Run it as ``python -m repro.validate --all``; the JSON report follows
the ``repro-validate/1`` schema (``schemas/validate.schema.json``,
checked by ``scripts/validate_experiment_json.py``).
"""

from repro.execmodel.shadow import RaceConflict, ShadowRecorder
from repro.validate.configs import (
    PIPELINE_CONFIGS,
    baseline_options,
    options_for_stages,
)
from repro.validate.differential import (
    ConfigResult,
    Divergence,
    WorkloadResult,
    bisect_stages,
    compare_outputs,
    validate_workload,
)
from repro.validate.report import SCHEMA_TAG, build_report, render_text

__all__ = [
    "RaceConflict", "ShadowRecorder",
    "PIPELINE_CONFIGS", "baseline_options", "options_for_stages",
    "ConfigResult", "Divergence", "WorkloadResult",
    "bisect_stages", "compare_outputs", "validate_workload",
    "SCHEMA_TAG", "build_report", "render_text",
]
