"""Staged restructurer configurations for translation validation.

Every validated pipeline configuration is expressed as a set of enabled
:data:`repro.restructurer.pipeline.PASS_STAGES` labels, so a divergence
found under a configuration can be bisected over *prefixes* of its stage
list: find the shortest prefix that still diverges, and the last stage
of that prefix is the pass that introduced the bug (assuming divergence
is monotone in the prefix, the usual bisection caveat).
"""

from __future__ import annotations

from typing import Callable

from repro.restructurer.options import RestructurerOptions
from repro.restructurer.pipeline import PASS_STAGES, stages_for

_STAGE_FIELDS = dict(PASS_STAGES)


def baseline_options() -> RestructurerOptions:
    """Options with every registered pass disabled.

    The planner still runs — loops that are parallel with no help from
    any pass still become DOALLs — so a divergence at this base point
    implicates the core parallelization machinery, not a named pass.
    """
    opts = RestructurerOptions()
    for fields in _STAGE_FIELDS.values():
        for f in fields:
            setattr(opts, f, False)
    return opts


def options_for_stages(stages: list[str]) -> RestructurerOptions:
    """Options enabling exactly the given ``PASS_STAGES`` labels."""
    opts = baseline_options()
    for label in stages:
        try:
            fields = _STAGE_FIELDS[label]
        except KeyError:
            raise ValueError(f"unknown pass stage {label!r}") from None
        for f in fields:
            setattr(opts, f, True)
    return opts


def config_stages(options: RestructurerOptions) -> list[str]:
    """The ordered stage labels a configuration enables."""
    return stages_for(options)


#: the staged pipeline configurations every workload is validated under:
#: the paper's automatic (1991 KAP-equivalent) and manual (§4.1
#: hand-technique) configurations; each value builds fresh options
PIPELINE_CONFIGS: dict[str, Callable[[], RestructurerOptions]] = {
    "automatic": RestructurerOptions.automatic,
    "manual": RestructurerOptions.manual,
}
