"""The differential translation-validation runner.

For one workload and one restructurer configuration:

1. interpret the sequential original (``processors=1``) on seeded
   randomized inputs — the baseline;
2. restructure a fresh parse under the configuration, interpret the
   Cedar program with several simulated processor counts and a
   :class:`~repro.execmodel.shadow.ShadowRecorder` attached;
3. compare every dummy-argument result element-wise with dtype-aware
   tolerances (integers and logicals exactly, floats within
   ``atol``/``rtol``);
4. on divergence, bisect over the configuration's pass-stage prefix
   list to name the pass that introduced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.engine import cached_parse, cached_restructure
from repro.errors import ReproError
from repro.execmodel.interp import Interpreter
from repro.execmodel.shadow import RaceConflict, ShadowRecorder
from repro.restructurer.options import RestructurerOptions
from repro.validate.configs import config_stages, options_for_stages
from repro.workloads import ValidationCase

#: float comparison tolerances: reductions and recurrences legitimately
#: reassociate, so bit-identity is not the bar — these mirror the
#: equivalence bounds the workload test suites have always used
DEFAULT_ATOL = 1e-4
DEFAULT_RTOL = 1e-3


@dataclass(frozen=True)
class Divergence:
    """One result key whose parallel value disagrees with the baseline."""

    key: str
    dtype: str
    max_abs: float
    max_rel: float
    mismatches: int               # element count out of tolerance
    processors: int
    seed: int

    def to_dict(self) -> dict:
        return {
            "key": self.key, "dtype": self.dtype,
            "max_abs": self.max_abs, "max_rel": self.max_rel,
            "mismatches": self.mismatches,
            "processors": self.processors, "seed": self.seed,
        }

    def describe(self) -> str:
        return (f"{self.key}[{self.dtype}]: {self.mismatches} element(s) "
                f"diverge (max abs {self.max_abs:.3g}, max rel "
                f"{self.max_rel:.3g}) at P={self.processors}, "
                f"seed {self.seed}")


@dataclass
class ConfigResult:
    """Validation outcome of one workload × configuration."""

    config: str
    stages: list[str]
    status: str = "ok"            # ok | divergent | race | error
    divergences: list[Divergence] = field(default_factory=list)
    races: list[RaceConflict] = field(default_factory=list)
    error: Optional[str] = None
    culprit_pass: Optional[str] = None
    parallel_loops: int = 0
    loops_checked: int = 0
    compared_keys: list[str] = field(default_factory=list)
    discharged: dict[str, dict[str, str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "stages": list(self.stages),
            "status": self.status,
            "divergences": [d.to_dict() for d in self.divergences],
            "races": [r.to_dict() for r in self.races],
            "error": self.error,
            "culprit_pass": self.culprit_pass,
            "parallel_loops": self.parallel_loops,
            "loops_checked": self.loops_checked,
            "compared_keys": list(self.compared_keys),
            "discharged": {k: dict(v) for k, v in self.discharged.items()},
        }


@dataclass
class WorkloadResult:
    """Validation outcome of one workload across configurations."""

    workload: str
    suite: str
    entry: str
    n: int
    seeds: list[int]
    processors: list[int]
    configs: list[ConfigResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.configs)

    def to_dict(self) -> dict:
        return {
            "workload": self.workload, "suite": self.suite,
            "entry": self.entry, "n": self.n,
            "seeds": list(self.seeds),
            "processors": list(self.processors),
            "configs": [c.to_dict() for c in self.configs],
        }


# ---------------------------------------------------------------------------
# execution


def run_baseline(case: ValidationCase, seed: int, *,
                 engine: str = "tree") -> dict:
    """Interpret the sequential original; returns the result dict.

    The parse is served by the compilation cache — one parse per source
    no matter how many seeds/configs/bisection steps revisit it (the
    interpreter never mutates the tree, so the instance is shared).
    """
    args, _ = case.make_args(case.n, np.random.default_rng(seed))
    sf = cached_parse(case.source)
    return Interpreter(sf, processors=1, engine=engine).call(
        case.entry, *args)


def run_variant(case: ValidationCase, options: RestructurerOptions,
                seed: int, processors: int,
                shadow: Optional[ShadowRecorder] = None, *,
                engine: str = "tree",
                cedar=None, report=None) -> tuple[dict, object]:
    """Interpret the restructured Cedar program.

    The parse → restructure front end is served by the compilation
    cache; callers looping over (seed × processors) cells may also pass
    a pre-restructured ``cedar``/``report`` pair to skip even the cache
    probe.  A shadow recorder forces the tree-walk engine.
    """
    if cedar is None:
        cedar, report = cached_restructure(case.source, options)
    args, _ = case.make_args(case.n, np.random.default_rng(seed))
    interp = Interpreter(cedar, processors=processors, shadow=shadow,
                         engine=engine)
    return interp.call(case.entry, *args), report


# ---------------------------------------------------------------------------
# comparison


def compare_outputs(baseline: dict, candidate: dict, *,
                    permutation_ok: bool = False,
                    atol: float = DEFAULT_ATOL,
                    rtol: float = DEFAULT_RTOL,
                    processors: int = 0,
                    seed: int = 0) -> list[Divergence]:
    """Element-wise, dtype-aware comparison of two interpreter results."""
    out: list[Divergence] = []
    for key in baseline:
        b, c = baseline[key], candidate.get(key)
        if b is None and c is None:
            continue
        xb = np.asarray(b)
        xc = np.asarray(c) if c is not None else np.asarray(np.nan)
        if permutation_ok and xb.ndim:
            xb, xc = np.sort(xb.ravel()), np.sort(xc.ravel())
        if xb.shape != xc.shape:
            out.append(Divergence(key=key, dtype=str(xb.dtype),
                                  max_abs=float("inf"),
                                  max_rel=float("inf"),
                                  mismatches=max(xb.size, xc.size),
                                  processors=processors, seed=seed))
            continue
        exact = (np.issubdtype(xb.dtype, np.integer)
                 or np.issubdtype(xb.dtype, np.bool_))
        if exact:
            bad = xb != xc
            if bool(np.any(bad)):
                diff = np.abs(xb.astype(np.float64)
                              - xc.astype(np.float64))
                out.append(Divergence(
                    key=key, dtype=str(xb.dtype),
                    max_abs=float(diff.max()),
                    max_rel=float(np.max(
                        diff / np.maximum(np.abs(
                            xb.astype(np.float64)), 1.0))),
                    mismatches=int(np.count_nonzero(bad)),
                    processors=processors, seed=seed))
            continue
        xb64 = xb.astype(np.float64)
        xc64 = xc.astype(np.float64)
        bad = ~np.isclose(xc64, xb64, atol=atol, rtol=rtol, equal_nan=True)
        if bool(np.any(bad)):
            diff = np.abs(xc64 - xb64)
            finite = np.where(np.isfinite(diff), diff, np.inf)
            out.append(Divergence(
                key=key, dtype=str(xb.dtype),
                max_abs=float(np.max(finite)),
                max_rel=float(np.max(
                    finite / np.maximum(np.abs(xb64), 1e-30))),
                mismatches=int(np.count_nonzero(bad)),
                processors=processors, seed=seed))
    return out


# ---------------------------------------------------------------------------
# bisection


def bisect_stages(case: ValidationCase, stages: list[str], *,
                  seed: int, processors: int,
                  atol: float = DEFAULT_ATOL,
                  rtol: float = DEFAULT_RTOL,
                  engine: str = "tree",
                  baseline: Optional[dict] = None) -> Optional[str]:
    """Name the pass stage that introduced a divergence.

    Binary-searches the shortest prefix of ``stages`` whose configuration
    still diverges from the baseline; returns its last stage label, or
    ``"base-parallelization"`` when even the empty prefix (all passes
    off, planner still active) diverges.  Returns None if the full list
    unexpectedly converges (a flaky divergence).  Callers that already
    hold the baseline result for this seed pass it in to avoid a re-run.
    """
    if baseline is None:
        baseline = run_baseline(case, seed, engine=engine)

    def diverges(k: int) -> bool:
        opts = options_for_stages(stages[:k])
        try:
            result, _ = run_variant(case, opts, seed, processors,
                                    engine=engine)
        except ReproError:
            return True  # crashing is as divergent as a wrong answer
        return bool(compare_outputs(
            baseline, result, permutation_ok=case.permutation_ok,
            atol=atol, rtol=rtol, processors=processors, seed=seed))

    if not diverges(len(stages)):
        return None
    if diverges(0):
        return "base-parallelization"
    lo, hi = 0, len(stages)          # invariant: !diverges(lo), diverges(hi)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if diverges(mid):
            hi = mid
        else:
            lo = mid
    return stages[hi - 1]


# ---------------------------------------------------------------------------
# the per-workload driver


def validate_workload(case: ValidationCase,
                      configs: dict[str, Callable[[], RestructurerOptions]],
                      *, seeds: Sequence[int] = (3,),
                      processors: Sequence[int] = (2, 8),
                      atol: float = DEFAULT_ATOL,
                      rtol: float = DEFAULT_RTOL,
                      bisect: bool = True,
                      engine: str = "tree") -> WorkloadResult:
    """Differentially validate one workload under every configuration.

    ``engine`` selects the interpreter engine for baselines and
    bisection; the shadow-instrumented variant runs always use the
    tree-walk (race detection lives there), so results are engine-
    independent by the compiled engine's numerics-identity guarantee.
    """
    wr = WorkloadResult(workload=case.name, suite=case.suite,
                        entry=case.entry, n=case.n,
                        seeds=list(seeds), processors=list(processors))
    baselines = {seed: run_baseline(case, seed, engine=engine)
                 for seed in seeds}
    for cname, factory in configs.items():
        opts = factory()
        cr = ConfigResult(config=cname, stages=config_stages(opts))
        try:
            # one restructure per configuration — the (seed × processors)
            # cells below reuse the pair instead of re-running the front
            # end per cell (and the cache makes even this probe-cheap)
            cedar, report0 = cached_restructure(case.source, opts)
            for seed in seeds:
                for p in processors:
                    shadow = ShadowRecorder()
                    result, report = run_variant(case, opts, seed, p,
                                                 shadow=shadow,
                                                 cedar=cedar,
                                                 report=report0)
                    cr.loops_checked += shadow.loops_checked
                    cr.races.extend(shadow.conflicts)
                    cr.divergences.extend(compare_outputs(
                        baselines[seed], result,
                        permutation_ok=case.permutation_ok,
                        atol=atol, rtol=rtol, processors=p, seed=seed))
                    if not cr.compared_keys:
                        cr.compared_keys = sorted(baselines[seed])
                        cr.parallel_loops = sum(
                            u.parallelized_loops
                            for u in report.units.values())
                        # sorted: the underlying map is built from set
                        # iteration, which varies with hash randomization
                        # — canonical order keeps payloads byte-stable
                        # across processes and runs
                        cr.discharged = {
                            pl.loop_id: dict(sorted(pl.discharged.items()))
                            for u in report.units.values()
                            for pl in u.plans if pl.discharged}
        except ReproError as exc:
            cr.status = "error"
            cr.error = f"{type(exc).__name__}: {exc}"
        else:
            if cr.divergences:
                cr.status = "divergent"
            elif cr.races:
                cr.status = "race"
        if cr.status == "divergent" and bisect:
            first = cr.divergences[0]
            cr.culprit_pass = bisect_stages(
                case, cr.stages, seed=first.seed,
                processors=first.processors, atol=atol, rtol=rtol,
                engine=engine, baseline=baselines.get(first.seed))
        wr.configs.append(cr)
    return wr
