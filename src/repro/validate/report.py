"""The ``repro-validate/1`` report: JSON payload + human rendering.

The JSON document mirrors the trace (``repro-experiment/1``) and profile
(``repro-profile/1``) payloads: a ``schema`` tag,
``schemas/validate.schema.json`` describing the shape, and
``scripts/validate_experiment_json.py`` enforcing the semantic
invariants (status labels consistent with their evidence, summary counts
equal to recounts over the body).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.validate.differential import WorkloadResult

SCHEMA_TAG = "repro-validate/1"


def build_report(results: Sequence[WorkloadResult], *,
                 configs: Iterable[str],
                 quick: bool = False) -> dict:
    """Assemble the ``repro-validate/1`` payload."""
    runs = [c for w in results for c in w.configs]
    return {
        "schema": SCHEMA_TAG,
        "quick": quick,
        "configs": list(configs),
        "workloads": [w.to_dict() for w in results],
        "summary": {
            "workloads": len(results),
            "configs_run": len(runs),
            "ok": sum(1 for c in runs if c.status == "ok"),
            "divergent": sum(1 for c in runs if c.status == "divergent"),
            "race": sum(1 for c in runs if c.status == "race"),
            "error": sum(1 for c in runs if c.status == "error"),
            "loops_checked": sum(c.loops_checked for c in runs),
            "conflicts": sum(len(c.races) for c in runs),
        },
    }


def render_text(results: Sequence[WorkloadResult]) -> str:
    """Terminal rendering: one line per workload × configuration."""
    lines = []
    width = max((len(w.workload) for w in results), default=8)
    for w in results:
        for c in w.configs:
            tag = c.status.upper() if c.status != "ok" else "ok"
            line = (f"{w.workload:<{width}}  {c.config:<9}  {tag:<9} "
                    f"{c.parallel_loops:>3} parallel loop(s), "
                    f"{c.loops_checked:>3} checked")
            lines.append(line)
            for d in c.divergences:
                lines.append(f"{'':{width}}    {d.describe()}")
            for r in c.races:
                lines.append(f"{'':{width}}    RACE {r.describe()}")
            if c.culprit_pass:
                lines.append(f"{'':{width}}    introduced by pass: "
                             f"{c.culprit_pass}")
            if c.error:
                lines.append(f"{'':{width}}    {c.error}")
    total = sum(len(w.configs) for w in results)
    bad = sum(1 for w in results for c in w.configs if not c.ok)
    lines.append("")
    lines.append(f"{total} validation run(s), {total - bad} clean, "
                 f"{bad} failing")
    return "\n".join(lines)
