"""The ``repro-validate/1`` report: JSON payload + human rendering.

The JSON document mirrors the trace (``repro-experiment/1``) and profile
(``repro-profile/1``) payloads: a ``schema`` tag,
``schemas/validate.schema.json`` describing the shape, and
``scripts/validate_experiment_json.py`` enforcing the semantic
invariants (status labels consistent with their evidence, summary counts
equal to recounts over the body).

Assembly and rendering operate on the *dict* form of
:class:`~repro.validate.differential.WorkloadResult` so that the
hardened CLI can splice in journaled (checkpoint/resume) results and
synthesized crash entries without live result objects; the object-based
:func:`build_report`/:func:`render_text` wrappers are unchanged API.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.validate.differential import WorkloadResult

SCHEMA_TAG = "repro-validate/1"


def build_report_from_dicts(wdicts: Sequence[dict], *,
                            configs: Iterable[str],
                            quick: bool = False,
                            faults: Optional[Sequence[dict]] = None) -> dict:
    """Assemble the ``repro-validate/1`` payload from workload dicts.

    ``faults`` is an optional list of
    :class:`repro.faults.harness.FaultReport` dicts from crash-isolated
    workloads; when present it rides along under ``"faults"``.
    """
    runs = [c for w in wdicts for c in w["configs"]]
    payload = {
        "schema": SCHEMA_TAG,
        "quick": quick,
        "configs": list(configs),
        "workloads": list(wdicts),
        "summary": {
            "workloads": len(wdicts),
            "configs_run": len(runs),
            "ok": sum(1 for c in runs if c["status"] == "ok"),
            "divergent": sum(1 for c in runs if c["status"] == "divergent"),
            "race": sum(1 for c in runs if c["status"] == "race"),
            "error": sum(1 for c in runs if c["status"] == "error"),
            "loops_checked": sum(c["loops_checked"] for c in runs),
            "conflicts": sum(len(c["races"]) for c in runs),
        },
    }
    if faults:
        payload["faults"] = list(faults)
    return payload


def build_report(results: Sequence[WorkloadResult], *,
                 configs: Iterable[str],
                 quick: bool = False) -> dict:
    """Assemble the ``repro-validate/1`` payload."""
    return build_report_from_dicts([w.to_dict() for w in results],
                                   configs=configs, quick=quick)


def _describe_divergence(d: dict) -> str:
    return (f"{d['key']}[{d['dtype']}]: {d['mismatches']} element(s) "
            f"diverge (max abs {d['max_abs']:.3g}, max rel "
            f"{d['max_rel']:.3g}) at P={d['processors']}, "
            f"seed {d['seed']}")


def _describe_race(r: dict) -> str:
    element = r.get("element")
    where = (f"{r['var']}({', '.join(map(str, element))})"
             if element else r["var"])
    i, j = r["iterations"]
    return (f"{r['loop']}: {r['kind']} conflict on {where} between "
            f"iterations {i} and {j}")


def render_text_from_dicts(wdicts: Sequence[dict]) -> str:
    """Terminal rendering: one line per workload × configuration."""
    lines = []
    width = max((len(w["workload"]) for w in wdicts), default=8)
    for w in wdicts:
        for c in w["configs"]:
            tag = c["status"].upper() if c["status"] != "ok" else "ok"
            line = (f"{w['workload']:<{width}}  {c['config']:<9}  {tag:<9} "
                    f"{c['parallel_loops']:>3} parallel loop(s), "
                    f"{c['loops_checked']:>3} checked")
            lines.append(line)
            for d in c["divergences"]:
                lines.append(f"{'':{width}}    {_describe_divergence(d)}")
            for r in c["races"]:
                lines.append(f"{'':{width}}    RACE {_describe_race(r)}")
            if c["culprit_pass"]:
                lines.append(f"{'':{width}}    introduced by pass: "
                             f"{c['culprit_pass']}")
            if c["error"]:
                lines.append(f"{'':{width}}    {c['error']}")
    total = sum(len(w["configs"]) for w in wdicts)
    bad = sum(1 for w in wdicts for c in w["configs"]
              if c["status"] != "ok")
    lines.append("")
    lines.append(f"{total} validation run(s), {total - bad} clean, "
                 f"{bad} failing")
    return "\n".join(lines)


def render_text(results: Sequence[WorkloadResult]) -> str:
    """Terminal rendering: one line per workload × configuration."""
    return render_text_from_dicts([w.to_dict() for w in results])
