"""Picklable per-workload cell for the parallel validate sweep.

Lives in its own importable module (not ``__main__``) so
:func:`repro.engine.parallel.parallel_map` can ship it to worker
processes.  One cell = one workload validated under every selected
configuration, crash-isolated exactly like the serial path.
"""

from __future__ import annotations

from repro.validate.configs import PIPELINE_CONFIGS
from repro.validate.differential import validate_workload
from repro.workloads import validation_cases


def run_workload_cell(job: dict) -> dict:
    """Validate one workload; returns a JSON-shaped merge record.

    ``job`` keys: workload, configs (names), seeds, processors, atol,
    rtol, bisect, timeout, engine.  Returns ``{"workload", "dict",
    "fault"}`` where exactly one of ``dict`` (the WorkloadResult) and
    ``fault`` (a FaultReport dict) is non-None.
    """
    from repro.faults.harness import run_isolated

    case = validation_cases()[job["workload"]]
    configs = {name: PIPELINE_CONFIGS[name] for name in job["configs"]}
    result, fault = run_isolated(
        lambda: validate_workload(
            case, configs, seeds=job["seeds"],
            processors=job["processors"], atol=job["atol"],
            rtol=job["rtol"], bisect=job["bisect"],
            engine=job["engine"]),
        label=f"validate {case.name}", timeout=job["timeout"])
    if fault is not None:
        return {"workload": case.name, "dict": None,
                "fault": fault.to_dict()}
    return {"workload": case.name, "dict": result.to_dict(), "fault": None}
