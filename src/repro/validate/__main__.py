"""Command-line translation validator.

``python -m repro.validate --all``
    Differentially validate every linalg and Perfect workload under the
    automatic and manual pipeline configurations, with the dynamic race
    detector attached.

``python -m repro.validate tridag TRFD``
    Validate a named subset.

``python -m repro.validate --quick``
    The fast CI subset.

``--json`` writes the ``repro-validate/1`` payload to stdout (or
``-o FILE``); the default output is a human-readable table.

Resilience (repro.faults): each workload runs under crash isolation and
an optional ``--timeout`` watchdog — one crashing or hanging workload is
reported as a structured fault and the sweep continues.  ``--journal
FILE`` checkpoints completed workloads to a JSONL file so an interrupted
sweep resumes where it stopped.

Exit status:
    0  every run validated clean
    1  at least one divergence, race, or modelled error
    2  usage error (bad workload/flag — argparse)
    3  internal fault: a workload crashed the harness or hit its
       wall-clock/step budget (its FaultReport is in the payload)
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.engine.parallel import WorkerCrash, parallel_map
from repro.experiments.common import add_engine_args, configure_engine
from repro.validate.configs import PIPELINE_CONFIGS
from repro.validate.differential import DEFAULT_ATOL, DEFAULT_RTOL
from repro.validate.report import build_report_from_dicts, render_text_from_dicts
from repro.validate.worker import run_workload_cell
from repro.workloads import validation_cases

#: the CI smoke subset: one routine per obstacle family, all fast
QUICK_WORKLOADS = ("tridag", "cg", "sparse", "TRFD", "MDG", "TRACK")


def _crashed_workload_dict(case, config_names, kind: str,
                           message: str) -> dict:
    """Synthesize a schema-valid workload entry for a crashed run.

    Every selected configuration gets an ``error`` ConfigResult carrying
    the fault's message, so summary recounts and renderers need no
    special case.
    """
    return {
        "workload": case.name, "suite": case.suite, "entry": case.entry,
        "n": case.n, "seeds": [], "processors": [],
        "configs": [{
            "config": name, "stages": [], "status": "error",
            "divergences": [], "races": [],
            "error": f"harness fault ({kind}): {message}",
            "culprit_pass": None, "parallel_loops": 0, "loops_checked": 0,
            "compared_keys": [], "discharged": {},
        } for name in config_names],
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description="differential translation validation with dynamic "
                    "race detection")
    ap.add_argument("workloads", nargs="*",
                    help="workload names (default: --all)")
    ap.add_argument("--all", action="store_true",
                    help="validate every workload")
    ap.add_argument("--quick", action="store_true",
                    help=f"fast subset: {', '.join(QUICK_WORKLOADS)}")
    ap.add_argument("--suite", choices=("linalg", "perfect"),
                    help="restrict to one workload suite")
    ap.add_argument("--config", action="append", dest="configs",
                    choices=sorted(PIPELINE_CONFIGS),
                    help="configuration(s) to validate (default: all)")
    ap.add_argument("--seeds", type=int, nargs="+", default=[3],
                    metavar="SEED", help="input seeds (default: 3)")
    ap.add_argument("--processors", type=int, nargs="+", default=[2, 8],
                    metavar="P",
                    help="simulated processor counts (default: 2 8)")
    ap.add_argument("--atol", type=float, default=DEFAULT_ATOL)
    ap.add_argument("--rtol", type=float, default=DEFAULT_RTOL)
    ap.add_argument("--no-bisect", action="store_true",
                    help="skip pass bisection on divergence")
    ap.add_argument("--timeout", type=float, default=None, metavar="SEC",
                    help="wall-clock budget per workload (watchdog; "
                         "a timed-out workload is isolated, not fatal)")
    ap.add_argument("--journal", metavar="FILE", default=None,
                    help="JSONL checkpoint of completed workloads; rerun "
                         "with the same file to resume an interrupted "
                         "sweep")
    ap.add_argument("--json", action="store_true",
                    help="emit the repro-validate/1 JSON payload")
    ap.add_argument("-o", "--output", metavar="FILE",
                    help="write the JSON payload to FILE")
    add_engine_args(ap)
    ns = ap.parse_args(argv)
    jobs = configure_engine(ns)
    # baselines and bisection default to the closure tier; race-checked
    # variant runs always use the instrumented tree-walk regardless
    engine = ns.engine or os.environ.get("REPRO_ENGINE") or "compiled"

    cases = validation_cases()
    if ns.workloads:
        unknown = [w for w in ns.workloads if w not in cases]
        if unknown:
            ap.error(f"unknown workload(s): {', '.join(unknown)} "
                     f"(known: {', '.join(sorted(cases))})")
        selected = [cases[w] for w in ns.workloads]
    elif ns.quick:
        selected = [cases[w] for w in QUICK_WORKLOADS]
    else:
        selected = [cases[w] for w in sorted(cases)]
    if ns.suite:
        selected = [c for c in selected if c.suite == ns.suite]
        if not selected:
            ap.error(f"no selected workload in suite {ns.suite!r}")

    config_names = ns.configs or sorted(PIPELINE_CONFIGS)

    from repro.faults.harness import SweepJournal

    journal = SweepJournal(ns.journal)
    wdicts: list[dict] = []
    fault_reports: list[dict] = []
    jobs_list: list[dict] = []
    positions: list[int] = []
    for case in selected:
        if ns.journal and case.name in journal:
            wdicts.append(journal.payload(case.name))
            if not ns.json:
                print(f"{case.name}: resumed from journal",
                      file=sys.stderr)
            continue
        wdicts.append({})                # placeholder, filled on merge
        positions.append(len(wdicts) - 1)
        jobs_list.append({
            "workload": case.name, "configs": config_names,
            "seeds": ns.seeds, "processors": ns.processors,
            "atol": ns.atol, "rtol": ns.rtol,
            "bisect": not ns.no_bisect, "timeout": ns.timeout,
            "engine": engine,
        })
    if jobs_list and not ns.json:
        print(f"validating {len(jobs_list)} workload(s), "
              f"jobs={jobs}, engine={engine} ...", file=sys.stderr)

    from repro.obs.log import get_logger

    log = get_logger("validate")

    def merge(i: int, res) -> None:
        # fires in submission order: results land in selection order and
        # the journal/fault lists grow deterministically — byte-identical
        # payloads whatever the job count
        name = jobs_list[i]["workload"]
        case = cases[name]
        if isinstance(res, WorkerCrash):
            fd = res.to_fault_dict()
        else:
            fd = res["fault"]
        if fd is not None:
            fault_reports.append(fd)
            wd = _crashed_workload_dict(case, config_names,
                                        fd["kind"], fd["message"])
            if not ns.json:
                print(f"{name}: FAULT ({fd['kind']}) {fd['message']}",
                      file=sys.stderr)
            log.warning("workload_fault", workload=name,
                        kind=fd["kind"], message=fd["message"])
            # not journaled: a resumed sweep retries faulted workloads
        else:
            wd = res["dict"]
            journal.record(name, wd)
            ok = all(c["status"] == "ok" for c in wd["configs"])
            if not ns.json:
                print(f"{name}: {'ok' if ok else 'NOT OK'}",
                      file=sys.stderr)
            log.info("workload_done", workload=name, ok=ok)
        wdicts[positions[i]] = wd

    parallel_map(run_workload_cell, jobs_list, jobs,
                 labels=[f"validate {j['workload']}" for j in jobs_list],
                 on_result=merge)
    from repro.experiments.common import finalize_telemetry

    finalize_telemetry("repro.validate")

    payload = build_report_from_dicts(wdicts, configs=config_names,
                                      quick=ns.quick, faults=fault_reports)
    if ns.output:
        with open(ns.output, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if ns.json:
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        print(render_text_from_dicts(wdicts))

    if fault_reports:
        return 3
    all_ok = all(c["status"] == "ok"
                 for w in wdicts for c in w["configs"])
    return 0 if all_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
