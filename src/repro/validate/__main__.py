"""Command-line translation validator.

``python -m repro.validate --all``
    Differentially validate every linalg and Perfect workload under the
    automatic and manual pipeline configurations, with the dynamic race
    detector attached.  Exit status 1 if any run diverges, races, or
    errors.

``python -m repro.validate tridag TRFD``
    Validate a named subset.

``python -m repro.validate --quick``
    The fast CI subset.

``--json`` writes the ``repro-validate/1`` payload to stdout (or
``-o FILE``); the default output is a human-readable table.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.validate.configs import PIPELINE_CONFIGS
from repro.validate.differential import (
    DEFAULT_ATOL,
    DEFAULT_RTOL,
    validate_workload,
)
from repro.validate.report import build_report, render_text
from repro.workloads import validation_cases

#: the CI smoke subset: one routine per obstacle family, all fast
QUICK_WORKLOADS = ("tridag", "cg", "sparse", "TRFD", "MDG", "TRACK")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description="differential translation validation with dynamic "
                    "race detection")
    ap.add_argument("workloads", nargs="*",
                    help="workload names (default: --all)")
    ap.add_argument("--all", action="store_true",
                    help="validate every workload")
    ap.add_argument("--quick", action="store_true",
                    help=f"fast subset: {', '.join(QUICK_WORKLOADS)}")
    ap.add_argument("--suite", choices=("linalg", "perfect"),
                    help="restrict to one workload suite")
    ap.add_argument("--config", action="append", dest="configs",
                    choices=sorted(PIPELINE_CONFIGS),
                    help="configuration(s) to validate (default: all)")
    ap.add_argument("--seeds", type=int, nargs="+", default=[3],
                    metavar="SEED", help="input seeds (default: 3)")
    ap.add_argument("--processors", type=int, nargs="+", default=[2, 8],
                    metavar="P",
                    help="simulated processor counts (default: 2 8)")
    ap.add_argument("--atol", type=float, default=DEFAULT_ATOL)
    ap.add_argument("--rtol", type=float, default=DEFAULT_RTOL)
    ap.add_argument("--no-bisect", action="store_true",
                    help="skip pass bisection on divergence")
    ap.add_argument("--json", action="store_true",
                    help="emit the repro-validate/1 JSON payload")
    ap.add_argument("-o", "--output", metavar="FILE",
                    help="write the JSON payload to FILE")
    ns = ap.parse_args(argv)

    cases = validation_cases()
    if ns.workloads:
        unknown = [w for w in ns.workloads if w not in cases]
        if unknown:
            ap.error(f"unknown workload(s): {', '.join(unknown)} "
                     f"(known: {', '.join(sorted(cases))})")
        selected = [cases[w] for w in ns.workloads]
    elif ns.quick:
        selected = [cases[w] for w in QUICK_WORKLOADS]
    else:
        selected = [cases[w] for w in sorted(cases)]
    if ns.suite:
        selected = [c for c in selected if c.suite == ns.suite]
        if not selected:
            ap.error(f"no selected workload in suite {ns.suite!r}")

    config_names = ns.configs or sorted(PIPELINE_CONFIGS)
    configs = {name: PIPELINE_CONFIGS[name] for name in config_names}

    results = []
    for case in selected:
        if not ns.json:
            print(f"validating {case.name} "
                  f"({case.suite}, n={case.n}) ...", file=sys.stderr)
        results.append(validate_workload(
            case, configs, seeds=ns.seeds, processors=ns.processors,
            atol=ns.atol, rtol=ns.rtol, bisect=not ns.no_bisect))

    payload = build_report(results, configs=config_names, quick=ns.quick)
    if ns.output:
        with open(ns.output, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if ns.json:
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        print(render_text(results))

    return 0 if all(w.ok for w in results) else 1


if __name__ == "__main__":
    raise SystemExit(main())
