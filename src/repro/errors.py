"""Exception hierarchy for the repro package.

Every error raised by repro code derives from :class:`ReproError` so callers
can catch the whole family with one clause.  Front-end errors carry source
coordinates (line, column) when available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all repro errors."""


class SourceError(ReproError):
    """An error tied to a position in Fortran source text.

    ``raw_message`` keeps the location-free text (the diagnostics layer
    re-renders locations itself); ``code`` optionally carries the
    diagnostic code (e.g. ``F101``) the error maps to.
    """

    code: str | None = None

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        self.raw_message = message
        loc = ""
        if line is not None:
            loc = f" at line {line}"
            if col is not None:
                loc += f", column {col}"
        super().__init__(message + loc)


class LexError(SourceError):
    """Raised by the fixed-form lexer on malformed input."""


class ParseError(SourceError):
    """Raised by the parser on a statement it cannot parse."""


class SemanticError(SourceError):
    """Raised for semantically invalid programs (bad types, shapes, labels)."""


class AnalysisError(ReproError):
    """Raised when an analysis is asked something it cannot answer."""


class TransformError(ReproError):
    """Raised when a restructuring pass is applied to an ineligible target."""


class InterpreterError(ReproError):
    """Raised by the functional interpreter on runtime errors."""


class MachineModelError(ReproError):
    """Raised for inconsistent machine configurations or timing queries."""


class FaultInjectionError(ReproError):
    """Raised for malformed or unsatisfiable fault-injection plans."""


class BudgetExceededError(ReproError):
    """A wall-clock or step budget ran out before the work completed.

    Raised by the harness watchdog (:func:`repro.faults.harness.watchdog`)
    and by the interpreter's step-budget guard, so runaway transformed
    loops fail fast instead of hanging a sweep.
    """


class InterpreterBudgetError(InterpreterError, BudgetExceededError):
    """The interpreter exhausted its statement budget (livelock guard).

    Carries the source line of the statement being executed when the
    budget ran out, which is normally inside the offending loop.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message += f" (executing statement at line {line})"
        super().__init__(message)
