"""Human-readable rendering of experiment telemetry.

:class:`TraceReport` renders the per-workload trace dictionaries that the
experiment drivers attach to their tables (``Table.meta["trace"]``): for
each workload, the serial-vs-parallel cycle breakdown by ledger category
and the restructurer's decision log.
"""

from __future__ import annotations

from typing import Mapping

from repro.trace.ledger import CATEGORIES, HIERARCHY


def _breakdown_lines(breakdown: Mapping, indent: str) -> list[str]:
    """Render a ``CycleLedger.to_dict()``-shaped mapping."""
    total = breakdown.get("total", 0.0)
    lines = [f"{indent}total {total:,.0f} cycles"]
    for group, cats in breakdown.get("groups", {}).items():
        gt = cats.get("total", 0.0)
        if not gt:
            continue
        pct = f" ({100.0 * gt / total:.1f}%)" if total else ""
        lines.append(f"{indent}  {group}: {gt:,.0f}{pct}")
        for name, v in cats.items():
            if name == "total" or not v:
                continue
            cpct = f" ({100.0 * v / total:.1f}%)" if total else ""
            lines.append(f"{indent}    {name}: {v:,.0f}{cpct}")
    return lines


class TraceReport:
    """Renders one experiment's trace metadata.

    ``workloads`` maps workload name → dict with any of the keys
    ``speedup``, ``serial_cycles``, ``parallel_cycles``,
    ``serial_breakdown``, ``parallel_breakdown`` (ledger dicts) and
    ``decisions`` (list of ``DecisionEvent.to_dict()`` entries).
    """

    def __init__(self, title: str, workloads: Mapping[str, Mapping]):
        self.title = title
        self.workloads = workloads

    def render(self) -> str:
        lines = [f"{self.title} — cycle attribution",
                 "-" * (len(self.title) + 20)]
        for name, w in self.workloads.items():
            head = name
            if "speedup" in w:
                head += f"  (speedup {w['speedup']:.2f})"
            lines.append(head)
            for label, key in (("serial", "serial_breakdown"),
                               ("restructured", "parallel_breakdown")):
                bd = w.get(key)
                if bd:
                    lines.append(f"  {label}:")
                    lines.extend(_breakdown_lines(bd, "  "))
            decisions = w.get("decisions") or []
            if decisions:
                lines.append("  decisions:")
                for d in decisions:
                    lines.append("    " + _render_decision(d))
            lines.append("")
        return "\n".join(lines).rstrip()


def _render_decision(d: Mapping) -> str:
    loc = f"@{d['line']}" if d.get("line") is not None else ""
    loop = f"{d.get('loop', '')}{loc}" or "<unit>"
    cost = (f" [{d['predicted_cycles']:.0f} cyc]"
            if d.get("predicted_cycles") is not None else "")
    why = f": {d['reason']}" if d.get("reason") else ""
    return (f"{d.get('unit', '?')}:{loop} {d.get('technique', '?')} "
            f"{d.get('action', '?')}{cost}{why}")


__all__ = ["TraceReport", "CATEGORIES", "HIERARCHY"]
