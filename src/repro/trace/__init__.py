"""Cycle-attribution tracing and structured experiment telemetry.

The paper's methodology (§4.1) is diagnostic: knowing *where* the cycles
went — startup, dispatch, global-memory traffic, paging — is what
motivated every restructuring technique.  This package keeps that
breakdown instead of throwing it away:

- :mod:`repro.trace.ledger` — :class:`CycleLedger`, a hierarchical cycle
  counter the machine models charge into (with a zero-overhead
  :data:`NULL_LEDGER` default);
- :mod:`repro.trace.events` — :class:`DecisionEvent` records of what the
  restructurer tried per loop nest and why candidates were rejected,
  collected by a :class:`TraceRecorder` sink;
- :mod:`repro.trace.report` — :class:`TraceReport`, the human-readable
  renderer of per-workload cycle breakdowns and decision logs.
"""

from repro.trace.events import (
    NULL_SINK,
    DecisionEvent,
    TeeSink,
    TraceRecorder,
    TraceSink,
)
from repro.trace.ledger import (
    CATEGORIES,
    HIERARCHY,
    NULL_LEDGER,
    CycleLedger,
    NullLedger,
)
from repro.trace.report import TraceReport

__all__ = [
    "CATEGORIES",
    "HIERARCHY",
    "NULL_LEDGER",
    "NULL_SINK",
    "CycleLedger",
    "DecisionEvent",
    "NullLedger",
    "TeeSink",
    "TraceRecorder",
    "TraceSink",
    "TraceReport",
]
