"""Structured restructurer decision events (the paper's §4.1 hand-log).

Every technique the planner or a transformation pass *tries* produces a
:class:`DecisionEvent`: which loop (identified by index variable and
source line), what was attempted, whether it was accepted, and — the
part the paper's methodology leans on — *why not* when it was rejected.
Sinks are duck-typed on a single ``emit(event)`` method;
:class:`TraceRecorder` is the standard in-memory collector and
:data:`NULL_SINK` the zero-overhead default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Protocol, runtime_checkable

#: event actions, in roughly decreasing order of interest
ACTIONS = ("accepted", "rejected", "failed", "applied", "declined", "noted")


@dataclass(frozen=True)
class DecisionEvent:
    """One restructuring decision about one loop nest (or unit).

    ``kind`` distinguishes planner version selection (``"plan"``) from
    transformation-pass bookkeeping (``"pass"``).  ``technique`` is the
    candidate version label (``"xdoall"``, ``"cdoacross"``, ...) or the
    pass name (``"privatize"``, ``"fusion"``, ...).  ``predicted_cycles``
    carries the compile-time cost-model score for planner candidates.
    """

    kind: str                  # "plan" | "pass"
    unit: str                  # program unit name
    technique: str
    action: str                # one of ACTIONS
    loop: str = ""             # e.g. "do i"
    line: Optional[int] = None  # source line of the DO statement
    reason: str = ""
    predicted_cycles: Optional[float] = None

    def where(self) -> str:
        loc = f"@{self.line}" if self.line is not None else ""
        return f"{self.unit}:{self.loop}{loc}" if self.loop else self.unit

    def to_dict(self) -> dict:
        d = {
            "kind": self.kind,
            "unit": self.unit,
            "technique": self.technique,
            "action": self.action,
        }
        if self.loop:
            d["loop"] = self.loop
        if self.line is not None:
            d["line"] = self.line
        if self.reason:
            d["reason"] = self.reason
        if self.predicted_cycles is not None:
            d["predicted_cycles"] = self.predicted_cycles
        return d

    def render(self) -> str:
        cost = (f" [{self.predicted_cycles:.0f} cyc]"
                if self.predicted_cycles is not None else "")
        why = f": {self.reason}" if self.reason else ""
        return f"{self.where()} {self.technique} {self.action}{cost}{why}"


@runtime_checkable
class TraceSink(Protocol):
    """Anything with an ``emit(event)`` method accepts decision events."""

    def emit(self, event: DecisionEvent) -> None: ...


class _NullSink:
    """Drops every event (the zero-overhead default)."""

    def emit(self, event: DecisionEvent) -> None:
        pass


#: shared default sink
NULL_SINK = _NullSink()


@dataclass
class TraceRecorder:
    """In-memory event collector with the common filters."""

    events: list[DecisionEvent] = field(default_factory=list)

    def emit(self, event: DecisionEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- filters -------------------------------------------------------------

    def for_unit(self, unit: str) -> list[DecisionEvent]:
        return [e for e in self.events if e.unit == unit]

    def for_loop(self, loop: str,
                 line: Optional[int] = None) -> list[DecisionEvent]:
        return [e for e in self.events
                if e.loop == loop and (line is None or e.line == line)]

    def rejections(self) -> list[DecisionEvent]:
        return [e for e in self.events
                if e.action in ("rejected", "failed", "declined")]

    def accepted(self) -> list[DecisionEvent]:
        return [e for e in self.events if e.action == "accepted"]

    def to_list(self) -> list[dict]:
        return [e.to_dict() for e in self.events]


class TeeSink:
    """Forwards each event to several sinks (recorder + user sink)."""

    def __init__(self, *sinks: TraceSink):
        self.sinks = [s for s in sinks if s is not None and s is not NULL_SINK]

    def emit(self, event: DecisionEvent) -> None:
        for s in self.sinks:
            s.emit(event)


def render_events(events: Iterable[DecisionEvent]) -> str:
    return "\n".join(e.render() for e in events)
