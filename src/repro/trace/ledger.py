"""Hierarchical cycle accounting (the "where did the cycles go" ledger).

A :class:`CycleLedger` splits an execution-time estimate into the paper's
§2 cost sources: processor work (scalar vs vector), parallel-loop
machinery (startup, dispatch, synchronization), the memory hierarchy
(global vs cluster vs cache traffic, prefetched streams), and virtual
memory (page faults).  The machine models charge into a ledger as they
price operations; the performance estimator composes per-region ledgers
exactly as it composes cycle totals, so the category sums always equal
the aggregate cycle count — tracing changes *attribution*, never totals.

:data:`NULL_LEDGER` is a shared do-nothing instance used as the default
everywhere, so untraced estimation pays (almost) nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

#: flat category names, in rendering order
CATEGORIES = (
    "compute",      # scalar arithmetic, branches, call linkage
    "vector",       # vector-pipeline operations (incl. startup ramps)
    "startup",      # parallel-loop activation (CDOALL bus / SDOALL+XDOALL
    #                 helper-task wakeup through global memory)
    "dispatch",     # per-chunk self-scheduling cost on the critical path
    "sync",         # await/advance cascades, locks, combining trees
    "mem_global",   # un-prefetched global-memory element traffic + the
    #                 bandwidth-saturation stall (Figure 8)
    "mem_cluster",  # cluster-memory element traffic
    "mem_cache",    # private/cached element traffic
    "prefetch",     # prefetched global vector streams (trigger + delivery)
    "page_fault",   # virtual-memory overhead (Table 1's mprove)
    "fault",        # injected-fault degradation (dead/stalled CEs, bank
    #                 outages, lost syncs — repro.faults); zero on a
    #                 healthy machine
)

#: two-level grouping used by ``to_dict``/``render`` — maps the flat
#: categories onto the paper's §2 cost-source taxonomy
HIERARCHY = {
    "processor": ("compute", "vector"),
    "parallel_overhead": ("startup", "dispatch", "sync"),
    "memory": ("mem_global", "mem_cluster", "mem_cache", "prefetch"),
    "paging": ("page_fault",),
    "degradation": ("fault",),
}


@dataclass
class CycleLedger:
    """Mutable per-category cycle counter.

    Supports the same composition algebra as
    :class:`repro.machine.memory.AccessProfile`: in-place :meth:`add` and
    a scaling copy :meth:`scaled`, which is how loop trip counts and
    averaged branch arms propagate through the estimator.
    """

    compute: float = 0.0
    vector: float = 0.0
    startup: float = 0.0
    dispatch: float = 0.0
    sync: float = 0.0
    mem_global: float = 0.0
    mem_cluster: float = 0.0
    mem_cache: float = 0.0
    prefetch: float = 0.0
    page_fault: float = 0.0
    fault: float = 0.0

    # -- composition ---------------------------------------------------------

    def charge(self, category: str, cycles: float) -> None:
        """Add ``cycles`` to one category (must be in :data:`CATEGORIES`)."""
        if category not in CATEGORIES:
            raise KeyError(f"unknown ledger category {category!r}")
        setattr(self, category, getattr(self, category) + cycles)

    def count(self, counter: str, n: float = 1.0) -> None:
        """Record ``n`` hardware-counter events (cache refs, prefetch
        triggers, page faults, ...).

        A no-op here: plain ledgers keep cycles only.  The profiling
        ledger (:class:`repro.prof.counters.ProfLedger`) overrides this to
        accumulate an :class:`repro.prof.counters.HwCounters` alongside the
        cycle categories, composed by the same ``add``/``scaled`` algebra —
        which is what lets counter×latency totals reconcile with the
        ledger's memory categories exactly.
        """

    def add(self, other: "CycleLedger") -> None:
        for c in CATEGORIES:
            setattr(self, c, getattr(self, c) + getattr(other, c))

    def scaled(self, k: float) -> "CycleLedger":
        return CycleLedger(**{c: getattr(self, c) * k for c in CATEGORIES})

    def copy(self) -> "CycleLedger":
        return self.scaled(1.0)

    # -- inspection ----------------------------------------------------------

    def total(self) -> float:
        return sum(getattr(self, c) for c in CATEGORIES)

    def group_total(self, group: str) -> float:
        return sum(getattr(self, c) for c in HIERARCHY[group])

    def to_dict(self) -> dict:
        """Hierarchical JSON-ready view: groups → categories → cycles."""
        return {
            "total": self.total(),
            "groups": {
                g: {
                    "total": self.group_total(g),
                    **{c: getattr(self, c) for c in cats},
                }
                for g, cats in HIERARCHY.items()
            },
        }

    def render(self, indent: str = "") -> str:
        """Two-level text breakdown with percentages of the total."""
        total = self.total()
        lines = [f"{indent}total {total:.0f} cycles"]
        for g, cats in HIERARCHY.items():
            gt = self.group_total(g)
            if gt == 0:
                continue
            lines.append(f"{indent}  {g:<17} {gt:>14.0f}  "
                         f"({100.0 * gt / total:5.1f}%)" if total else
                         f"{indent}  {g:<17} {gt:>14.0f}")
            for c in cats:
                v = getattr(self, c)
                if v == 0:
                    continue
                pct = f"({100.0 * v / total:5.1f}%)" if total else ""
                lines.append(f"{indent}    {c:<15} {v:>14.0f}  {pct}")
        return "\n".join(lines)


class NullLedger(CycleLedger):
    """Zero-overhead sink: every charge is dropped.

    The shared :data:`NULL_LEDGER` instance is the default ``ledger``
    argument of every machine-model costing method, so callers that do
    not trace pay only a no-op call.
    """

    def charge(self, category: str, cycles: float) -> None:
        pass

    def add(self, other: CycleLedger) -> None:
        pass

    def scaled(self, k: float) -> "NullLedger":
        return self

    def copy(self) -> "NullLedger":
        return self


#: shared default sink for all machine-model costing methods
NULL_LEDGER = NullLedger()
