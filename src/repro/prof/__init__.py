"""repro.prof — simulation profiler for the restructuring pipeline.

Layers observability onto the discrete-event machine model:

- :mod:`repro.prof.counters` — hardware-style event counters
  (:class:`HwCounters`) carried on a :class:`ProfLedger`, reconciled
  against the :class:`repro.trace.CycleLedger` cycle categories;
- :mod:`repro.prof.timeline` — per-CE timeline spans
  (:class:`TimelineRecorder`) emitted by the loop scheduler;
- :mod:`repro.prof.session` — per-experiment collection and the
  ``repro-profile/1`` document;
- :mod:`repro.prof.export` — Chrome trace-event / Perfetto export;
- :mod:`repro.prof.report` — ASCII Gantt + utilization reports;
- :mod:`repro.prof.diff` — benchmark regression diffing (the CI gate).

This package must stay importable from ``repro.machine`` — keep it free
of ``repro.execmodel`` / ``repro.experiments`` imports.
"""

from repro.prof.counters import (
    COUNTERS,
    HwCounters,
    ProfLedger,
    memory_cycles_from_counters,
    reconcile,
)
from repro.prof.diff import Delta, DiffResult, diff_payloads, extract_metrics
from repro.prof.export import chrome_trace, write_chrome_trace
from repro.prof.report import render_gantt, render_report, render_utilization
from repro.prof.session import (
    MACHINE_CONSTANTS,
    PROFILE_SCHEMA,
    ProfileSession,
    RunProfile,
    machine_constants,
)
from repro.prof.timeline import (
    CATEGORY_GLYPHS,
    CONTROL_TRACK,
    LoopRecord,
    Span,
    TimelineRecorder,
)

__all__ = [
    "COUNTERS",
    "HwCounters",
    "ProfLedger",
    "memory_cycles_from_counters",
    "reconcile",
    "Delta",
    "DiffResult",
    "diff_payloads",
    "extract_metrics",
    "chrome_trace",
    "write_chrome_trace",
    "render_gantt",
    "render_report",
    "render_utilization",
    "MACHINE_CONSTANTS",
    "PROFILE_SCHEMA",
    "ProfileSession",
    "RunProfile",
    "machine_constants",
    "CATEGORY_GLYPHS",
    "CONTROL_TRACK",
    "LoopRecord",
    "Span",
    "TimelineRecorder",
]
