"""Command-line front end for the profiler.

``python -m repro.prof diff OLD NEW``
    Compare two ``BENCH_*.json`` / ``--json`` / profile payloads and exit
    nonzero when any workload regressed beyond ``--threshold``.  This is
    the CI regression gate (see ``scripts/bench_diff.py``).

``python -m repro.prof gantt TRACE.json``
    Re-render a ``trace.json`` written by ``--profile`` as ASCII per-CE
    Gantt charts, for terminals without Perfetto.

``python -m repro.prof report PROFILE.json``
    Per-loop utilization/imbalance summary from a profile document.

Exit status (shared CLI convention — see also ``repro.experiments``,
``repro.validate``, ``repro.faults``):
    0  success / no regression
    1  regression beyond threshold (``diff``)
    2  usage error (bad flags, malformed/mismatched payloads)
    3  internal fault (unexpected exception — a harness bug)
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.prof.diff import diff_payloads
from repro.prof.export import run_events  # noqa: F401  (re-export symmetry)
from repro.prof.report import render_gantt, render_utilization
from repro.prof.timeline import CONTROL_TRACK, LoopRecord, Span


def _load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def loops_from_trace(trace: dict, pid: int | None = None) -> list[LoopRecord]:
    """Rebuild :class:`LoopRecord`s from a Chrome trace document.

    ``pid`` selects one profiled run; ``None`` takes them all in pid
    order (they share one sequential clock per run).
    """
    events = trace.get("traceEvents", [])
    records: list[LoopRecord] = []
    envelopes = [e for e in events
                 if e.get("ph") == "X" and e.get("cat") == "loop"
                 and (pid is None or e.get("pid") == pid)]
    spans = [e for e in events
             if e.get("ph") == "X" and e.get("cat") != "loop"
             and (pid is None or e.get("pid") == pid)]
    for env in sorted(envelopes, key=lambda e: (e["pid"], e["ts"])):
        base, dur = env["ts"], env["dur"]
        label, tag = env["name"].rsplit(" ", 1)
        rec = LoopRecord(
            label=label, level=tag[:1], order=tag[1:],
            workers=int(env.get("args", {}).get("workers", 0)),
            base=base, total=dur,
            busy=float(env.get("args", {}).get("busy_time", 0.0)))
        for ev in spans:
            if ev["pid"] != env["pid"]:
                continue
            ts = ev["ts"]
            if not (base <= ts < base + dur or (dur == 0 and ts == base)):
                continue
            args = ev.get("args", {})
            worker = CONTROL_TRACK if ev["tid"] == 0 else ev["tid"] - 1
            rec.spans.append(Span(
                worker=worker, category=ev["cat"],
                start=ts - base, end=ts - base + ev["dur"],
                busy=bool(args.get("busy", True)),
                count=int(args.get("count", 1))))
        records.append(rec)
    return records


def _cmd_diff(ns: argparse.Namespace) -> int:
    try:
        result = diff_payloads(_load(ns.old), _load(ns.new),
                               threshold=ns.threshold)
    except ValueError as exc:
        print(f"bench-diff: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    return 1 if result.failed else 0


def _cmd_gantt(ns: argparse.Namespace) -> int:
    loops = loops_from_trace(_load(ns.trace), pid=ns.pid)
    if not loops:
        print("(no loop records in trace)")
        return 0
    print(render_gantt(loops, width=ns.width))
    return 0


def _cmd_report(ns: argparse.Namespace) -> int:
    doc = _load(ns.profile)
    for run in doc.get("runs", []):
        print(f"== {doc.get('experiment', '?')}/{run['workload']} "
              f"[{run['role']}]  total {run['total_cycles']:,.0f} cyc")
        recs = []
        for lp in run.get("loops", []):
            rec = LoopRecord(
                label=lp["label"], level=lp["level"], order=lp["order"],
                workers=lp["workers"], base=lp["base"],
                total=lp["total_time"], busy=lp["busy_time"])
            # worker_busy is stored; reconstruct one busy span per CE so
            # the utilization table works without full span data
            for w, b in enumerate(lp.get("worker_busy", [])):
                if b > 0:
                    rec.spans.append(Span(w, "chunk", 0.0, b))
            recs.append(rec)
        print(render_utilization(recs))
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.prof",
        description="Profiler utilities: regression diffing and "
                    "terminal rendering of traces.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("diff", help="compare two benchmark/profile payloads")
    p.add_argument("old", help="baseline payload (BENCH_*.json / profile)")
    p.add_argument("new", help="candidate payload")
    p.add_argument("--threshold", type=float, default=0.02,
                   help="relative regression tolerance (default 0.02)")
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("gantt", help="ASCII Gantt from a trace.json")
    p.add_argument("trace")
    p.add_argument("--pid", type=int, default=None,
                   help="restrict to one profiled run")
    p.add_argument("--width", type=int, default=64)
    p.set_defaults(func=_cmd_gantt)

    p = sub.add_parser("report", help="utilization table from a profile JSON")
    p.add_argument("profile")
    p.set_defaults(func=_cmd_report)

    ns = parser.parse_args(argv)
    try:
        return ns.func(ns)
    except BrokenPipeError:
        # output piped into head etc. — not an error
        sys.stderr.close()
        return 0
    except OSError as exc:
        # unreadable/missing input files are usage errors, not faults
        print(f"repro.prof: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"repro.prof: malformed JSON payload: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # noqa: BLE001 — CLI boundary
        print(f"repro.prof: internal fault: "
              f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())
