"""Per-worker (per-CE) timeline spans of simulated parallel loops.

The loop scheduler prices each parallel loop as a miniature discrete
event: workers run a preamble, repeatedly grab chunks (dispatch + body),
wait on DOACROSS signals, idle when the work runs out, and finish with a
postamble.  With a :class:`TimelineRecorder` attached, the scheduler
additionally *materializes* that schedule as :class:`Span`s on per-worker
tracks — which is what the paper's §4.2.4 loop-spreading and §5
data-placement analyses need: idle gaps, cluster load imbalance, and
where on the timeline the memory system hurt.

Invariant (cross-validated against :class:`repro.trace.CycleLedger` by
the tests): for every recorded loop, the sum of busy span durations
equals ``LoopTiming.busy_time`` exactly.  The scheduler marks each span
busy or not (``startup``/``idle``/waiting never are; DOACROSS
preamble/dispatch follow the timing model's own busy accounting).

Loops are laid out sequentially on the recorder's clock in pricing
order, each appearing once — a *representative* execution, not an
unrolled one (a parallel loop nested in a serial DO is priced once with
mid-range bindings, and appears once here too).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: span categories, with their one-character ASCII-Gantt glyphs
CATEGORY_GLYPHS = {
    "startup": ">",
    "preamble": "|",
    "dispatch": ":",
    "chunk": "#",
    "sync": "~",
    "wait": ".",
    "idle": ".",
    "postamble": "|",
    "fault": "!",
}

#: track id used for loop-level (not per-worker) spans
CONTROL_TRACK = -1


@dataclass(frozen=True)
class Span:
    """One contiguous activity of one worker inside one loop.

    ``start``/``end`` are cycles relative to the loop's base time.
    ``busy`` marks whether the duration counts toward the timing model's
    ``busy_time``.  ``count`` > 1 marks a coalesced span standing in for
    that many back-to-back activities of the same category.
    """

    worker: int
    category: str
    start: float
    end: float
    busy: bool = True
    count: int = 1

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        d = {"worker": self.worker, "category": self.category,
             "start": self.start, "end": self.end, "busy": self.busy}
        if self.count != 1:
            d["count"] = self.count
        return d


@dataclass
class LoopRecord:
    """One priced parallel loop: identity, timing, and its spans."""

    label: str              # e.g. "cg:do i@12"
    level: str              # C | S | X
    order: str              # doall | doacross
    workers: int
    base: float             # start on the recorder's sequential clock
    total: float            # LoopTiming.total_time
    busy: float             # LoopTiming.busy_time
    spans: list[Span] = field(default_factory=list)

    # -- derived load metrics ------------------------------------------------

    def worker_busy(self) -> list[float]:
        """Busy cycles per worker track (length ``workers``)."""
        acc = [0.0] * self.workers
        for s in self.spans:
            if s.busy and 0 <= s.worker < self.workers:
                acc[s.worker] += s.duration
        return acc

    def busy_span_sum(self) -> float:
        return sum(s.duration for s in self.spans if s.busy)

    def utilization(self) -> float:
        """Busy fraction of the workers × wall-time area."""
        denom = self.total * self.workers
        return self.busy / denom if denom > 0 else 0.0

    def imbalance(self) -> float:
        """Load-imbalance factor: 1 - mean(worker busy)/max(worker busy).

        0.0 means perfectly balanced; 1 - 1/P means one worker did
        everything.
        """
        per = self.worker_busy()
        top = max(per, default=0.0)
        if top <= 0:
            return 0.0
        return 1.0 - (sum(per) / len(per)) / top

    def to_dict(self, with_spans: bool = False) -> dict:
        d = {
            "label": self.label,
            "level": self.level,
            "order": self.order,
            "workers": self.workers,
            "base": self.base,
            "total_time": self.total,
            "busy_time": self.busy,
            "worker_busy": self.worker_busy(),
            "utilization": self.utilization(),
            "imbalance": self.imbalance(),
            "n_spans": len(self.spans),
        }
        if with_spans:
            d["spans"] = [s.to_dict() for s in self.spans]
        return d


class TimelineRecorder:
    """Collects :class:`LoopRecord`s on a sequential clock.

    ``max_chunk_spans`` bounds per-loop span counts: the scheduler emits
    individual chunk spans up to that many chunks, and coalesced
    per-worker spans (``count`` > 1) beyond it, keeping traces of
    1000-trip loops loadable while preserving every busy-sum invariant.
    """

    def __init__(self, max_chunk_spans: int = 64):
        self.loops: list[LoopRecord] = []
        self.cursor = 0.0
        self.max_chunk_spans = max_chunk_spans

    def record(self, label: str, level: str, order: str, workers: int,
               total: float, busy: float,
               spans: list[Span]) -> LoopRecord:
        rec = LoopRecord(label=label, level=level, order=order,
                         workers=workers, base=self.cursor, total=total,
                         busy=busy, spans=spans)
        self.loops.append(rec)
        self.cursor += total
        return rec

    def __len__(self) -> int:
        return len(self.loops)

    def __iter__(self):
        return iter(self.loops)

    def total_time(self) -> float:
        return self.cursor

    def to_list(self, with_spans: bool = False) -> list[dict]:
        return [r.to_dict(with_spans=with_spans) for r in self.loops]
