"""Chrome trace-event (Perfetto-loadable) export of profile sessions.

Emits the JSON object form of the Trace Event Format: a ``traceEvents``
array of complete (``"ph": "X"``) duration events plus ``"M"`` metadata
events naming processes and threads.  One *process* per profiled run
(workload × role), one *thread* per CE (worker track), with the
scheduler's control track as thread 0.  Cycles map 1:1 onto the format's
microsecond timestamps, so Perfetto's ruler reads directly in kilocycles.

Load the result at https://ui.perfetto.dev (or ``chrome://tracing``) via
"Open trace file".
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.prof.timeline import CONTROL_TRACK, LoopRecord


def _meta(name: str, pid: int, tid: int | None, value: str) -> dict:
    ev = {"name": name, "ph": "M", "pid": pid, "args": {"name": value}}
    if tid is not None:
        ev["tid"] = tid
    return ev


def _tid(worker: int) -> int:
    # control track → 0, CE k → k+1 (Perfetto sorts tids numerically)
    return 0 if worker == CONTROL_TRACK else worker + 1


def run_events(loops: Iterable[LoopRecord], pid: int) -> list[dict]:
    """Trace events for one run's loop records (no metadata)."""
    events: list[dict] = []
    for rec in loops:
        # loop-level envelope on the control track
        events.append({
            "name": f"{rec.label} {rec.level}{rec.order}",
            "cat": "loop", "ph": "X",
            "ts": rec.base, "dur": rec.total,
            "pid": pid, "tid": _tid(CONTROL_TRACK),
            "args": {"workers": rec.workers,
                     "busy_time": rec.busy,
                     "utilization": round(rec.utilization(), 4),
                     "imbalance": round(rec.imbalance(), 4)},
        })
        for s in rec.spans:
            if s.worker == CONTROL_TRACK and s.category == "startup":
                name = "startup"
            else:
                name = s.category if s.count == 1 else \
                    f"{s.category} ×{s.count}"
            ev = {
                "name": name, "cat": s.category, "ph": "X",
                "ts": rec.base + s.start, "dur": s.duration,
                "pid": pid, "tid": _tid(s.worker),
            }
            if not s.busy or s.count != 1:
                ev["args"] = {"busy": s.busy}
                if s.count != 1:
                    ev["args"]["count"] = s.count
            events.append(ev)
    return events


def chrome_trace(session) -> dict:
    """The full Chrome trace object for a :class:`ProfileSession`."""
    events: list[dict] = []
    for pid, run in enumerate(session.runs, start=1):
        label = f"{session.experiment}/{run.workload} [{run.role}]"
        events.append(_meta("process_name", pid, None, label))
        workers = {s.worker for rec in run.timeline for s in rec.spans}
        events.append(_meta("thread_name", pid, _tid(CONTROL_TRACK),
                            "scheduler"))
        for w in sorted(w for w in workers if w != CONTROL_TRACK):
            events.append(_meta("thread_name", pid, _tid(w), f"CE {w}"))
        events.extend(run_events(run.timeline, pid))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "experiment": session.experiment,
            "time_unit": "1 trace microsecond == 1 machine cycle",
        },
    }


def write_chrome_trace(session, path) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(session), fh, indent=1)
        fh.write("\n")
