"""Benchmark/profile regression diffing.

Compares two performance payloads — ``repro-experiment/1`` documents
(``BENCH_*.json`` artifacts or ``python -m repro.experiments --json``
output), ``repro-profile/1`` documents, or ``repro-bench-host/*`` host
wall-clock documents (``benchmarks/bench_host.py``) — workload by
workload (run by run for host benchmarks), reports
per-experiment cycle deltas, and flags regressions beyond a threshold.
``scripts/bench_diff.py`` and ``python -m repro.prof diff`` front this as
the CI regression gate against the committed baselines in
``benchmarks/baselines/``.

A *regression* is a cycle-count increase (the restructured program got
slower); improvements are reported but never fail the gate.
"""

from __future__ import annotations

from dataclasses import dataclass

#: metrics compared per workload, and whether an increase is bad.
#: Anything not listed (the tables' "... (measured)" ratio columns) is a
#: higher-is-better measure: a *drop* is the regression.
METRIC_REGRESSES_UP = {
    "parallel_cycles": True,
    "serial_cycles": True,
    "total_cycles": True,
    "speedup": False,
    # host wall-clock payloads (repro-bench-host/1, /2 and /3)
    "host_seconds": True,
    "warm_speedup": False,
    "compile_speedup": False,
    "parallel_speedup": False,
    # /3 engine-tier ratios: higher is better
    "compiled_warm_speedup": False,
    "source_warm_speedup": False,
    "source_vs_compiled_speedup": False,
    # /2 per-cell latency percentiles: latency regresses upward
    "p50_s": True,
    "p95_s": True,
    "p99_s": True,
}


@dataclass
class Delta:
    """One workload metric compared across two payloads."""

    key: str               # "experiment/workload" (+ "[role]" for profiles)
    metric: str
    old: float
    new: float

    @property
    def rel(self) -> float:
        """Signed relative change, (new - old) / old."""
        if self.old == 0:
            return 0.0 if self.new == 0 else float("inf")
        return (self.new - self.old) / self.old

    def regression(self, threshold: float) -> bool:
        up_is_bad = METRIC_REGRESSES_UP.get(self.metric, False)
        worse = self.rel if up_is_bad else -self.rel
        return worse > threshold

    def render(self, threshold: float) -> str:
        mark = "REGRESSION" if self.regression(threshold) else (
            "improved" if abs(self.rel) > threshold else "ok")
        return (f"{self.key:<44} {self.metric:<16} "
                f"{self.old:>16,.1f} {self.new:>16,.1f} "
                f"{100.0 * self.rel:>+8.2f}%  {mark}")


def extract_metrics(payload: dict) -> dict[str, dict[str, float]]:
    """Workload-keyed metric map from either supported schema."""
    schema = payload.get("schema", "")
    out: dict[str, dict[str, float]] = {}
    if schema == "repro-experiment/1":
        for exp, table in (payload.get("experiments") or {}).items():
            trace = (table.get("meta") or {}).get("trace") or {}
            for wl, entry in trace.items():
                metrics = {}
                for m in ("serial_cycles", "parallel_cycles", "speedup"):
                    v = entry.get(m)
                    if isinstance(v, (int, float)):
                        metrics[m] = float(v)
                if metrics:
                    out[f"{exp}/{wl}"] = metrics
            # tables without per-workload traces (the figure sweeps)
            # still expose their measured ratio columns row by row
            columns = table.get("columns") or []
            measured = [c for c in columns if "measured" in c]
            for i, row in enumerate(table.get("rows") or []):
                key_col = columns[0] if columns else None
                tag = row.get(key_col, i) if key_col else i
                metrics = {c: float(row[c]) for c in measured
                           if isinstance(row.get(c), (int, float))}
                if metrics:
                    out.setdefault(f"{exp}/{key_col}={tag}", {}).update(
                        metrics)
        return out
    if schema == "repro-profile/1":
        exp = payload.get("experiment", "?")
        for run in payload.get("runs") or []:
            key = f"{exp}/{run.get('workload', '?')}[{run.get('role', '?')}]"
            v = run.get("total_cycles")
            if isinstance(v, (int, float)):
                out[key] = {"total_cycles": float(v)}
        return out
    if schema in ("repro-bench-host/1", "repro-bench-host/2",
                  "repro-bench-host/3"):
        for name, run in (payload.get("runs") or {}).items():
            v = run.get("seconds") if isinstance(run, dict) else None
            if isinstance(v, (int, float)):
                out[f"host/{name}"] = {"host_seconds": float(v)}
        for sect, metrics in (("cache", ("warm_speedup",
                                         "compile_speedup")),
                              ("parallel", ("parallel_speedup",)),
                              # /3: the engine-tier ratios
                              ("engines", ("compiled_warm_speedup",
                                           "source_warm_speedup",
                                           "source_vs_compiled_speedup"))):
            d = payload.get(sect) or {}
            got = {m: float(d[m]) for m in metrics
                   if isinstance(d.get(m), (int, float))}
            if got:
                out[f"host/{sect}"] = got
        # /2: per-cell latency percentiles diff like any other metric
        for name, rec in (payload.get("latency") or {}).items():
            if not isinstance(rec, dict):
                continue
            got = {m: float(rec[m]) for m in ("p50_s", "p95_s", "p99_s")
                   if isinstance(rec.get(m), (int, float))}
            if got:
                out[f"host/latency/{name}"] = got
        return out
    raise ValueError(f"unsupported payload schema {schema!r}")


@dataclass
class DiffResult:
    deltas: list[Delta]
    only_old: list[str]
    only_new: list[str]
    threshold: float

    def regressions(self) -> list[Delta]:
        return [d for d in self.deltas if d.regression(self.threshold)]

    @property
    def failed(self) -> bool:
        return bool(self.regressions())

    def render(self) -> str:
        header = (f"{'workload':<44} {'metric':<16} "
                  f"{'old':>16} {'new':>16} {'delta':>9}")
        lines = [header, "-" * len(header)]
        for d in sorted(self.deltas, key=lambda d: (d.key, d.metric)):
            lines.append(d.render(self.threshold))
        for k in self.only_old:
            lines.append(f"{k:<44} (missing from new payload)")
        for k in self.only_new:
            lines.append(f"{k:<44} (new workload, no baseline)")
        n_reg = len(self.regressions())
        lines.append("-" * len(header))
        lines.append(
            f"{len(self.deltas)} comparison(s), {n_reg} regression(s) "
            f"beyond {100.0 * self.threshold:.1f}%")
        return "\n".join(lines)


def diff_payloads(old: dict, new: dict, threshold: float = 0.02,
                  metrics: tuple[str, ...] | None = None) -> DiffResult:
    """Compare two payloads; ``metrics`` restricts which are diffed."""
    a, b = extract_metrics(old), extract_metrics(new)
    if "quick" in old and "quick" in new and old["quick"] != new["quick"]:
        raise ValueError(
            "refusing to diff payloads generated at different data sizes "
            f"(old quick={old.get('quick')!r}, new quick={new.get('quick')!r})")
    deltas = []
    for key in sorted(set(a) & set(b)):
        for m in sorted(set(a[key]) & set(b[key])):
            if metrics is not None and m not in metrics:
                continue
            deltas.append(Delta(key, m, a[key][m], b[key][m]))
    return DiffResult(
        deltas=deltas,
        only_old=sorted(set(a) - set(b)),
        only_new=sorted(set(b) - set(a)),
        threshold=threshold)
