"""Hardware-style event counters and the profiling cycle ledger.

The machine models already *charge cycles* into a
:class:`repro.trace.CycleLedger`; profiling additionally wants *event
counts* — how many cache/cluster/global references, prefetch triggers,
page faults, dispatches — the numbers a hardware performance-monitoring
unit would report, and the quantities the paper reasons about directly
(prefetch hit rates in Figure 6, global-traffic saturation in Figure 8,
fault counts behind Table 1's mprove).

:class:`HwCounters` is the counter block; :class:`ProfLedger` is a
:class:`CycleLedger` subclass that carries one and accumulates events via
the (otherwise no-op) ``ledger.count`` hook the machine models call next
to every ``ledger.charge``.  Because the counters ride the ledger through
the estimator's exact ``add``/``scaled`` composition, the reconciliation

    counter × configured latency  ==  ledger memory category

holds to floating-point rounding for every estimate:
:func:`memory_cycles_from_counters` recomputes the five memory-side
categories from counts alone and :func:`reconcile` checks them against
the ledger.  Counts become fractional under statistical composition
(averaged branch arms scale by 1/arms) — they are expectations, exactly
like the cycle categories.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.ledger import CATEGORIES, CycleLedger

#: counter names, in rendering order.  ``*_cycles`` counters are
#: cycle-valued (stall time); everything else counts events/elements.
COUNTERS = (
    "cache_refs",          # private/cached element references
    "cluster_refs",        # cluster-memory element references
    "global_refs",         # full-latency scalar global references
    "global_stream_elems",  # un-prefetched pipelined global vector elements
    "prefetch_triggers",   # 32-element prefetch instructions issued
    "prefetch_elems",      # elements delivered through the prefetch buffer
    "bank_stall_cycles",   # global-network/GM bandwidth-saturation stalls
    "page_faults",         # virtual-memory faults
    "vector_ops",          # vector-pipeline operations started
    "vector_elems",        # elements pushed through the vector pipes
    "loop_startups",       # parallel-loop activations
    "chunks_dispatched",   # self-scheduling chunk grabs
    "sync_ops",            # await/advance pairs, locks, combine steps
    "fault_events",        # injected faults that degraded this estimate
    "sync_retries",        # lost-synchronization re-signals (repro.faults)
)


@dataclass
class HwCounters:
    """One block of accumulated hardware-style counters.

    Supports the same composition algebra as :class:`CycleLedger` and
    :class:`repro.machine.memory.AccessProfile`: in-place :meth:`add` and
    a scaling copy :meth:`scaled`.
    """

    cache_refs: float = 0.0
    cluster_refs: float = 0.0
    global_refs: float = 0.0
    global_stream_elems: float = 0.0
    prefetch_triggers: float = 0.0
    prefetch_elems: float = 0.0
    bank_stall_cycles: float = 0.0
    page_faults: float = 0.0
    vector_ops: float = 0.0
    vector_elems: float = 0.0
    loop_startups: float = 0.0
    chunks_dispatched: float = 0.0
    sync_ops: float = 0.0
    fault_events: float = 0.0
    sync_retries: float = 0.0

    # -- composition ---------------------------------------------------------

    def bump(self, counter: str, n: float = 1.0) -> None:
        if counter not in COUNTERS:
            raise KeyError(f"unknown hardware counter {counter!r}")
        setattr(self, counter, getattr(self, counter) + n)

    def add(self, other: "HwCounters") -> None:
        for c in COUNTERS:
            setattr(self, c, getattr(self, c) + getattr(other, c))

    def scaled(self, k: float) -> "HwCounters":
        return HwCounters(**{c: getattr(self, c) * k for c in COUNTERS})

    def copy(self) -> "HwCounters":
        return self.scaled(1.0)

    # -- inspection ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {c: getattr(self, c) for c in COUNTERS}

    @classmethod
    def from_dict(cls, d) -> "HwCounters":
        return cls(**{c: float(d.get(c, 0.0)) for c in COUNTERS})

    def prefetch_hit_rate(self) -> float:
        """Fraction of global element traffic served through the prefetch
        buffer (the Figure 6 quantity)."""
        total = (self.prefetch_elems + self.global_stream_elems
                 + self.global_refs)
        return self.prefetch_elems / total if total > 0 else 0.0


def memory_cycles_from_counters(counters: HwCounters, cfg) -> dict:
    """Recompute the ledger's five memory-side categories from counts.

    ``cfg`` is a :class:`repro.machine.config.MachineConfig` (or anything
    carrying the same latency attributes).  Mirrors exactly how
    :mod:`repro.machine.memory`, :mod:`repro.machine.prefetch` and
    :mod:`repro.machine.paging` price accesses, so the result equals the
    ledger categories to floating-point rounding.
    """
    return {
        "mem_cache": counters.cache_refs * cfg.lat_cache,
        "mem_cluster": counters.cluster_refs * cfg.lat_cluster,
        "mem_global": (counters.global_refs * cfg.lat_global
                       + counters.global_stream_elems
                       * (0.55 * cfg.lat_global)
                       + counters.bank_stall_cycles),
        "prefetch": (counters.prefetch_triggers * cfg.prefetch_trigger
                     + counters.prefetch_elems * cfg.lat_global_prefetched),
        "page_fault": counters.page_faults * cfg.page_fault_cost,
    }


def reconcile(counters: HwCounters, ledger: CycleLedger, cfg,
              rel_tol: float = 1e-6) -> dict:
    """Cross-validate counters against a ledger's memory categories.

    Returns ``{category: {"ledger", "from_counters", "rel_err", "ok"}}``.
    """
    recomputed = memory_cycles_from_counters(counters, cfg)
    out = {}
    for cat, derived in recomputed.items():
        have = getattr(ledger, cat)
        err = abs(derived - have) / max(abs(have), 1.0)
        out[cat] = {"ledger": have, "from_counters": derived,
                    "rel_err": err, "ok": err <= rel_tol}
    return out


@dataclass
class ProfLedger(CycleLedger):
    """A cycle ledger that also accumulates hardware counters.

    Drop-in for :class:`CycleLedger` wherever the estimator creates one:
    ``charge`` behaves identically (cycle totals are bit-identical with or
    without profiling), while ``count`` — a no-op on the base class —
    records events.  ``add``/``scaled`` compose both halves together.
    """

    counters: HwCounters = field(default_factory=HwCounters)

    def count(self, counter: str, n: float = 1.0) -> None:
        self.counters.bump(counter, n)

    def add(self, other: CycleLedger) -> None:
        super().add(other)
        other_counters = getattr(other, "counters", None)
        if other_counters is not None:
            self.counters.add(other_counters)

    def scaled(self, k: float) -> "ProfLedger":
        return ProfLedger(**{c: getattr(self, c) * k for c in CATEGORIES},
                          counters=self.counters.scaled(k))

    def copy(self) -> "ProfLedger":
        return self.scaled(1.0)
