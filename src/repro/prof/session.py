"""Profile collection across an experiment run.

A :class:`ProfileSession` accumulates one :class:`RunProfile` per
estimator invocation (workload × serial/parallel role): the hardware
counters, the ledger's memory-side cycle categories they must reconcile
with, and the per-CE loop timelines.  The experiment harness activates a
session around a driver (``repro.experiments.common.profiled``) and then
serializes it two ways:

- :meth:`ProfileSession.to_profile_doc` — the ``repro-profile/1`` JSON
  document (validated by ``scripts/validate_experiment_json.py`` against
  ``schemas/profile.schema.json``);
- :func:`repro.prof.export.chrome_trace` — a Chrome trace-event /
  Perfetto-loadable ``trace.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.prof.counters import (
    HwCounters,
    memory_cycles_from_counters,
)
from repro.prof.timeline import TimelineRecorder
from repro.trace.ledger import HIERARCHY

#: stamped into every profile document; bump on incompatible shape changes
PROFILE_SCHEMA = "repro-profile/1"

#: machine constants a profile document must carry so that validators can
#: recompute memory cycles from counters without importing this package
MACHINE_CONSTANTS = ("lat_cache", "lat_cluster", "lat_global",
                     "lat_global_prefetched", "prefetch_trigger",
                     "page_fault_cost")


@dataclass
class RunProfile:
    """One profiled estimate: counters + memory cycles + loop timelines."""

    workload: str
    role: str                    # "serial" | "parallel"
    machine: dict                # name + MACHINE_CONSTANTS
    total_cycles: float
    counters: HwCounters
    memory_ledger: dict          # ledger's five memory-side categories
    timeline: TimelineRecorder = field(default_factory=TimelineRecorder)

    def to_dict(self) -> dict:
        from_counters = memory_cycles_from_counters(
            self.counters, _ConstView(self.machine))
        return {
            "workload": self.workload,
            "role": self.role,
            "machine": self.machine,
            "total_cycles": self.total_cycles,
            "counters": self.counters.to_dict(),
            "memory_cycles": {
                "ledger": dict(self.memory_ledger),
                "from_counters": from_counters,
            },
            "prefetch_hit_rate": self.counters.prefetch_hit_rate(),
            "loops": self.timeline.to_list(),
        }


class _ConstView:
    """Attribute view over a machine-constants dict."""

    def __init__(self, d: dict):
        self._d = d

    def __getattr__(self, name: str):
        try:
            return self._d[name]
        except KeyError:
            raise AttributeError(name) from None


def machine_constants(cfg) -> dict:
    """The subset of a :class:`MachineConfig` a profile document embeds."""
    d = {"name": cfg.name}
    for k in MACHINE_CONSTANTS:
        d[k] = getattr(cfg, k)
    return d


class ProfileSession:
    """Collects :class:`RunProfile`s for one experiment."""

    def __init__(self, experiment: str):
        self.experiment = experiment
        self.runs: list[RunProfile] = []

    def new_timeline(self) -> TimelineRecorder:
        return TimelineRecorder()

    def add(self, workload: str, role: str, cfg, result,
            timeline: TimelineRecorder) -> RunProfile:
        """Register one estimator result (a ``PerfResult`` with counters).

        Repeated (workload, role) pairs — parameter sweeps like Figure 8's
        cluster counts — get ``#2``, ``#3``, ... suffixes.
        """
        seen = sum(1 for r in self.runs
                   if r.role == role
                   and (r.workload == workload
                        or r.workload.startswith(workload + "#")))
        name = workload if seen == 0 else f"{workload}#{seen + 1}"
        memory_ledger = {
            c: getattr(result.ledger, c)
            for c in HIERARCHY["memory"] + HIERARCHY["paging"]
        } if result.ledger is not None else {}
        run = RunProfile(
            workload=name, role=role, machine=machine_constants(cfg),
            total_cycles=result.total,
            counters=result.counters or HwCounters(),
            memory_ledger=memory_ledger, timeline=timeline)
        self.runs.append(run)
        return run

    def to_profile_doc(self, quick: bool | None = None) -> dict:
        doc = {
            "schema": PROFILE_SCHEMA,
            "experiment": self.experiment,
            "runs": [r.to_dict() for r in self.runs],
        }
        if quick is not None:
            doc["quick"] = quick
        return doc
