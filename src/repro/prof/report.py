"""ASCII per-CE Gantt charts and utilization/imbalance reports.

Renders the loop timelines a :class:`repro.prof.timeline.TimelineRecorder`
collected — one labelled chart per parallel loop, one row per CE, time
scaled to the terminal — plus a per-loop utilization/imbalance summary
table.  This is the paper's §4.2.4 evidence in text form: a spread loop
whose rows are mostly ``.`` (idle/wait) with a long ``>`` (startup)
prefix is exactly a loop not worth running at S/X level.

Glyphs: ``>`` startup, ``|`` preamble/postamble, ``:`` dispatch,
``#`` chunk execute, ``~`` synchronization, ``.`` idle/wait.
"""

from __future__ import annotations

from typing import Iterable

from repro.prof.timeline import CATEGORY_GLYPHS, CONTROL_TRACK, LoopRecord


def _bar(rec: LoopRecord, worker: int, width: int) -> str:
    cells = ["."] * width
    scale = width / rec.total if rec.total > 0 else 0.0
    for s in rec.spans:
        if s.worker != worker:
            continue
        glyph = CATEGORY_GLYPHS.get(s.category, "?")
        lo = int(s.start * scale)
        hi = max(int(s.end * scale), lo + 1)
        for c in range(lo, min(hi, width)):
            # busy activity wins over filler when spans round into the
            # same column
            if s.busy or cells[c] == ".":
                cells[c] = glyph
    return "".join(cells)


def render_gantt(loops: Iterable[LoopRecord], width: int = 64) -> str:
    """One ASCII Gantt block per loop record."""
    lines: list[str] = []
    for rec in loops:
        per = rec.worker_busy()
        lines.append(
            f"{rec.label} {rec.level}{rec.order}  "
            f"total {rec.total:,.0f} cyc  busy {rec.busy:,.0f}  "
            f"util {rec.utilization():.2f}  imb {rec.imbalance():.2f}")
        ctrl = [s for s in rec.spans if s.worker == CONTROL_TRACK]
        if ctrl:
            lines.append(f"  sched {_bar(rec, CONTROL_TRACK, width)}")
        for w in range(rec.workers):
            pct = 100.0 * per[w] / rec.total if rec.total > 0 else 0.0
            lines.append(f"  CE {w:2d} {_bar(rec, w, width)} "
                         f"{per[w]:>12,.0f} ({pct:5.1f}%)")
        lines.append("")
    return "\n".join(lines).rstrip()


def render_utilization(loops: Iterable[LoopRecord]) -> str:
    """Per-loop utilization/imbalance summary table."""
    recs = list(loops)
    if not recs:
        return "(no parallel loops recorded)"
    header = (f"{'loop':<36} {'lvl':<4} {'CEs':>4} {'total cyc':>14} "
              f"{'util':>6} {'imb':>6}")
    lines = [header, "-" * len(header)]
    for rec in recs:
        label = rec.label if len(rec.label) <= 36 else rec.label[:33] + "..."
        lines.append(
            f"{label:<36} {rec.level + rec.order[:3]:<4} {rec.workers:>4} "
            f"{rec.total:>14,.0f} {rec.utilization():>6.2f} "
            f"{rec.imbalance():>6.2f}")
    total = sum(r.total for r in recs)
    area = sum(r.total * r.workers for r in recs)
    busy = sum(r.busy for r in recs)
    lines.append("-" * len(header))
    lines.append(f"{'all recorded loops':<36} {'':<4} {'':>4} "
                 f"{total:>14,.0f} {busy / area if area else 0.0:>6.2f}")
    return "\n".join(lines)


def render_report(loops: Iterable[LoopRecord], width: int = 64) -> str:
    """Utilization table followed by the per-loop Gantt charts."""
    recs = list(loops)
    return render_utilization(recs) + "\n\n" + render_gantt(recs, width)
