"""repro — reproduction of *Restructuring Fortran Programs for Cedar* (ICPP 1991).

The package provides:

- :mod:`repro.fortran` — a Fortran 77 front end (fixed-form lexer, parser,
  AST, symbol tables, unparser).
- :mod:`repro.cedar` — the Cedar Fortran dialect (parallel loop nodes,
  GLOBAL/CLUSTER declarations, vector statements, the Cedar-optimized
  library) and its unparser.
- :mod:`repro.analysis` — program analyses: affine expression algebra,
  control/data flow, data-dependence testing, induction variables (including
  generalized IVs), reduction recognition, scalar/array privatization,
  interprocedural summaries, and run-time dependence test synthesis.
- :mod:`repro.restructurer` — the source-to-source parallelizer that turns
  sequential Fortran 77 into Cedar Fortran (the paper's KAP-derived
  restructurer, rebuilt from scratch).
- :mod:`repro.machine` — a parametric performance model of the Cedar machine
  (clusters, memory hierarchy, prefetch, paging, microtasking scheduler) and
  of the Alliant FX/80.
- :mod:`repro.execmodel` — a functional interpreter (correctness) and a
  performance estimator (timing) for both dialects.
- :mod:`repro.workloads` — the linear-algebra routines of Table 1 and proxy
  kernels for the Perfect Benchmarks of Table 2.
- :mod:`repro.experiments` — drivers that regenerate every table and figure
  of the paper's evaluation section.
- :mod:`repro.trace` — observability: hierarchical cycle-attribution
  ledgers charged by the machine model and structured decision events
  emitted by the restructurer (see the README's Observability section).

Quickstart::

    from repro import restructure_source
    cedar_source, report = restructure_source('''
          subroutine saxpy(n, a, x, y)
          integer n
          real a, x(n), y(n)
          do 10 i = 1, n
             y(i) = y(i) + a * x(i)
    10    continue
          end
    ''')
    print(cedar_source)
"""

from repro._version import __version__
from repro.api import (
    parse_source,
    restructure,
    restructure_source,
    unparse_cedar,
    unparse_f77,
)

__all__ = [
    "__version__",
    "parse_source",
    "restructure",
    "restructure_source",
    "unparse_cedar",
    "unparse_f77",
]
