"""Supervised worker pool: crash detection, hard deadlines, respawn.

:class:`WorkerSupervisor` wraps the same fork-context
``ProcessPoolExecutor`` the sweep executor
(:mod:`repro.engine.parallel`) uses, and adds the two guarantees a
*service* needs that a batch sweep does not:

- **crash containment with respawn** — a worker that dies mid-request
  (segfault, OOM kill, ``os._exit``) breaks the pool; the supervisor
  detects it, converts the loss into a classified fault dict (the
  ``FaultReport.to_dict()`` shape, kind ``internal``), and rebuilds the
  pool so the *next* request finds healthy workers;
- **supervisor-side hard deadlines** — the in-worker watchdog
  (:func:`repro.faults.harness.watchdog`) catches Python-level stalls,
  but a worker wedged in a C call or spinning with signals blocked
  never comes back.  ``submit`` bounds the wait from the parent side;
  on expiry the wedged workers are killed outright and the pool is
  rebuilt, so one stuck request cannot brown out the service.

The supervisor is deliberately single-flight per call (the admission
queue upstream bounds concurrency); a lock serializes pool teardown so
concurrent HTTP threads cannot race a respawn.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

from repro.obs.log import get_logger

_LOG = get_logger("server.supervisor")


class PoolCrashError(Exception):
    """The worker executing a request died before returning."""


def _crash_fault(label: str, message: str, elapsed_s: float) -> dict:
    # FaultReport.to_dict() shape, so the retry classifier and the
    # envelope treat pool losses like any other harness fault
    return {
        "label": label,
        "kind": "internal",
        "error_type": "PoolCrashError",
        "message": message,
        "elapsed_s": elapsed_s,
        "traceback": "",
        "detail": {},
    }


def _timeout_fault(label: str, timeout_s: float, elapsed_s: float) -> dict:
    return {
        "label": label,
        "kind": "timeout",
        "error_type": "BudgetExceededError",
        "message": f"{label} exceeded its {timeout_s:g}s supervisor "
                   "deadline (worker killed)",
        "elapsed_s": elapsed_s,
        "traceback": "",
        "detail": {},
    }


class WorkerSupervisor:
    """A crash-supervised process pool executing one request at a time
    per slot, with parent-side deadlines and automatic respawn."""

    def __init__(self, workers: int = 2, registry=None):
        self.workers = max(1, workers)
        self._lock = threading.Lock()
        self._pool = None
        self._respawns = None
        if registry is not None:
            self._respawns = registry.counter(
                "repro_server_worker_respawns_total")

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_pool(self):
        import concurrent.futures as cf

        from repro.engine.parallel import _mp_context

        with self._lock:
            if self._pool is None:
                self._pool = cf.ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=_mp_context())
                _LOG.info("pool_started", workers=self.workers)
            return self._pool

    def _respawn(self, pool, *, kill: bool) -> None:
        """Tear down a broken/wedged pool; the next submit rebuilds."""
        with self._lock:
            if self._pool is not pool:
                return          # another thread already replaced it
            self._pool = None
        if kill:
            # a wedged worker never returns: kill outright before the
            # shutdown join.  _processes is stdlib-private but stable;
            # degrade to a plain shutdown if it ever moves.
            for p in list(getattr(pool, "_processes", {}).values()):
                try:
                    p.kill()
                except Exception:  # pragma: no cover - already dead
                    pass
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # pragma: no cover - broken pools may throw
            pass
        if self._respawns is not None:
            self._respawns.inc()
        _LOG.warning("pool_respawned", kill=kill)

    def shutdown(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    # -- request execution -------------------------------------------------

    def submit(self, fn: Callable[[Any], dict], arg: Any, label: str,
               timeout_s: Optional[float] = None,
               ) -> tuple[Optional[dict], Optional[dict]]:
        """Run ``fn(arg)`` in a worker; returns ``(result, fault)``.

        Exactly one of the pair is non-``None``.  ``fn`` must be a
        picklable module-level function returning a dict.  A worker
        crash or deadline expiry tears the pool down, respawns it, and
        comes back as a classified fault dict — never an exception.
        """
        import concurrent.futures as cf

        pool = self._ensure_pool()
        t0 = time.monotonic()
        try:
            fut = pool.submit(fn, arg)
        except RuntimeError as exc:
            # raced shutdown(); one rebuild attempt, then classify
            _LOG.warning("submit_raced_shutdown", label=label,
                         message=str(exc))
            pool = self._ensure_pool()
            fut = pool.submit(fn, arg)
        try:
            return fut.result(timeout=timeout_s), None
        except cf.TimeoutError:
            self._respawn(pool, kill=True)
            elapsed = time.monotonic() - t0
            _LOG.warning("request_deadline_expired", label=label,
                         timeout_s=timeout_s, elapsed_s=elapsed)
            return None, _timeout_fault(label, timeout_s or 0.0, elapsed)
        except cf.process.BrokenProcessPool:
            self._respawn(pool, kill=False)
            elapsed = time.monotonic() - t0
            _LOG.warning("worker_crashed", label=label,
                         elapsed_s=elapsed)
            return None, _crash_fault(
                label, "worker process died before returning "
                       "(broken process pool)", elapsed)
        except Exception as exc:  # noqa: BLE001 — classify, don't die
            elapsed = time.monotonic() - t0
            _LOG.error("submit_failed", label=label,
                       error_type=type(exc).__name__, message=str(exc))
            return None, _crash_fault(
                label, f"{type(exc).__name__}: {exc}", elapsed)
