"""Retry policy: classified faults, seeded-deterministic backoff.

A request that failed on a *transient* fault — its worker crashed, its
watchdog fired, an unexpected internal error — is worth retrying; a
request that failed because the *input* is malformed will fail the same
way every time and must not burn pool capacity on retries.  The
classification reuses the fault taxonomy the harness already stamps on
every failure (:class:`repro.faults.harness.FaultReport` ``kind`` and
:class:`repro.engine.parallel.WorkerCrash`):

=============  ==========================================  =========
kind           meaning                                     retryable
=============  ==========================================  =========
``timeout``    watchdog fired / supervisor deadline        yes
``internal``   worker crash, harness bug, unexpected exc   yes
``error``      modelled :class:`ReproError` (bad input)    no
=============  ==========================================  =========

Backoff is exponential with **seeded-deterministic jitter**: the delay
for ``(request_id, attempt)`` is a pure function of the policy seed, so
a chaos test replays the exact schedule and two servers with the same
seed shed identically under the same load.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: fault kinds worth another attempt (transient by construction)
RETRYABLE_KINDS = frozenset({"timeout", "internal"})


@dataclass(frozen=True)
class RetryPolicy:
    """Per-request retry budget and deterministic backoff schedule."""

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5          # fraction of the delay randomized
    seed: int = 0

    def classify(self, fault: dict | None) -> bool:
        """Whether a fault dict (``FaultReport.to_dict()`` shape) is
        retryable.  ``None`` (no fault) is not retryable — there is
        nothing to retry."""
        if not fault:
            return False
        return fault.get("kind") in RETRYABLE_KINDS

    def should_retry(self, fault: dict | None, attempt: int) -> bool:
        """Retry iff the fault is transient and budget remains.
        ``attempt`` is 1-based (the attempt that just failed)."""
        return attempt < self.max_attempts and self.classify(fault)

    def backoff(self, request_id: str, attempt: int) -> float:
        """Delay before attempt ``attempt + 1``, in seconds.

        Deterministic: seeded by ``(policy seed, request id, attempt)``
        so replays reproduce the exact schedule.  Exponential in the
        attempt number, jittered within ``±jitter/2`` of the nominal
        delay, capped at ``max_delay_s``.
        """
        nominal = min(self.base_delay_s * (2.0 ** (attempt - 1)),
                      self.max_delay_s)
        if self.jitter <= 0:
            return nominal
        rng = random.Random(f"{self.seed}:{request_id}:{attempt}")
        spread = nominal * self.jitter
        return min(max(0.0, nominal + spread * (rng.random() - 0.5)),
                   self.max_delay_s)
