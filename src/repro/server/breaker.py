"""Circuit breaker: stop hammering a failing dependency, probe later.

The server has two dependencies that can go bad independently of any
single request: the on-disk cache store (disk full, permissions yanked,
filesystem remounted read-only) and the worker pool (a crash loop —
e.g. an OOM killer repeatedly taking workers down).  Retrying *through*
a dead dependency turns one failure into a pileup; the breaker converts
"failing repeatedly" into "degraded deliberately":

- **closed** — healthy; calls flow, failures are counted;
- **open** — ``failure_threshold`` consecutive failures seen; calls are
  refused (the caller takes its degraded path: in-memory cache, serial
  in-process execution) until ``reset_after_s`` has passed;
- **half-open** — cool-down elapsed; exactly one probe call is allowed
  through.  Success closes the breaker, failure re-opens it and the
  cool-down restarts.

The clock is injectable so tests drive the state machine without
sleeping.  State changes are logged and mirrored to the metrics gauge
``repro_server_breaker_state`` (0 = closed, 1 = half-open, 2 = open).
Thread-safe: the HTTP front end calls from many threads at once.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.obs.log import get_logger

_LOG = get_logger("server.breaker")

CLOSED, HALF_OPEN, OPEN = "closed", "half-open", "open"
_STATE_VALUE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """One breaker over one dependency.

    Usage::

        if breaker.allow():
            try:
                ...call the dependency...
                breaker.record_success()
            except Exception:
                breaker.record_failure()
                ...degraded path...
        else:
            ...degraded path...
    """

    def __init__(self, name: str, failure_threshold: int = 3,
                 reset_after_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic,
                 registry=None):
        self.name = name
        self.failure_threshold = max(1, failure_threshold)
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        self._gauge = None
        if registry is not None:
            self._gauge = registry.gauge("repro_server_breaker_state",
                                         breaker=name)
            self._gauge.set(0)

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        # called under the lock; promotes open -> half-open on cool-down
        if self._state == OPEN and self._opened_at is not None \
                and self._clock() - self._opened_at >= self.reset_after_s:
            self._set_state(HALF_OPEN)
        return self._state

    def _set_state(self, state: str) -> None:
        if state == self._state:
            return
        _LOG.warning("breaker_transition", breaker=self.name,
                     old=self._state, new=state)
        self._state = state
        if state != OPEN:
            self._probing = False
        if self._gauge is not None:
            self._gauge.set(_STATE_VALUE[state])

    def allow(self) -> bool:
        """Whether a call may proceed.  In half-open state only one
        caller at a time gets a probe slot."""
        with self._lock:
            state = self._effective_state()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._set_state(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            state = self._effective_state()
            if state == HALF_OPEN:
                # the probe failed: re-open, restart the cool-down
                self._opened_at = self._clock()
                self._set_state(OPEN)
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._opened_at = self._clock()
                self._set_state(OPEN)
