"""``python -m repro.server`` — run the restructurer service.

Shares the engine flags (``--jobs``, ``--cache-dir``, ``--telemetry``,
``--log-level``) with every sweep harness, plus the service knobs:
bind address, per-request watchdog budget, retry budget, admission
capacity, journal path, and the ``--chaos`` switch that lets request
bodies carry fault-injection directives (tests only — never enable it
on a server exposed to untrusted callers).

``SIGTERM``/``SIGINT`` trigger a graceful drain: admission stops
(``/readyz`` flips to 503), in-flight requests finish (bounded), the
pool shuts down, telemetry finalizes, and the process exits 0.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading


def main(argv=None) -> int:
    from repro.experiments.common import (add_engine_args,
                                          configure_engine,
                                          finalize_telemetry)
    from repro.server.http import make_server
    from repro.server.retry import RetryPolicy
    from repro.server.service import RestructurerService

    ap = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="serve the restructurer over JSON/HTTP "
                    "(fault-tolerant: supervised workers, retries, "
                    "circuit breakers, load shedding)")
    ap.add_argument("--host", default="127.0.0.1",
                    help="bind address (default 127.0.0.1)")
    ap.add_argument("--port", type=int, default=8757,
                    help="bind port; 0 picks a free one (default 8757)")
    ap.add_argument("--timeout", type=float, default=30.0, metavar="S",
                    help="per-request watchdog budget in seconds "
                         "(default 30)")
    ap.add_argument("--max-attempts", type=int, default=3, metavar="N",
                    help="retry budget per request (default 3)")
    ap.add_argument("--queue-depth", type=int, default=8, metavar="N",
                    help="admission capacity: max in-flight requests "
                         "(default 8)")
    ap.add_argument("--max-wait", type=float, default=5.0, metavar="S",
                    help="max seconds a request queues before being "
                         "shed (default 5)")
    ap.add_argument("--journal", default=None, metavar="FILE",
                    help="durability journal (JSONL); a restarted "
                         "server reports requests lost in flight")
    ap.add_argument("--retry-seed", type=int, default=0, metavar="N",
                    help="seed for the deterministic backoff jitter")
    ap.add_argument("--chaos", action="store_true",
                    help="honour fault-injection directives in request "
                         "bodies (tests only)")
    add_engine_args(ap)
    args = ap.parse_args(argv)
    jobs = configure_engine(args)

    service = RestructurerService(
        workers=jobs,
        retry=RetryPolicy(max_attempts=max(1, args.max_attempts),
                          seed=args.retry_seed),
        queue_capacity=args.queue_depth,
        max_wait_s=args.max_wait,
        default_timeout_s=args.timeout,
        journal_path=args.journal,
        chaos=args.chaos)
    server = make_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    print(f"listening on http://{host}:{port}", file=sys.stderr,
          flush=True)

    stop = threading.Event()

    def _shutdown(signum, frame):
        stop.set()
        # shutdown() must not run on the serving thread
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
        clean = service.drain(timeout_s=30.0)
        print("drained" if clean else "drain timed out",
              file=sys.stderr, flush=True)
        finalize_telemetry("repro.server")
    return 0 if clean else 1


if __name__ == "__main__":
    sys.exit(main())
