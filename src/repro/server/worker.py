"""The worker-side request cell: one request, fully isolated.

``run_request_cell`` is the module-level (picklable) function the
supervisor ships to its pool.  Inside the worker it composes the
existing hardening — :func:`repro.faults.harness.run_isolated` plus an
in-worker watchdog — so a request that raises or stalls at the Python
level comes back as a classified fault dict without the worker dying;
the supervisor's parent-side deadline and crash detection cover
everything this layer cannot (wedged C calls, killed processes).

The cell also honours the **chaos hooks** the acceptance tests use to
manufacture real worker deaths and stalls.  They are inert unless the
request carries a ``chaos`` directive, which the service only forwards
when started with ``--chaos`` — a production server never interprets
them.
"""

from __future__ import annotations

import os

from repro.faults.harness import run_isolated


def _apply_chaos(req: dict) -> None:
    """Honour chaos directives (test servers only; see module doc).

    ``kill_marker`` names a file holding the remaining self-kill count:
    each worker that reads a positive count decrements it and dies with
    SIGKILL semantics (``os._exit``), so a request configured with
    ``kill_worker: N`` loses exactly N attempts and then succeeds — the
    retry path is exercised against a *real* process death.
    ``stall_s`` busy-spins (watchdog-interruptible) on the first
    attempt only, exercising the timeout-then-retry path.
    """
    chaos = req.get("chaos") or {}
    marker = chaos.get("kill_marker")
    if marker:
        try:
            remaining = int(open(marker).read().strip() or 0)
        except (OSError, ValueError):
            remaining = 0
        if remaining > 0:
            with open(marker, "w") as fh:
                fh.write(str(remaining - 1))
                fh.flush()
                os.fsync(fh.fileno())
            if os.getpid() != req.get("server_pid"):
                os._exit(9)     # a real mid-request worker death
            # serial (in-process) degraded mode: dying would kill the
            # server itself — surface as a retryable internal fault
            raise RuntimeError("chaos kill directive in serial mode")
    stall = float(chaos.get("stall_s") or 0.0)
    if stall > 0.0 and req.get("attempt", 1) == 1:
        import time

        end = time.monotonic() + stall
        while time.monotonic() < end:   # interruptible busy spin
            pass


def _restructure(req: dict) -> dict:
    from repro.experiments.ingest import ingest_source, source_payload

    faults = None
    scenario_name = req.get("fault_scenario")
    if scenario_name:
        from repro.faults.plan import scenario

        faults = scenario(scenario_name)
    table, report = ingest_source(
        req["source"], req.get("path", "<request>"),
        quick=bool(req.get("quick")), faults=faults)
    if table is None:
        return {
            "outcome": "invalid-input",
            "message": f"{report.error_count} lint error(s) — "
                       "source not ingested",
            "detail": {"lint": report.to_dict()},
        }
    degraded = []
    if faults is not None and faults.active:
        degraded.append(f"fault-scenario:{faults.name}")
    return {
        "outcome": "ok",
        "payload": {"experiment": source_payload(
            table, bool(req.get("quick")))},
        "degraded": degraded,
    }


def _lint(req: dict) -> dict:
    from repro.lint.engine import lint_source, report_json

    report = lint_source(req["source"], path=req.get("path", "<request>"))
    return {
        "outcome": "ok",
        "payload": report_json([report]),
        "degraded": [],
    }


_ENDPOINTS = {"restructure": _restructure, "lint": _lint}


def run_request_cell(req: dict) -> dict:
    """Execute one request dict; always returns a classified dict.

    ``{"outcome": "ok"|"invalid-input", ...}`` on a completed run,
    ``{"outcome": "fault", "fault": <FaultReport dict>}`` when the
    workload raised or the in-worker watchdog fired.
    """
    handler = _ENDPOINTS.get(req.get("endpoint") or "")
    if handler is None:
        return {
            "outcome": "invalid-input",
            "message": f"unknown endpoint {req.get('endpoint')!r}",
            "detail": {},
        }

    def _cell():
        # chaos runs inside the isolation boundary: a serial-mode kill
        # directive surfaces as a retryable fault, not a server death
        _apply_chaos(req)
        engine = req.get("engine")
        if not engine:
            return handler(req)
        # pin the requested execution tier for everything this cell
        # runs (any Interpreter built without an explicit engine reads
        # $REPRO_ENGINE); restore afterwards for serial-mode reuse
        prev = os.environ.get("REPRO_ENGINE")
        os.environ["REPRO_ENGINE"] = engine
        try:
            return handler(req)
        finally:
            if prev is None:
                os.environ.pop("REPRO_ENGINE", None)
            else:
                os.environ["REPRO_ENGINE"] = prev

    # disk-store failures in this (possibly forked) process can't feed
    # the parent's circuit breaker directly — count them here and ship
    # the count home in the result
    from repro.engine.cache import get_cache

    disk_errors: list = []
    cache = get_cache()
    prev_hook = cache.disk_error_hook
    cache.disk_error_hook = disk_errors.append
    try:
        result, fault = run_isolated(
            _cell,
            label=f"{req.get('endpoint')}:{req.get('request_id', '?')}",
            timeout=req.get("timeout_s"))
    finally:
        cache.disk_error_hook = prev_hook
    if fault is not None:
        result = {"outcome": "fault", "fault": fault.to_dict()}
    result["disk_errors"] = len(disk_errors)
    return result
