"""The HTTP front end: stdlib ``ThreadingHTTPServer``, JSON in/out.

Routes::

    POST /restructure   {"source": "...", "quick": bool, ...} -> envelope
    POST /lint          {"source": "...", ...}                -> envelope
    GET  /healthz       liveness + breaker states + orphans
    GET  /readyz        admission readiness (503 while draining)
    GET  /metrics       Prometheus exposition of the telemetry registry

The envelope status maps onto HTTP codes — but the *envelope* is the
contract; every response body (including 4xx/5xx) is a classified
``repro-server/1`` document, never a bare stack trace:

=================  ====
``ok``             200
``degraded``       200
``invalid-input``  422
``shed``           429
``error``          500
=================  ====
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.log import get_logger
from repro.server.service import SERVER_SCHEMA, RestructurerService

_LOG = get_logger("server.http")

_STATUS_HTTP = {"ok": 200, "degraded": 200, "invalid-input": 422,
                "shed": 429, "error": 500}

#: request bodies past this size are refused up front (terminal)
MAX_BODY_BYTES = 4 * 1024 * 1024


def _make_handler(service: RestructurerService):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # route stdlib request logging into the structured log
        def log_message(self, fmt, *args):  # noqa: A003 - stdlib name
            _LOG.debug("http", line=fmt % args)

        def _send_json(self, code: int, payload: dict) -> None:
            body = json.dumps(payload, indent=2).encode() + b"\n"
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_envelope(self, envelope: dict) -> None:
            self._send_json(_STATUS_HTTP.get(envelope["status"], 500),
                            envelope)

        def do_GET(self):  # noqa: N802 - stdlib casing
            if self.path == "/healthz":
                self._send_json(200, service.healthz())
            elif self.path == "/readyz":
                ready = service.readyz()
                self._send_json(200 if ready["ready"] else 503, ready)
            elif self.path == "/metrics":
                body = service.metrics_text().encode()
                self.send_response(200)
                self.send_header("Content-Type",
                                 "text/plain; version=0.0.4")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            else:
                self._send_json(404, {"error": "not found",
                                      "path": self.path})

        def do_POST(self):  # noqa: N802 - stdlib casing
            endpoint = self.path.lstrip("/")
            if endpoint not in ("restructure", "lint"):
                self._send_json(404, {"error": "not found",
                                      "path": self.path})
                return
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                self._send_envelope(service.handle(endpoint, {
                    "source": ""}))  # classified invalid-input
                return
            try:
                request = json.loads(
                    self.rfile.read(length).decode("utf-8", "replace"))
            except (json.JSONDecodeError, ValueError):
                request = None      # -> classified invalid-input
            try:
                envelope = service.handle(endpoint, request)
            except Exception as exc:  # noqa: BLE001 - last-ditch guard
                # the service classifies everything; this is belt and
                # braces so a bug still yields an envelope, not a bare
                # 500 traceback
                _LOG.error("handler_internal", endpoint=endpoint,
                           error_type=type(exc).__name__,
                           message=str(exc))
                envelope = {
                    "schema": SERVER_SCHEMA, "request_id": "req-unknown",
                    "endpoint": endpoint, "status": "error",
                    "attempts": 1, "retries": 0, "degraded": [],
                    "reason": f"{type(exc).__name__}: {exc}",
                    "elapsed_s": 0.0, "result": None,
                    "fault": {"label": endpoint, "kind": "internal",
                              "error_type": type(exc).__name__,
                              "message": str(exc), "elapsed_s": 0.0,
                              "traceback": "", "detail": {}},
                }
            self._send_envelope(envelope)

    return Handler


def make_server(service: RestructurerService, host: str = "127.0.0.1",
                port: int = 0) -> ThreadingHTTPServer:
    """Bind a threading HTTP server for ``service`` (``port=0`` picks a
    free port; read it back from ``server.server_address``)."""
    server = ThreadingHTTPServer((host, port), _make_handler(service))
    server.daemon_threads = True
    return server
