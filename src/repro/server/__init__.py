"""repro.server — the restructurer as a long-running, fault-tolerant
service.

The paper's restructurer is a batch compiler; this package is its
production front door: a stdlib-only JSON-over-HTTP service
(``python -m repro.server``) that accepts Fortran source plus pipeline
config and returns restructured-program estimates and lint reports,
with **resilience as the headline**:

- :mod:`repro.server.supervisor` — a supervised worker-process pool
  (crash detection, automatic respawn, per-request hard deadlines);
- :mod:`repro.server.retry` — seeded-deterministic exponential backoff
  with jitter and a per-request retry budget; worker crashes and
  timeouts retry, malformed input is terminal;
- :mod:`repro.server.breaker` — circuit breakers over the on-disk cache
  store and the worker pool, tripping to degraded in-memory / serial
  in-process modes instead of failing;
- :mod:`repro.server.queue` — bounded admission with deadline-aware
  load shedding (a distinct ``shed`` status, never a deadlock);
- :mod:`repro.server.service` — the orchestration: request envelopes
  (``repro-server/1``), journal-backed durability via
  :class:`repro.faults.harness.SweepJournal`, correlation-id logging,
  and the classified outcome contract — every accepted request
  terminates ``ok`` / ``degraded`` / ``shed`` / ``invalid-input`` /
  ``error``, nothing hangs and nothing 500s unclassified;
- :mod:`repro.server.http` — the ``ThreadingHTTPServer`` front end
  (``/restructure``, ``/lint``, ``/healthz``, ``/readyz``,
  ``/metrics``).

Everything is stdlib + the existing engine/faults/telemetry layers —
no new dependencies.
"""

from repro.server.breaker import CircuitBreaker
from repro.server.queue import AdmissionQueue, ShedRequest
from repro.server.retry import RetryPolicy
from repro.server.service import SERVER_SCHEMA, RestructurerService
from repro.server.supervisor import PoolCrashError, WorkerSupervisor

__all__ = [
    "AdmissionQueue",
    "CircuitBreaker",
    "PoolCrashError",
    "RestructurerService",
    "RetryPolicy",
    "SERVER_SCHEMA",
    "ShedRequest",
    "WorkerSupervisor",
]
