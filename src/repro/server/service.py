"""The restructurer service: classified outcomes, always.

:class:`RestructurerService` composes the resilience pieces — admission
queue, supervised pool, retry policy, circuit breakers, journal — into
one contract: **every accepted request terminates with a classified
outcome**.  The response envelope (``repro-server/1``) carries exactly
one of five statuses:

==================  =====================================================
``ok``              full-fidelity result
``degraded``        correct result from a degraded path (fault scenario
                    active, serial fallback, memory-only cache)
``shed``            refused under load / past deadline — retry later
``invalid-input``   the request can never succeed; do not retry
``error``           transient faults exhausted the retry budget
==================  =====================================================

Durability: accepted requests journal ``accept:<id>`` before running
and ``done:<id>`` after; a restarted server reports requests that were
in flight when it died as ``lost-on-restart`` in ``/healthz`` instead
of silently forgetting them.

Degradation ladder: the *store* breaker (journal + on-disk cache
store) trips to memory-only operation; the *pool* breaker (worker
crashes, supervisor deadlines) trips to serial in-process execution
guarded by the thread-fallback watchdog.  Both degrade the service —
neither stops it.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional

from repro.engine.cache import get_cache
from repro.faults.harness import SweepJournal
from repro.obs.log import get_logger
from repro.server.breaker import OPEN, CircuitBreaker
from repro.server.queue import AdmissionQueue, ShedRequest
from repro.server.retry import RetryPolicy
from repro.server.supervisor import WorkerSupervisor
from repro.server.worker import run_request_cell
from repro.telemetry import get_registry

SERVER_SCHEMA = "repro-server/1"

#: extra parent-side slack past the in-worker watchdog, so the watchdog
#: (classified, cheap) fires before the supervisor kill (pool rebuild)
_SUPERVISOR_SLACK_S = 5.0

_LOG = get_logger("server.service")


class _InflightRequest:
    """One leader computation that identical concurrent requests join."""

    __slots__ = ("done", "envelope")

    def __init__(self):
        self.done = threading.Event()
        self.envelope: Optional[dict] = None


class RestructurerService:
    """One engine, served: orchestration behind every endpoint."""

    def __init__(self, *, workers: int = 2,
                 retry: Optional[RetryPolicy] = None,
                 queue_capacity: int = 8, max_wait_s: float = 5.0,
                 default_timeout_s: float = 30.0,
                 journal_path=None, chaos: bool = False,
                 registry=None, clock=time.monotonic):
        self.registry = registry if registry is not None else get_registry()
        self.retry = retry or RetryPolicy()
        self.default_timeout_s = default_timeout_s
        self.chaos = chaos
        self.queue = AdmissionQueue(capacity=queue_capacity,
                                    max_wait_s=max_wait_s, clock=clock,
                                    registry=self.registry)
        self.supervisor = WorkerSupervisor(workers=workers,
                                           registry=self.registry)
        self.store_breaker = CircuitBreaker(
            "store", failure_threshold=3, registry=self.registry)
        self.pool_breaker = CircuitBreaker(
            "pool", failure_threshold=3, registry=self.registry)
        self.journal = SweepJournal(journal_path)
        self.draining = False
        self._id_lock = threading.Lock()
        self._id_n = 0
        self._sleep = time.sleep
        # identical concurrent /restructure bodies coalesce onto one
        # in-flight computation, keyed by the engine cache's content
        # address (see _dedup_key)
        self._inflight_lock = threading.Lock()
        self._inflight: dict[str, _InflightRequest] = {}
        # requests that were in flight when a previous incarnation died
        self.lost_on_restart = self._recover_orphans()
        # disk-store failures anywhere in the cache feed the breaker
        get_cache().disk_error_hook = \
            lambda exc: self.store_breaker.record_failure()

    # -- durability --------------------------------------------------------

    def _recover_orphans(self) -> list[str]:
        orphans = [key[len("accept:"):] for key in self.journal.completed
                   if key.startswith("accept:")
                   and f"done:{key[len('accept:'):]}" not in self.journal]
        for rid in orphans:
            _LOG.warning("request_lost_on_restart", request_id=rid)
            self._journal(f"done:{rid}", {"status": "lost-on-restart"})
        return orphans

    def _journal(self, key: str, payload=None) -> None:
        """Journal through the store breaker: a failing disk pauses
        journaling (degraded) instead of failing requests."""
        if self.journal.path is None:
            self.journal.record(key, payload)   # in-memory bookkeeping
            return
        if not self.store_breaker.allow():
            return
        try:
            self.journal.record(key, payload)
            self.store_breaker.record_success()
        except OSError as exc:
            _LOG.warning("journal_write_failed", key=key,
                         message=str(exc))
            self.store_breaker.record_failure()

    # -- request plumbing --------------------------------------------------

    def _next_id(self) -> str:
        with self._id_lock:
            self._id_n += 1
            return f"req-{os.getpid()}-{self._id_n:05d}"

    def _envelope(self, request_id: str, endpoint: str, status: str,
                  *, attempts: int = 1, degraded=None, reason=None,
                  result=None, fault=None, t0: float = 0.0) -> dict:
        elapsed = time.monotonic() - t0 if t0 else 0.0
        self.registry.counter("repro_server_requests_total",
                              endpoint=endpoint, status=status).inc()
        self.registry.histogram("repro_server_request_seconds",
                                endpoint=endpoint).observe(elapsed)
        _LOG.info("request_done", request_id=request_id,
                  endpoint=endpoint, status=status, attempts=attempts,
                  elapsed_s=elapsed)
        return {
            "schema": SERVER_SCHEMA,
            "request_id": request_id,
            "endpoint": endpoint,
            "status": status,
            "attempts": attempts,
            "retries": max(0, attempts - 1),
            "degraded": sorted(set(degraded or [])),
            "reason": reason,
            "elapsed_s": elapsed,
            "result": result,
            "fault": fault,
        }

    def _chaos_marker(self, request_id: str, chaos_req: dict) -> Optional[str]:
        """Materialize a ``kill_worker: N`` directive as a countdown
        marker file (see :func:`repro.server.worker._apply_chaos`)."""
        kills = int(chaos_req.get("kill_worker") or 0)
        if kills <= 0:
            return None
        import tempfile

        base = self.journal.path.parent if self.journal.path is not None \
            else None
        fd, marker = tempfile.mkstemp(
            prefix=f"chaos-{request_id}-", suffix=".kills",
            dir=str(base) if base else None)
        with os.fdopen(fd, "w") as fh:
            fh.write(str(kills))
        return marker

    def _build_worker_request(self, request_id: str, endpoint: str,
                              request: dict, timeout_s: float) -> dict:
        req = {
            "request_id": request_id,
            "endpoint": endpoint,
            "source": request["source"],
            "path": request.get("path") or "<request>",
            "quick": bool(request.get("quick")),
            "fault_scenario": request.get("fault_scenario") or None,
            "engine": request.get("engine") or None,
            "timeout_s": timeout_s,
            "server_pid": os.getpid(),
            "attempt": 1,
        }
        if self.chaos and isinstance(request.get("chaos"), dict):
            chaos = dict(request["chaos"])
            marker = self._chaos_marker(request_id, chaos)
            req["chaos"] = {"kill_marker": marker,
                            "stall_s": float(chaos.get("stall_s") or 0.0)}
        return req

    def _validate(self, endpoint: str, request) -> Optional[str]:
        """Terminal request problems detectable before any work."""
        if not isinstance(request, dict):
            return "request body must be a JSON object"
        source = request.get("source")
        if not isinstance(source, str) or not source.strip():
            return "request must carry a non-empty 'source' string"
        scenario_name = request.get("fault_scenario")
        if scenario_name:
            from repro.faults.plan import SCENARIO_SPECS

            if scenario_name not in SCENARIO_SPECS:
                return (f"unknown fault scenario {scenario_name!r} "
                        f"(known: {', '.join(sorted(SCENARIO_SPECS))})")
        engine = request.get("engine")
        if engine is not None:
            from repro.execmodel.interp import ENGINES

            if engine not in ENGINES:
                return (f"unknown engine {engine!r} "
                        f"(known: {', '.join(ENGINES)})")
        return None

    # -- execution ---------------------------------------------------------

    def _run_attempt(self, req: dict, degraded: list) -> dict:
        """One attempt, through the pool or the serial fallback."""
        label = f"{req['endpoint']}:{req['request_id']}"
        if self.pool_breaker.allow():
            result, fault = self.supervisor.submit(
                run_request_cell, req, label,
                timeout_s=req["timeout_s"] + _SUPERVISOR_SLACK_S)
            if fault is not None:
                # a pool-level loss (crash / wedged worker), distinct
                # from a workload fault the worker reported itself
                self.pool_breaker.record_failure()
                return {"outcome": "fault", "fault": fault}
            self.pool_breaker.record_success()
            return result
        # pool breaker open: serial in-process, thread-watchdog guarded
        degraded.append("pool:serial")
        try:
            return run_request_cell(req)
        except Exception as exc:  # noqa: BLE001 — classify, don't 500
            return {"outcome": "fault", "fault": {
                "label": label, "kind": "internal",
                "error_type": type(exc).__name__, "message": str(exc),
                "elapsed_s": 0.0, "traceback": "", "detail": {}}}

    def _dedup_key(self, endpoint: str, request: dict) -> Optional[str]:
        """Content address of one coalescible request, or None.

        Only plain ``/restructure`` bodies coalesce: chaos directives
        are per-request by design (each carries its own kill budget),
        and other endpoints are cheap enough not to bother.  The key is
        the engine cache's content address over the source, with every
        result-shaping request field folded into the fingerprint — two
        requests share a key only if their envelopes' results are
        interchangeable by construction.
        """
        if endpoint != "restructure" or request.get("chaos"):
            return None
        from repro.engine.cache import content_key

        fp = "|".join(str(request.get(k) or "") for k in
                      ("path", "quick", "fault_scenario", "engine"))
        return content_key("server-restructure", request["source"], fp)

    def handle(self, endpoint: str, request) -> dict:
        """Run one request end to end; always returns an envelope."""
        request_id = self._next_id()
        t0 = time.monotonic()
        problem = self._validate(endpoint, request)
        if problem is not None:
            return self._envelope(request_id, endpoint, "invalid-input",
                                  reason=problem, t0=t0)
        key = self._dedup_key(endpoint, request)
        cell: Optional[_InflightRequest] = None
        leader = True
        if key is not None:
            with self._inflight_lock:
                cell = self._inflight.get(key)
                if cell is None:
                    cell = self._inflight[key] = _InflightRequest()
                else:
                    leader = False
        if not leader:
            # follower: ride the in-flight computation instead of
            # recomputing an identical body
            self.registry.counter("repro_server_dedup_total",
                                  endpoint=endpoint).inc()
            _LOG.info("request_deduplicated", request_id=request_id,
                      endpoint=endpoint)
            timeout_s = float(request.get("timeout_s")
                              or self.default_timeout_s)
            budget = (timeout_s + _SUPERVISOR_SLACK_S) \
                * max(1, self.retry.max_attempts)
            if cell.done.wait(budget) and cell.envelope is not None:
                return cell.envelope
            return self._envelope(request_id, endpoint, "shed",
                                  reason="coalesced computation did not "
                                         "finish in time — retry",
                                  t0=t0)
        envelope: Optional[dict] = None
        try:
            deadline_s = request.get("deadline_s")
            try:
                self.queue.acquire(
                    float(deadline_s) if deadline_s is not None else None)
            except ShedRequest as shed:
                envelope = self._envelope(request_id, endpoint, "shed",
                                          reason=shed.reason, t0=t0)
                return envelope
            try:
                envelope = self._handle_admitted(request_id, endpoint,
                                                 request, t0)
                return envelope
            finally:
                self.queue.release()
        finally:
            if cell is not None:
                with self._inflight_lock:
                    self._inflight.pop(key, None)
                cell.envelope = envelope
                cell.done.set()

    def _handle_admitted(self, request_id: str, endpoint: str,
                         request: dict, t0: float) -> dict:
        self._journal(f"accept:{request_id}", {"endpoint": endpoint})
        timeout_s = float(request.get("timeout_s")
                          or self.default_timeout_s)
        req = self._build_worker_request(request_id, endpoint, request,
                                         timeout_s)
        degraded: list[str] = []
        if self.store_breaker.state == OPEN:
            degraded.append("cache:memory-only")
            cache = get_cache()
            if cache.cache_dir is not None:
                _LOG.warning("cache_disk_disabled", request_id=request_id)
                cache.cache_dir = None
        attempt = 0
        while True:
            attempt += 1
            req["attempt"] = attempt
            outcome = self._run_attempt(req, degraded)
            for _ in range(int(outcome.pop("disk_errors", 0) or 0)):
                # worker-side cache store failures, shipped home
                self.store_breaker.record_failure()
            if outcome.get("outcome") != "fault":
                break
            fault = outcome.get("fault") or {}
            if not self.retry.should_retry(fault, attempt):
                envelope = self._envelope(
                    request_id, endpoint, "error", attempts=attempt,
                    degraded=degraded,
                    reason=f"retry budget exhausted after {attempt} "
                           f"attempt(s)" if self.retry.classify(fault)
                    else "non-retryable fault",
                    fault=fault, t0=t0)
                self._journal(f"done:{request_id}",
                              {"status": "error", "attempts": attempt})
                return envelope
            delay = self.retry.backoff(request_id, attempt)
            _LOG.warning("request_retry", request_id=request_id,
                         attempt=attempt, delay_s=delay,
                         kind=fault.get("kind"))
            self.registry.counter("repro_server_retries_total",
                                  endpoint=endpoint).inc()
            self._sleep(delay)
        if outcome.get("outcome") == "invalid-input":
            envelope = self._envelope(
                request_id, endpoint, "invalid-input", attempts=attempt,
                degraded=degraded,
                reason=outcome.get("message") or "invalid input", t0=t0)
            self._journal(f"done:{request_id}",
                          {"status": "invalid-input"})
            return envelope
        degraded.extend(outcome.get("degraded") or [])
        status = "degraded" if degraded else "ok"
        envelope = self._envelope(
            request_id, endpoint, status, attempts=attempt,
            degraded=degraded, result=outcome.get("payload"), t0=t0)
        self._journal(f"done:{request_id}",
                      {"status": status, "attempts": attempt})
        return envelope

    # -- health and lifecycle ----------------------------------------------

    def healthz(self) -> dict:
        return {
            "status": "draining" if self.draining else "ok",
            "in_flight": self.queue.in_flight,
            "breakers": {"store": self.store_breaker.state,
                         "pool": self.pool_breaker.state},
            "lost_on_restart": list(self.lost_on_restart),
        }

    def readyz(self) -> dict:
        return {"ready": not self.draining}

    def metrics_text(self) -> str:
        return self.registry.to_prometheus()

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Stop admitting, wait (bounded) for in-flight work, shut the
        pool down.  True when everything finished in time."""
        self.draining = True
        drained = self.queue.drain(timeout_s)
        self.supervisor.shutdown()
        _LOG.info("drained", clean=drained)
        return drained
