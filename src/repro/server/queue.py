"""Admission control: bounded concurrency, deadline-aware shedding.

Unbounded admission is how a service dies politely: every request is
accepted, none finishes, memory and queue delay grow without bound.
The :class:`AdmissionQueue` caps in-flight work at ``capacity`` and
makes every admission decision in bounded time:

- a slot free now → admitted immediately;
- no slot and the caller's deadline (or the queue's ``max_wait_s``)
  cannot possibly be met → shed *now* with a classified reason
  (``queue-full`` / ``deadline``) rather than parked forever;
- otherwise the caller waits on a condition variable with a bounded
  timeout — every wait has a timeout, so the queue cannot deadlock
  even if a release is lost.

Shedding is a first-class outcome (HTTP 429, envelope status ``shed``),
not an error: under overload the server stays responsive by doing less.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.obs.log import get_logger

_LOG = get_logger("server.queue")


class ShedRequest(Exception):
    """Raised when admission is refused; ``reason`` is classified."""

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(detail or reason)
        self.reason = reason


class AdmissionQueue:
    """Bounded admission with deadline-aware shedding."""

    def __init__(self, capacity: int = 8,
                 max_wait_s: float = 5.0,
                 clock: Callable[[], float] = time.monotonic,
                 registry=None):
        self.capacity = max(1, capacity)
        self.max_wait_s = max_wait_s
        self._clock = clock
        self._lock = threading.Lock()
        self._slots_free = threading.Condition(self._lock)
        self._in_flight = 0
        self._waiting = 0
        self._depth_gauge = None
        self._shed_total = None
        if registry is not None:
            self._depth_gauge = registry.gauge("repro_server_queue_depth")
            self._shed_total = lambda reason: registry.counter(
                "repro_server_shed_total", reason=reason)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def _shed(self, reason: str, detail: str) -> None:
        _LOG.warning("request_shed", reason=reason, detail=detail)
        if self._shed_total is not None:
            self._shed_total(reason).inc()
        raise ShedRequest(reason, detail)

    def acquire(self, deadline_s: Optional[float] = None) -> None:
        """Claim a slot or raise :class:`ShedRequest`.

        ``deadline_s`` is the caller's remaining patience in seconds;
        the effective wait budget is ``min(deadline_s, max_wait_s)``.
        Every wait is bounded — this method always returns or raises
        within the budget.
        """
        budget = self.max_wait_s
        if deadline_s is not None:
            budget = min(budget, deadline_s)
        give_up = self._clock() + budget
        with self._lock:
            while self._in_flight >= self.capacity:
                remaining = give_up - self._clock()
                if remaining <= 0:
                    reason = "deadline" if deadline_s is not None \
                        and deadline_s < self.max_wait_s else "queue-full"
                    self._shed(
                        reason,
                        f"{self._in_flight} in flight at capacity "
                        f"{self.capacity}, waited {budget:g}s")
                self._waiting += 1
                try:
                    self._slots_free.wait(timeout=min(remaining, 0.25))
                finally:
                    self._waiting -= 1
            self._in_flight += 1
            if self._depth_gauge is not None:
                self._depth_gauge.set(self._in_flight)

    def release(self) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            if self._depth_gauge is not None:
                self._depth_gauge.set(self._in_flight)
            self._slots_free.notify()

    def drain(self, timeout_s: float = 10.0) -> bool:
        """Wait (bounded) for all in-flight work to finish; True when
        fully drained."""
        give_up = self._clock() + timeout_s
        with self._lock:
            while self._in_flight > 0:
                remaining = give_up - self._clock()
                if remaining <= 0:
                    return False
                self._slots_free.wait(timeout=min(remaining, 0.25))
            return True
