#!/usr/bin/env python
"""Quickstart: parallelize a Fortran 77 routine for Cedar.

Feeds a small sequential routine through the restructurer, prints the
generated Cedar Fortran, checks with the interpreter that both versions
compute the same result, and estimates the speedup on the 32-processor
Cedar (Configuration 1).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import parse_source, restructure, unparse_cedar
from repro.execmodel.interp import Interpreter
from repro.execmodel.perf import PerfEstimator
from repro.machine.config import cedar_config1

SOURCE = """
      subroutine smooth(n, a, b)
      integer n
      real a(n), b(n)
      real t
      integer i
      do i = 2, n - 1
         t = a(i - 1) + a(i) + a(i + 1)
         b(i) = t / 3.0
      end do
      end
"""


def main() -> None:
    print("=== original Fortran 77 ===")
    print(SOURCE)

    # 1. restructure
    cedar_ast, report = restructure(parse_source(SOURCE))
    print("=== generated Cedar Fortran ===")
    print(unparse_cedar(cedar_ast))
    print(report.summary())

    # 2. verify: original and parallel versions agree
    n = 64
    a = np.random.default_rng(0).standard_normal(n)

    b_serial = np.zeros(n)
    Interpreter(parse_source(SOURCE)).call("smooth", n, a.copy(), b_serial)

    b_parallel = np.zeros(n)
    Interpreter(cedar_ast, processors=8).call("smooth", n, a.copy(),
                                              b_parallel)
    assert np.allclose(b_serial, b_parallel)
    print("\ninterpreter check: serial and parallel results match")

    # 3. estimate performance on Cedar
    machine = cedar_config1()
    serial = PerfEstimator(parse_source(SOURCE), machine,
                           prefetch=False).estimate("smooth", {"n": 10000})
    parallel = PerfEstimator(cedar_ast, machine).estimate("smooth",
                                                          {"n": 10000})
    print(f"estimated serial   : {serial.total:12.0f} cycles")
    print(f"estimated parallel : {parallel.total:12.0f} cycles")
    print(f"estimated speedup  : {serial.total / parallel.total:.1f}x "
          f"on {machine.total_processors} processors")


if __name__ == "__main__":
    main()
