c     sample.f -- a small "real world" fixed-form Fortran 77 source
c     used by the ingestion front door:
c
c         python -m repro.lint examples/sample.f
c         python -m repro.experiments --source examples/sample.f
c
c     It exercises the statement surface the linter understands
c     (common, data, save, labeled do loops, formats, goto) around a
c     compute kernel the restructurer can actually parallelize.
      program sample
      integer n
      parameter (n = 64)
      real a(n), b(n), c(n)
      real total
      integer i
      common /work/ a, b, c
      data total /0.0/
      do 10 i = 1, n
         a(i) = 1.0 / (i + 1.0)
         b(i) = a(i) * a(i)
         c(i) = 0.0
   10 continue
      call smooth(n, a, b, c)
      do 20 i = 1, n
         total = total + c(i)
   20 continue
      if (total .lt. 0.0) goto 30
      write (*, 100) total
      goto 40
   30 write (*, 110) total
   40 continue
  100 format ('total = ', f12.4)
  110 format ('negative total = ', f12.4)
      end

      subroutine smooth(n, a, b, c)
c     three-point smoothing followed by a scaled accumulate; every
c     loop is a clean doall candidate except the recurrence, which
c     the restructurer must keep serial.
      integer n
      real a(n), b(n), c(n)
      real w
      save w
      integer i
      w = 0.25
      do 10 i = 2, n - 1
         c(i) = w * (a(i-1) + 2.0 * a(i) + a(i+1))
   10 continue
      c(1) = a(1)
      c(n) = a(n)
      do 20 i = 1, n
         c(i) = c(i) + w * b(i)
   20 continue
      do 30 i = 2, n
         b(i) = b(i-1) + c(i)
   30 continue
      return
      end
