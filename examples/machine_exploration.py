#!/usr/bin/env python
"""Explore the Cedar machine model: clusters, prefetch, memory placement.

Uses the Conjugate Gradient workload to reproduce, interactively, the
three Cedar-specific effects of §4.2: the prefetch unit (Figure 6),
global-memory bandwidth saturation vs data partitioning (Figure 8), and
the SDOALL/CDOALL startup gap (Figure 9's root cause).

Run:  python examples/machine_exploration.py
"""

from repro.execmodel.perf import PerfEstimator
from repro.experiments.common import restructured_estimate
from repro.fortran.parser import parse_program
from repro.machine.config import alliant_fx80, cedar_config1
from repro.machine.scheduler import LoopScheduler
from repro.restructurer.options import RestructurerOptions
from repro.restructurer.pipeline import Restructurer
from repro.workloads.linalg import LINALG_ROUTINES


def prefetch_effect() -> None:
    print("== prefetch unit (cf. Figure 6) ==")
    cg = LINALG_ROUTINES["cg"]
    b = cg.bindings(400)
    machine = cedar_config1()
    for prefetch in (False, True):
        res, _, _ = restructured_estimate(
            cg.source, cg.entry, b, machine,
            RestructurerOptions.automatic(), prefetch=prefetch)
        print(f"  prefetch {'on ' if prefetch else 'off'}: "
              f"{res.total:12.0f} cycles")


def cluster_scaling() -> None:
    print("\n== cluster scaling and placement (cf. Figure 8) ==")
    cg = LINALG_ROUTINES["cg"]
    b = cg.bindings(400)
    sf, _ = Restructurer(RestructurerOptions.automatic()).run(
        parse_program(cg.source))
    print(f"  {'clusters':>8} {'global data':>14} {'matrix local':>14}")
    for c in (1, 2, 3, 4):
        machine = cedar_config1().with_clusters(c)
        g = PerfEstimator(sf, machine).estimate(cg.entry, b)
        p = PerfEstimator(sf, machine,
                          placements={"a": "cluster"}).estimate(cg.entry, b)
        print(f"  {c:>8} {g.total:>13.0f}  {p.total:>13.0f}")
    print("  (global placement saturates the memory system; partitioning "
          "the matrix keeps scaling)")


def startup_costs() -> None:
    print("\n== parallel loop startup costs (cf. §4.2.4, Figure 9) ==")
    cedar = cedar_config1()
    fx80 = alliant_fx80()
    sched_c = LoopScheduler(cedar)
    print(f"  {'loop kind':>10} {'trips':>6} {'iter ops':>9} "
          f"{'cedar cycles':>13}")
    for kind, level in (("CDOALL", "C"), ("SDOALL", "S"), ("XDOALL", "X")):
        for trips in (16, 256, 4096):
            t = sched_c.run(level, "doall", trips, iter_cost=40.0)
            print(f"  {kind:>10} {trips:>6} {40:>9} {t.total_time:>13.0f}")
    print("  (an SDOALL only pays off with enough work per start — the "
          "reason Figure 9's fusion wins 2x on Cedar)")


if __name__ == "__main__":
    prefetch_effect()
    cluster_scaling()
    startup_costs()
