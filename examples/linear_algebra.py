#!/usr/bin/env python
"""Parallelize and validate a real linear-algebra workload (Table 1 style).

Takes the Gauss-Jordan solver from the Table 1 suite, restructures it,
validates the parallel version against numpy on a real system, and sweeps
the data size to show how speedup grows with problem size — the paper's
observation that "the size of the input data set has a great influence on
performance and speedup".

Run:  python examples/linear_algebra.py
"""

import numpy as np

from repro.api import restructure
from repro.execmodel.interp import Interpreter
from repro.experiments.common import estimate_pair
from repro.fortran.parser import parse_program
from repro.machine.config import cedar_config1
from repro.restructurer.options import RestructurerOptions
from repro.workloads.linalg import LINALG_ROUTINES


def main() -> None:
    routine = LINALG_ROUTINES["gaussj"]
    rng = np.random.default_rng(42)

    # 1. correctness on a real (small) system
    n = 48
    cedar_ast, report = restructure(parse_program(routine.source))
    print(report.summary())

    args, aux = routine.make_args(n, rng)
    result = Interpreter(cedar_ast, processors=8).call(routine.entry, *args)
    ok = routine.verify(n, aux, result)
    print(f"\nparallel gaussj solves a {n}x{n} system correctly: {ok}")
    assert ok

    # 2. speedup vs data size on Cedar Configuration 1
    machine = cedar_config1()
    options = RestructurerOptions.automatic()
    print(f"\n{'size':>6} {'speedup':>9}")
    for size in (50, 100, 200, 400, 600):
        res = estimate_pair(routine.source, routine.entry,
                            routine.bindings(size), machine, options)
        print(f"{size:>6} {res.speedup:>8.1f}x")
    print("\n(larger systems amortize the parallel-loop startup and the "
          "global-memory latency, as in the paper)")


if __name__ == "__main__":
    main()
