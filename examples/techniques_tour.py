#!/usr/bin/env python
"""A tour of the §4.1 restructuring techniques.

For each technique the paper found decisive for the Perfect Benchmarks —
array privatization, parallel reductions, generalized induction variables,
run-time dependence tests, unordered critical sections — this example
shows a small kernel that the *automatic* (1991-KAP-level) configuration
leaves serial and the *aggressive* configuration parallelizes, printing
the generated Cedar Fortran.

Run:  python examples/techniques_tour.py
"""

from repro.api import restructure, unparse_cedar
from repro.fortran.parser import parse_program
from repro.restructurer.options import RestructurerOptions

KERNELS = {
    "array privatization (§4.1.2)": """
      subroutine privat(n, m, a)
      integer n, m
      real a(n, m)
      real w(512)
      integer i, j
      do i = 1, n
         do j = 1, m
            w(j) = a(i, j) * 2.0
         end do
         do j = 1, m
            a(i, j) = w(j) + 1.0
         end do
      end do
      end
""",
    "array reductions, multi-statement (§4.1.3)": """
      subroutine reduce(n, m, a, b)
      integer n, m
      real a(m), b(n, m)
      integer i, j
      do i = 1, n
         do j = 1, m
            a(j) = a(j) + b(i, j)
            a(j) = a(j) + 2.0 * b(i, j) * b(i, j)
         end do
      end do
      end
""",
    "generalized induction variables (§4.1.4)": """
      subroutine giv(n, a)
      integer n
      real a(n * (n + 1) / 2)
      integer i, j, k
      k = 0
      do i = 1, n
         do j = 1, i
            k = k + 1
            a(k) = real(i) * 0.5 + real(j)
         end do
      end do
      end
""",
    "run-time dependence test (§4.1.5)": """
      subroutine rtt(ni, nj, lda, w, d)
      integer ni, nj, lda
      real w(*), d(ni)
      integer i, j
      do j = 1, nj
         do i = 1, ni
            w(i + lda * (j - 1)) = w(i + lda * (j - 1)) + d(i)
         end do
      end do
      end
""",
    "unordered critical sections (§4.1.6)": """
      subroutine crit(n, x, thresh, found, nfound)
      integer n, nfound
      real x(n), thresh
      integer found(n)
      integer i
      do i = 1, n
         if (x(i) .gt. thresh) then
            nfound = nfound + 1
            found(nfound) = i
         end if
      end do
      end
""",
}


def main() -> None:
    auto = RestructurerOptions.automatic()
    aggressive = RestructurerOptions.manual()
    for title, src in KERNELS.items():
        print("#" * 72)
        print("#", title)
        print("#" * 72)
        _, rep_auto = restructure(parse_program(src), auto)
        cedar, rep_manual = restructure(parse_program(src), aggressive)
        unit = next(iter(rep_auto.units))
        auto_plans = [p.chosen for p in rep_auto.units[unit].plans]
        manual_plans = [p.chosen for p in rep_manual.units[unit].plans]
        print(f"automatic configuration : {auto_plans}")
        print(f"aggressive configuration: {manual_plans}")
        print()
        print(unparse_cedar(cedar))


if __name__ == "__main__":
    main()
