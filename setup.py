"""Setup shim enabling legacy editable installs (no network, no wheel).

Offline environments without the ``wheel`` package cannot complete a
PEP 660 editable install; ``pip install -e . --no-use-pep517`` (or plain
``pip install -e .`` on older pips) falls back to ``setup.py develop``,
which this shim supports.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
