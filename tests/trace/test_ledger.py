"""Unit tests for the cycle-attribution ledger algebra."""

import pytest

from repro.trace import CATEGORIES, HIERARCHY, NULL_LEDGER, CycleLedger, NullLedger


class TestAlgebra:
    def test_charge_accumulates(self):
        led = CycleLedger()
        led.charge("compute", 10.0)
        led.charge("compute", 5.0)
        led.charge("mem_global", 2.5)
        assert led.compute == 15.0
        assert led.mem_global == 2.5
        assert led.total() == 17.5

    def test_unknown_category_raises(self):
        led = CycleLedger()
        with pytest.raises(KeyError):
            led.charge("memory", 1.0)  # group name, not a category
        with pytest.raises(KeyError):
            led.charge("cycles", 1.0)

    def test_add_is_componentwise(self):
        a = CycleLedger(compute=1.0, sync=2.0)
        b = CycleLedger(compute=3.0, vector=4.0)
        a.add(b)
        assert a.compute == 4.0 and a.sync == 2.0 and a.vector == 4.0
        # b untouched
        assert b.compute == 3.0

    def test_scaled_mirrors_cost_scaling(self):
        led = CycleLedger(compute=2.0, mem_cluster=6.0)
        tripled = led.scaled(3.0)
        assert tripled.compute == 6.0 and tripled.mem_cluster == 18.0
        assert tripled is not led and led.compute == 2.0
        assert tripled.total() == pytest.approx(3.0 * led.total())

    def test_copy_is_independent(self):
        led = CycleLedger(vector=1.0)
        dup = led.copy()
        dup.charge("vector", 1.0)
        assert led.vector == 1.0 and dup.vector == 2.0

    def test_group_totals_partition_the_total(self):
        led = CycleLedger(**{c: float(i + 1)
                             for i, c in enumerate(CATEGORIES)})
        assert sum(led.group_total(g) for g in HIERARCHY) \
            == pytest.approx(led.total())

    def test_hierarchy_covers_every_category_once(self):
        flat = [c for cats in HIERARCHY.values() for c in cats]
        assert sorted(flat) == sorted(CATEGORIES)


class TestToDict:
    def test_shape(self):
        led = CycleLedger(compute=3.0, startup=7.0)
        d = led.to_dict()
        assert d["total"] == 10.0
        assert d["groups"]["processor"]["compute"] == 3.0
        assert d["groups"]["parallel_overhead"]["total"] == 7.0
        assert set(d["groups"]) == set(HIERARCHY)

    def test_json_round_trip(self):
        import json

        led = CycleLedger(mem_cache=1.25)
        assert json.loads(json.dumps(led.to_dict())) == led.to_dict()

    def test_render_mentions_nonzero_categories_only(self):
        led = CycleLedger(compute=100.0)
        text = led.render()
        assert "compute" in text
        assert "page_fault" not in text


class TestNullLedger:
    def test_charge_is_dropped(self):
        led = NullLedger()
        led.charge("compute", 100.0)
        led.add(CycleLedger(compute=5.0))
        assert led.total() == 0.0

    def test_scaled_and_copy_return_self(self):
        assert NULL_LEDGER.scaled(7.0) is NULL_LEDGER
        assert NULL_LEDGER.copy() is NULL_LEDGER

    def test_shared_instance_stays_clean(self):
        NULL_LEDGER.charge("sync", 1e9)
        assert NULL_LEDGER.total() == 0.0
