"""Unit tests for decision events, sinks, and the trace report renderer."""

from repro.trace import (
    NULL_SINK,
    DecisionEvent,
    TeeSink,
    TraceRecorder,
    TraceReport,
)
from repro.trace.events import render_events


def _ev(**kw):
    base = dict(kind="plan", unit="foo", technique="xdoall",
                action="accepted", loop="do i", line=12)
    base.update(kw)
    return DecisionEvent(**base)


class TestDecisionEvent:
    def test_where_includes_line(self):
        assert _ev().where() == "foo:do i@12"
        assert _ev(line=None).where() == "foo:do i"
        assert _ev(loop="", line=None).where() == "foo"

    def test_to_dict_omits_empty_fields(self):
        d = _ev(reason="", predicted_cycles=None).to_dict()
        assert "reason" not in d and "predicted_cycles" not in d
        d2 = _ev(reason="why", predicted_cycles=42.0).to_dict()
        assert d2["reason"] == "why" and d2["predicted_cycles"] == 42.0

    def test_render_carries_cost_and_reason(self):
        text = _ev(action="rejected", reason="carried dep on b",
                   predicted_cycles=123.0).render()
        assert "foo:do i@12" in text
        assert "rejected" in text and "carried dep on b" in text
        assert "123" in text

    def test_frozen(self):
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            _ev().action = "rejected"


class TestSinks:
    def test_recorder_collects_and_filters(self):
        rec = TraceRecorder()
        rec.emit(_ev())
        rec.emit(_ev(action="rejected", technique="cdoacross"))
        rec.emit(_ev(unit="bar", loop="do j", line=3, action="declined"))
        assert len(rec) == 3
        assert len(rec.for_unit("foo")) == 2
        assert len(rec.for_loop("do i", 12)) == 2
        assert [e.action for e in rec.rejections()] \
            == ["rejected", "declined"]
        assert len(rec.accepted()) == 1
        assert all(isinstance(d, dict) for d in rec.to_list())

    def test_null_sink_noop(self):
        NULL_SINK.emit(_ev())  # must not raise or store anything

    def test_tee_forwards_and_drops_nulls(self):
        a, b = TraceRecorder(), TraceRecorder()
        tee = TeeSink(a, None, NULL_SINK, b)
        assert len(tee.sinks) == 2
        tee.emit(_ev())
        assert len(a) == 1 and len(b) == 1

    def test_render_events_one_line_each(self):
        text = render_events([_ev(), _ev(action="rejected")])
        assert len(text.splitlines()) == 2


class TestTraceReport:
    def test_renders_breakdowns_and_decisions(self):
        from repro.trace import CycleLedger

        workloads = {
            "cg": {
                "speedup": 6.5,
                "serial_breakdown": CycleLedger(compute=90.0,
                                                mem_cluster=10.0).to_dict(),
                "parallel_breakdown": CycleLedger(vector=5.0,
                                                  startup=15.0).to_dict(),
                "decisions": [_ev(unit="cg", action="rejected",
                                  reason="carried dep").to_dict()],
            },
        }
        text = TraceReport("Table 1", workloads).render()
        assert "cycle attribution" in text
        assert "speedup 6.50" in text
        assert "mem_cluster" in text and "startup" in text
        assert "carried dep" in text

    def test_empty_workload_entry_is_tolerated(self):
        text = TraceReport("T", {"empty": {}}).render()
        assert "empty" in text
