"""Regression-diff behavior: detection, direction, exit codes."""

import copy
import json

import pytest

from repro.prof.diff import diff_payloads, extract_metrics


def exp_payload(cycles=1000.0, speedup=4.0, quick=True):
    return {
        "schema": "repro-experiment/1",
        "quick": quick,
        "experiments": {
            "table1": {
                "title": "t", "columns": ["routine", "x (measured)"],
                "rows": [{"routine": "cg", "x (measured)": speedup}],
                "notes": [],
                "meta": {"trace": {"cg": {
                    "speedup": speedup,
                    "serial_cycles": cycles * speedup,
                    "parallel_cycles": cycles,
                }}},
            }
        },
    }


def profile_payload(total=5000.0):
    return {
        "schema": "repro-profile/1",
        "experiment": "table1",
        "runs": [{"workload": "cg", "role": "parallel",
                  "total_cycles": total}],
    }


class TestDetection:
    def test_identical_passes(self):
        p = exp_payload()
        res = diff_payloads(p, copy.deepcopy(p))
        assert not res.failed
        assert res.deltas

    def test_five_percent_cycle_regression_fails(self):
        """The acceptance case: an injected 5% cycle increase must be
        caught at the default 2% threshold."""
        old, new = exp_payload(), exp_payload()
        t = new["experiments"]["table1"]["meta"]["trace"]["cg"]
        t["parallel_cycles"] *= 1.05
        res = diff_payloads(old, new)
        assert res.failed
        assert any(d.metric == "parallel_cycles"
                   for d in res.regressions())

    def test_speedup_drop_is_a_regression(self):
        old, new = exp_payload(speedup=4.0), exp_payload(speedup=3.5)
        res = diff_payloads(old, new)
        assert any(d.metric == "speedup" for d in res.regressions())
        assert any("measured" in d.metric for d in res.regressions())

    def test_cycle_improvement_passes(self):
        old, new = exp_payload(cycles=1000.0), exp_payload(cycles=900.0)
        t = new["experiments"]["table1"]["meta"]["trace"]["cg"]
        t["serial_cycles"] = 4000.0  # keep serial identical to old
        old["experiments"]["table1"]["meta"]["trace"]["cg"][
            "serial_cycles"] = 4000.0
        res = diff_payloads(old, new, metrics=("parallel_cycles",))
        assert not res.failed

    def test_within_threshold_passes(self):
        old, new = exp_payload(), exp_payload()
        t = new["experiments"]["table1"]["meta"]["trace"]["cg"]
        t["parallel_cycles"] *= 1.01
        assert not diff_payloads(old, new, threshold=0.02).failed

    def test_profile_payloads(self):
        res = diff_payloads(profile_payload(5000.0),
                            profile_payload(5300.0))
        assert res.failed
        (d,) = res.regressions()
        assert d.metric == "total_cycles"
        assert d.rel == pytest.approx(0.06)

    def test_quick_mismatch_refused(self):
        with pytest.raises(ValueError):
            diff_payloads(exp_payload(quick=True), exp_payload(quick=False))

    def test_missing_and_new_workloads_reported_not_failed(self):
        old, new = exp_payload(), exp_payload()
        new["experiments"]["table1"]["meta"]["trace"]["extra"] = \
            dict(new["experiments"]["table1"]["meta"]["trace"]["cg"])
        res = diff_payloads(old, new)
        assert res.only_new == ["table1/extra"]
        assert not res.failed


class TestExtractMetrics:
    def test_rows_without_trace_still_diffable(self):
        p = exp_payload()
        del p["experiments"]["table1"]["meta"]["trace"]
        m = extract_metrics(p)
        assert m == {"table1/routine=cg": {"x (measured)": 4.0}}

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            extract_metrics({"schema": "bogus/9"})


class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        from repro.prof.__main__ import main

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(exp_payload()))
        regressed = exp_payload()
        regressed["experiments"]["table1"]["meta"]["trace"]["cg"][
            "parallel_cycles"] *= 1.05
        new.write_text(json.dumps(regressed))
        assert main(["diff", str(old), str(old)]) == 0
        assert main(["diff", str(old), str(new)]) == 1
        assert main(["diff", str(old), str(new), "--threshold", "0.10"]) == 0
        out = capsys.readouterr().out
        assert "REGRESSION" in out
