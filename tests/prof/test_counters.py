"""HwCounters/ProfLedger composition and counter↔ledger reconciliation."""

import pytest

from repro.machine.config import cedar_config1
from repro.machine.memory import MemorySystem
from repro.prof.counters import (
    COUNTERS,
    HwCounters,
    ProfLedger,
    memory_cycles_from_counters,
    reconcile,
)
from repro.trace.ledger import CATEGORIES, CycleLedger


class TestHwCounters:
    def test_bump_add_scaled(self):
        a = HwCounters()
        a.bump("cache_refs", 3)
        a.bump("global_refs", 2)
        b = HwCounters()
        b.bump("cache_refs", 1)
        b.add(a)
        assert b.cache_refs == 4 and b.global_refs == 2
        half = b.scaled(0.5)
        assert half.cache_refs == 2.0 and half.global_refs == 1.0
        # scaling must not alias the original
        assert b.cache_refs == 4

    def test_unknown_counter_rejected(self):
        with pytest.raises((AttributeError, KeyError, TypeError)):
            HwCounters().bump("no_such_counter", 1)

    def test_round_trip_dict(self):
        a = HwCounters()
        a.bump("prefetch_elems", 32)
        assert HwCounters.from_dict(a.to_dict()).prefetch_elems == 32

    def test_prefetch_hit_rate(self):
        a = HwCounters()
        assert a.prefetch_hit_rate() == 0.0
        a.bump("prefetch_elems", 75)
        a.bump("global_stream_elems", 25)
        assert a.prefetch_hit_rate() == pytest.approx(0.75)


class TestProfLedger:
    def test_count_is_noop_on_plain_ledger(self):
        led = CycleLedger()
        led.count("cache_refs", 5)  # must not raise, must not record
        assert not hasattr(led, "counters")

    def test_counters_ride_add_and_scaled(self):
        a = ProfLedger()
        a.charge("mem_cache", 10.0)
        a.count("cache_refs", 5)
        b = ProfLedger()
        b.add(a)
        b.add(a.scaled(3.0))
        assert b.counters.cache_refs == pytest.approx(20.0)
        assert b.mem_cache == pytest.approx(40.0)

    def test_scaled_matches_cycle_scaling(self):
        """Counter scaling must track cycle scaling exactly, or the
        estimator's trip/branch averaging would break reconciliation."""
        a = ProfLedger()
        a.charge("mem_global", 22.0)
        a.count("global_refs", 1)
        s = a.scaled(0.25)
        assert s.mem_global / a.mem_global == pytest.approx(
            s.counters.global_refs / a.counters.global_refs)

    def test_add_plain_ledger_keeps_counters(self):
        a = ProfLedger()
        a.count("sync_ops", 2)
        plain = CycleLedger()
        plain.charge("sync", 7.0)
        a.add(plain)
        assert a.counters.sync_ops == 2 and a.sync == 7.0

    def test_copy_independent(self):
        a = ProfLedger()
        a.count("page_faults", 1)
        c = a.copy()
        c.count("page_faults", 1)
        assert a.counters.page_faults == 1 and c.counters.page_faults == 2


class TestReconcile:
    def test_memory_system_counters_reconcile(self):
        """Counters accumulated by the memory system, priced with the
        config's latencies, must equal the cycles it charged."""
        cfg = cedar_config1()
        mem = MemorySystem(cfg)
        led = ProfLedger()
        mem.scalar_access("private", ledger=led)
        mem.scalar_access("cluster", ledger=led)
        mem.scalar_access("global", ledger=led)
        mem.vector_access("global", 100, prefetch=True, ledger=led)
        mem.vector_access("global", 50, prefetch=False, ledger=led)
        mem.vector_access("cluster", 10, ledger=led)
        report = reconcile(led.counters, led, cfg)
        assert all(v["ok"] for v in report.values()), report

    def test_reconcile_flags_mismatch(self):
        cfg = cedar_config1()
        led = ProfLedger()
        led.charge("mem_cache", 100.0)  # cycles with no matching counts
        report = reconcile(led.counters, led, cfg)
        assert not report["mem_cache"]["ok"]

    def test_from_counters_keys(self):
        out = memory_cycles_from_counters(HwCounters(), cedar_config1())
        assert set(out) == {"mem_cache", "mem_cluster", "mem_global",
                            "prefetch", "page_fault"}
        assert all(v == 0.0 for v in out.values())


def test_counter_names_disjoint_from_categories():
    """Counter names must not shadow ledger cycle categories."""
    assert not set(COUNTERS) & set(CATEGORIES)
