"""ASCII Gantt / utilization rendering."""

from repro.machine.config import cedar_config1
from repro.machine.scheduler import LoopScheduler
from repro.prof.report import render_gantt, render_report, render_utilization
from repro.prof.timeline import TimelineRecorder


def make_loops():
    sched = LoopScheduler(cedar_config1())
    tl = TimelineRecorder()
    sched.run("C", "doall", 32, 10.0, preamble=2.0, postamble=2.0,
              timeline=tl, label="wl:do i@5")
    sched.doacross("C", 12, 15.0, 5.0, timeline=tl, label="wl:do j@9")
    return tl.loops


class TestGantt:
    def test_one_row_per_worker(self):
        loops = make_loops()
        out = render_gantt(loops)
        for rec in loops:
            assert out.count("CE ") >= rec.workers
        assert "wl:do i@5" in out and "wl:do j@9" in out

    def test_glyphs_present(self):
        out = render_gantt(make_loops())
        assert "#" in out          # chunk execution
        assert ">" in out          # startup on the scheduler track
        assert "util" in out and "imb" in out

    def test_width_respected(self):
        out = render_gantt(make_loops(), width=40)
        bars = [ln for ln in out.splitlines() if ln.strip().startswith("CE")]
        assert bars
        for ln in bars:
            bar = ln.split()[2]
            assert len(bar) == 40


class TestUtilization:
    def test_table_lists_each_loop(self):
        loops = make_loops()
        out = render_utilization(loops)
        assert out.count("wl:do") == len(loops)
        assert "all recorded loops" in out

    def test_empty(self):
        assert "no parallel loops" in render_utilization([])

    def test_report_combines_both(self):
        out = render_report(make_loops())
        assert "all recorded loops" in out and "CE " in out
