"""Profiling must be observationally pure.

With profiling disabled (the default), no code path may change: totals,
breakdowns, and the whole ``--json`` payload must be bit-identical to
what an instrumented-but-unprofiled run produces.  Exact float equality
throughout — approx is not good enough here.
"""

import io
import json
import sys

from repro.experiments import fig9_fusion, table1
from repro.experiments.common import profiled
from repro.experiments.__main__ import main


class TestBitIdentity:
    def test_profiled_run_totals_identical(self):
        plain = table1.run(quick=True)
        with profiled("table1"):
            prof = table1.run(quick=True)
        assert plain.rows == prof.rows
        for name, entry in plain.meta.get("trace", {}).items():
            other = prof.meta["trace"][name]
            assert entry["serial_cycles"] == other["serial_cycles"]
            assert entry["parallel_cycles"] == other["parallel_cycles"]
            assert entry["speedup"] == other["speedup"]
            assert entry.get("serial_breakdown") == \
                other.get("serial_breakdown")
            assert entry.get("parallel_breakdown") == \
                other.get("parallel_breakdown")

    def test_json_payload_identical_across_profiling(self, tmp_path):
        def run(argv):
            old, sys.stdout = sys.stdout, io.StringIO()
            try:
                assert main(argv) == 0
                return sys.stdout.getvalue()
            finally:
                sys.stdout = old

        plain = run(["fig9", "--quick", "--json"])
        profiled_out = run(["fig9", "--quick", "--json",
                            "--profile", str(tmp_path)])
        assert plain == profiled_out

    def test_table_without_profiling_has_no_session(self):
        """No ambient session may leak out of a profiled() block."""
        with profiled("fig9"):
            fig9_fusion.run(quick=True)
        from repro.experiments import common
        assert common._ACTIVE_SESSION is None
