"""Chrome trace-event export format checks and round-trip."""

import json

import pytest

from repro.machine.config import cedar_config1
from repro.machine.scheduler import LoopScheduler
from repro.prof.export import chrome_trace, write_chrome_trace
from repro.prof.session import ProfileSession, RunProfile, machine_constants
from repro.prof.timeline import TimelineRecorder
from repro.prof.counters import HwCounters


@pytest.fixture()
def session():
    cfg = cedar_config1()
    sched = LoopScheduler(cfg)
    s = ProfileSession("unittest")
    tl = TimelineRecorder()
    sched.run("C", "doall", 40, 8.0, preamble=2.0, postamble=2.0,
              timeline=tl, label="wl:do i@3")
    sched.doacross("S", 20, 12.0, 4.0, timeline=tl, label="wl:do j@9")
    s.runs.append(RunProfile(
        workload="wl", role="parallel", machine=machine_constants(cfg),
        total_cycles=tl.total_time(), counters=HwCounters(),
        memory_ledger={}, timeline=tl))
    return s


class TestChromeTraceFormat:
    def test_structure(self, session):
        doc = chrome_trace(session)
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        assert doc["displayTimeUnit"] in ("ms", "ns")
        for ev in doc["traceEvents"]:
            assert ev["ph"] in ("X", "M")
            assert isinstance(ev["pid"], int)
            if ev["ph"] == "X":
                assert isinstance(ev["name"], str)
                assert isinstance(ev["cat"], str)
                assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
                assert isinstance(ev["dur"], (int, float)) and ev["dur"] >= 0
                assert isinstance(ev["tid"], int) and ev["tid"] >= 0
            else:
                assert ev["name"] in ("process_name", "thread_name")
                assert "name" in ev["args"]

    def test_metadata_names_processes_and_threads(self, session):
        doc = chrome_trace(session)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name"
                   and e["args"]["name"] == "unittest/wl [parallel]"
                   for e in meta)
        thread_names = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert "scheduler" in thread_names
        assert any(n.startswith("CE ") for n in thread_names)

    def test_loop_envelopes_on_control_track(self, session):
        doc = chrome_trace(session)
        envs = [e for e in doc["traceEvents"]
                if e["ph"] == "X" and e["cat"] == "loop"]
        assert len(envs) == 2
        for e in envs:
            assert e["tid"] == 0
            assert {"workers", "busy_time", "utilization",
                    "imbalance"} <= set(e["args"])

    def test_json_serializable_and_loadable(self, session, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(session, path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_roundtrip_through_cli_loader(self, session):
        from repro.prof.__main__ import loops_from_trace

        doc = chrome_trace(session)
        loops = loops_from_trace(doc)
        assert len(loops) == 2
        originals = session.runs[0].timeline.loops
        for orig, back in zip(originals, loops):
            assert back.label == orig.label
            assert back.order == orig.order
            assert back.workers == orig.workers
            assert back.total == pytest.approx(orig.total)
            assert back.busy_span_sum() == pytest.approx(
                orig.busy_span_sum(), rel=1e-9)
