"""Acceptance: profile an entire Table 1 run and reconcile everything.

For every Table 1 routine, serial and restructured:

- the hardware counters × configured latencies equal the ledger's
  memory-side cycle categories to 1e-6 relative;
- every recorded loop's busy span durations sum to its ``busy_time``;
- profiling does not perturb the estimate (totals equal the unprofiled
  run exactly).
"""

import pytest

from repro.experiments import table1
from repro.experiments.common import profiled
from repro.prof.counters import reconcile
from repro.prof.session import _ConstView


@pytest.fixture(scope="module")
def profiled_table1():
    with profiled("table1") as session:
        table = table1.run(quick=True)
    return table, session


class TestTable1Reconciliation:
    def test_all_routines_profiled(self, profiled_table1):
        _, session = profiled_table1
        workloads = {r.workload for r in session.runs}
        # entry-point names may differ slightly from the table's routine
        # labels (e.g. sparse → sparsecg), but every routine must appear
        assert len(workloads) == len(table1.PAPER)
        for routine in table1.PAPER:
            assert any(routine in w or w in routine for w in workloads), \
                routine
        roles = {(r.workload, r.role) for r in session.runs}
        assert len(roles) == 2 * len(workloads)

    def test_counters_reconcile_with_ledger(self, profiled_table1):
        _, session = profiled_table1
        for run in session.runs:
            # reconcile() wants ledger-like / config-like attribute
            # access; the stored dicts serve via _ConstView
            cfg = _ConstView(run.machine)
            ledger = _ConstView(run.memory_ledger)
            report = reconcile(run.counters, ledger, cfg)
            bad = {k: v for k, v in report.items() if not v["ok"]}
            assert not bad, (run.workload, run.role, bad)

    def test_busy_spans_sum_to_busy_time(self, profiled_table1):
        _, session = profiled_table1
        n_loops = 0
        for run in session.runs:
            for rec in run.timeline:
                n_loops += 1
                assert rec.busy_span_sum() == pytest.approx(
                    rec.busy, rel=1e-9, abs=1e-9), (run.workload, rec.label)
                per = rec.worker_busy()
                assert sum(per) == pytest.approx(rec.busy, rel=1e-9,
                                                 abs=1e-9)
        # the parallel runs must actually contain parallel loops
        assert n_loops > 0

    def test_serial_runs_have_no_parallel_loops(self, profiled_table1):
        _, session = profiled_table1
        for run in session.runs:
            if run.role == "serial":
                assert len(run.timeline) == 0

    def test_profiling_does_not_perturb_totals(self, profiled_table1):
        table, _ = profiled_table1
        plain = table1.run(quick=True)
        assert [r for r in plain.rows] == [r for r in table.rows]

    def test_parallel_runs_count_loop_startups(self, profiled_table1):
        _, session = profiled_table1
        for run in session.runs:
            if run.role == "parallel" and len(run.timeline):
                assert run.counters.loop_startups > 0
                assert run.counters.chunks_dispatched > 0
