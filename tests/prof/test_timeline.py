"""Timeline span invariants across every scheduler path.

The load-bearing invariant: for every recorded loop, the sum of busy
span durations equals ``LoopTiming.busy_time`` exactly, and no span
leaks outside the loop's [0, total] window.
"""

import pytest

from repro.machine.config import cedar_config1, cedar_config2
from repro.machine.scheduler import LoopScheduler
from repro.prof.timeline import CONTROL_TRACK, TimelineRecorder


def record_one(fn):
    """Run one scheduler call against a fresh recorder, return (timing, rec)."""
    tl = TimelineRecorder()
    timing = fn(tl)
    assert len(tl) == 1
    return timing, tl.loops[0]


def check_invariants(timing, rec):
    assert rec.total == timing.total_time
    assert rec.busy == timing.busy_time
    assert rec.busy_span_sum() == pytest.approx(timing.busy_time, rel=1e-9)
    for s in rec.spans:
        assert s.start >= -1e-9 and s.end <= rec.total + 1e-9
        assert s.end >= s.start
    # per-worker spans must not overlap on a track
    by_worker = {}
    for s in rec.spans:
        by_worker.setdefault(s.worker, []).append(s)
    for spans in by_worker.values():
        spans.sort(key=lambda s: s.start)
        for a, b in zip(spans, spans[1:]):
            assert b.start >= a.end - 1e-9


class TestDoallSpans:
    @pytest.mark.parametrize("trips", [1, 3, 8, 17, 100, 1000])
    def test_homogeneous(self, trips):
        sched = LoopScheduler(cedar_config1())
        timing, rec = record_one(lambda tl: sched.run(
            "C", "doall", trips, 12.0, preamble=5.0, postamble=4.0,
            timeline=tl, label="t"))
        check_invariants(timing, rec)

    def test_coalescing_bounds_span_count(self):
        sched = LoopScheduler(cedar_config1())
        tl = TimelineRecorder(max_chunk_spans=16)
        sched.run("C", "doall", 1000, 3.0, timeline=tl, label="big")
        rec = tl.loops[0]
        # ≤ a handful of spans per worker, not one per chunk
        assert len(rec.spans) < 8 * rec.workers
        assert any(s.count > 1 for s in rec.spans)
        assert rec.busy_span_sum() == pytest.approx(rec.busy, rel=1e-9)

    def test_heterogeneous_simulation(self):
        sched = LoopScheduler(cedar_config2())
        costs = [float(3 + (i % 7)) for i in range(40)]
        timing, rec = record_one(lambda tl: sched.run(
            "S", "doall", len(costs), costs, preamble=2.0, postamble=2.0,
            timeline=tl, label="tri"))
        check_invariants(timing, rec)

    def test_heterogeneous_coalesced(self):
        sched = LoopScheduler(cedar_config2())
        costs = [float(1 + (i % 5)) for i in range(500)]
        tl = TimelineRecorder(max_chunk_spans=32)
        timing = sched.run("S", "doall", len(costs), costs, timeline=tl,
                           label="tri-big")
        rec = tl.loops[0]
        check_invariants(timing, rec)
        assert len(rec.spans) < 8 * rec.workers

    def test_zero_trips(self):
        sched = LoopScheduler(cedar_config1())
        timing, rec = record_one(lambda tl: sched.run(
            "C", "doall", 0, 1.0, timeline=tl, label="empty"))
        assert timing.busy_time == 0.0
        assert rec.busy_span_sum() == 0.0
        assert all(s.worker == CONTROL_TRACK for s in rec.spans)


class TestDoacrossSpans:
    @pytest.mark.parametrize("trips", [1, 4, 9, 64, 300])
    def test_busy_sum(self, trips):
        sched = LoopScheduler(cedar_config1())
        timing, rec = record_one(lambda tl: sched.doacross(
            "C", trips, 20.0, 6.0, preamble=3.0, postamble=3.0,
            timeline=tl, label="dx"))
        check_invariants(timing, rec)

    def test_run_doacross_path(self):
        sched = LoopScheduler(cedar_config1())
        timing, rec = record_one(lambda tl: sched.run(
            "S", "doacross", 25, 15.0, timeline=tl, label="dx2"))
        check_invariants(timing, rec)
        assert rec.order == "doacross"


class TestRecorder:
    def test_sequential_clock(self):
        sched = LoopScheduler(cedar_config1())
        tl = TimelineRecorder()
        t1 = sched.run("C", "doall", 10, 5.0, timeline=tl, label="a")
        t2 = sched.run("C", "doall", 20, 5.0, timeline=tl, label="b")
        assert tl.loops[0].base == 0.0
        assert tl.loops[1].base == t1.total_time
        assert tl.total_time() == t1.total_time + t2.total_time

    def test_no_timeline_means_no_spans(self):
        """The default path must not build spans at all (and timings must
        match the profiled path exactly)."""
        sched = LoopScheduler(cedar_config1())
        plain = sched.run("C", "doall", 33, 7.0, preamble=1.0)
        tl = TimelineRecorder()
        profiled = sched.run("C", "doall", 33, 7.0, preamble=1.0,
                             timeline=tl, label="x")
        assert plain == profiled

    def test_metrics(self):
        sched = LoopScheduler(cedar_config1())
        tl = TimelineRecorder()
        sched.run("C", "doall", 64, 10.0, timeline=tl, label="m")
        rec = tl.loops[0]
        assert 0.0 <= rec.utilization() <= 1.0
        assert 0.0 <= rec.imbalance() <= 1.0
        per = rec.worker_busy()
        assert len(per) == rec.workers
        assert sum(per) == pytest.approx(rec.busy, rel=1e-9)
