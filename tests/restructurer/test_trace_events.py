"""Decision-trace tests: the restructurer must explain itself.

Every loop the planner leaves serial must carry at least one rejection
event with a human-readable reason (the paper's §4.1 "why didn't it
parallelize" methodology), pass-level transformations must log what they
did, and the report summary must disambiguate same-named loops by source
line.
"""

from repro.api import restructure, restructure_source
from repro.fortran.parser import parse_program
from repro.restructurer.options import RestructurerOptions
from repro.trace import TraceRecorder

RECURRENCE = """      subroutine rec(a, b, n)
      integer n
      real a(100), b(100)
      do 10 i = 1, n
         a(i) = b(i) * 2.0
 10   continue
      do 20 i = 2, n
         b(i) = b(i-1) * 0.5 + a(i)
 20   continue
      return
      end
"""

PRIV = """      subroutine pv(a, b, n)
      integer n
      real a(100), b(100)
      real t
      do 10 i = 1, n
         t = b(i) * 2.0
         a(i) = t + 1.0
 10   continue
      return
      end
"""

REDUCTION = """      subroutine rd(a, n, s)
      integer n
      real a(100), s
      s = 0.0
      do 10 i = 1, n
         a(i) = a(i) * 1.5
         s = s + a(i)
 10   continue
      return
      end
"""

FUSABLE = """      subroutine fu(a, b, c, n)
      integer n
      real a(100), b(100), c(100)
      do 10 i = 1, n
         a(i) = b(i) + 1.0
 10   continue
      do 20 j = 1, n
         c(j) = a(j) * 2.0
 20   continue
      return
      end
"""

CALLS = """      subroutine outer(a, n)
      integer n
      real a(100)
      call work(a, n)
      return
      end
      subroutine work(x, m)
      integer m
      real x(100)
      do 10 i = 1, m
         x(i) = x(i) + 1.0
 10   continue
      return
      end
"""


def _events(source, options=None):
    _, report = restructure_source(source, options)
    return report


class TestPlannerEvents:
    def test_serial_loop_has_rejection_with_reason(self):
        report = _events(RECURRENCE)
        serial = [p for u in report.units.values() for p in u.plans
                  if p.chosen == "serial"]
        assert serial, "recurrence loop should stay serial"
        for p in serial:
            rej = [e for e in report.rejections()
                   if e.loop == f"do {p.original.var}" and e.line == p.line]
            assert rej, f"no rejection recorded for {p.loop_id}"
            assert any(e.reason for e in rej)

    def test_carried_dependence_is_named(self):
        report = _events(RECURRENCE)
        xdoall_rej = [e for e in report.events
                      if e.technique == "xdoall" and e.action == "rejected"]
        assert any("b" in e.reason for e in xdoall_rej)

    def test_winner_carries_predicted_cost(self):
        report = _events(RECURRENCE)
        acc = [e for e in report.events
               if e.action == "accepted" and e.kind == "plan"
               and e.predicted_cycles is not None]
        assert acc

    def test_losers_compare_against_winner(self):
        report = _events(PRIV)
        rej = [e for e in report.events
               if e.action == "rejected" and "cycles vs" in e.reason]
        assert rej


class TestPassEvents:
    def test_privatization_logged(self):
        report = _events(PRIV)
        priv = [e for e in report.events if e.technique == "privatize"]
        assert any(e.action == "applied" and "t:" in e.reason for e in priv)

    def test_reduction_logged(self):
        report = _events(REDUCTION)
        red = [e for e in report.events if e.technique == "reduction"]
        assert any(e.action == "applied" and "s:" in e.reason for e in red)

    def test_fusion_logged_with_both_loops(self):
        opts = RestructurerOptions.manual()
        report = _events(FUSABLE, opts)
        fus = [e for e in report.events if e.technique == "fusion"
               and e.action == "applied"]
        assert fus
        assert any("do j" in e.reason for e in fus)

    def test_inline_logged(self):
        opts = RestructurerOptions.manual()
        report = _events(CALLS, opts)
        inl = [e for e in report.events if e.technique == "inline"]
        assert any(e.action == "applied" and e.loop == "call work"
                   for e in inl)

    def test_globalize_logged_with_reason(self):
        report = _events(PRIV)
        glob = [e for e in report.events if e.technique == "globalize"]
        assert glob
        assert all(e.reason for e in glob)


class TestReportPlumbing:
    def test_summary_disambiguates_by_line(self):
        report = _events(RECURRENCE)
        text = report.summary()
        assert "do i @ line 4" in text
        assert "do i @ line 7" in text

    def test_user_sink_sees_live_events(self):
        rec = TraceRecorder()
        sf = parse_program(RECURRENCE)
        _, report = restructure(sf, trace=rec)
        assert len(rec) == len(report.events) > 0
        assert rec.events == report.events

    def test_events_for_unit_filter(self):
        report = _events(CALLS, RestructurerOptions.manual())
        assert report.events_for("outer")
        assert all(e.unit == "outer" for e in report.events_for("outer"))

    def test_to_dict_is_json_ready(self):
        import json

        report = _events(REDUCTION)
        d = report.to_dict()
        json.dumps(d)
        assert "decisions" in d and d["units"]["rd"]["plans"]

    def test_nestplan_to_dict_carries_line(self):
        report = _events(RECURRENCE)
        plans = report.units["rec"].plans
        assert all(p.to_dict()["line"] == p.line for p in plans)
        assert {p.line for p in plans} == {4, 7}
