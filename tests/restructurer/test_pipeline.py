"""End-to-end restructurer pipeline tests."""

import numpy as np
import pytest

from repro.api import restructure, restructure_source
from repro.cedar.nodes import ClusterDecl, GlobalDecl, ParallelDo
from repro.execmodel.interp import Interpreter
from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program
from repro.restructurer.options import RestructurerOptions
from repro.workloads.synthetic import ALL_SOURCES


class TestPaperExamples:
    def test_section_3_2_stripmining(self):
        """The paper's a(i)=b(i) loop becomes GLOBAL + XDOALL + sections."""
        text, rep = restructure_source("""
      subroutine copy(n, a, b)
      integer n
      real a(n), b(n)
      integer i
      do i = 1, n
         a(i) = b(i)
      end do
      end
""")
        assert "global" in text
        assert "xdoall i = 1, n, 32" in text
        assert "min(32, n - i + 1)" in text
        assert "a(i:upper) = b(i:upper)" in text

    def test_section_3_2_privatization_expansion(self):
        """The paper's sqrt(t) example: t expands to t(strip) loop-local."""
        text, _ = restructure_source("""
      subroutine sq(n, a, b)
      integer n
      real a(n), b(n)
      real t
      integer i
      do i = 1, n
         t = b(i)
         a(i) = sqrt(t)
      end do
      end
""")
        assert "real t(32)" in text
        assert "t(1:i3) = b(i:upper)" in text
        assert "sqrt(t(1:i3))" in text

    def test_figure_4_cascade_synchronization(self):
        """The Figure 4 loop becomes a DOACROSS with await/advance around
        the recurrence statement only."""
        text, rep = restructure_source(ALL_SOURCES["casc"])
        assert "cdoacross" in text
        assert text.index("call await(1, 1)") < text.index("b(i) = a(i) + b(i - 1)")
        assert text.index("b(i) = a(i) + b(i - 1)") < text.index("call advance(1)")
        # the independent statements stay outside the synchronized region
        assert text.index("c(i) = d(i) + e(i)") < text.index("call await")


class TestGlobalization:
    def test_global_for_cross_cluster_loops(self):
        sf, _ = restructure(parse_program(ALL_SOURCES["saxpy"]))
        unit = sf.units[0]
        globals_ = [s for s in unit.specs if isinstance(s, GlobalDecl)]
        assert globals_
        assert set(globals_[0].names) >= {"x", "y", "a", "n"}

    def test_cluster_default_when_serial(self):
        sf, _ = restructure(parse_program(ALL_SOURCES["tgiv"]))
        unit = sf.units[0]
        clusters = [s for s in unit.specs if isinstance(s, ClusterDecl)]
        globals_ = [s for s in unit.specs if isinstance(s, GlobalDecl)]
        assert clusters or globals_


class TestOptionGates:
    def test_no_stripmining_option(self):
        from dataclasses import replace

        opts = replace(RestructurerOptions.automatic(), stripmining=False)
        text, _ = restructure_source(ALL_SOURCES["saxpy"], opts)
        assert ":upper" not in text  # no vector sections

    def test_no_doacross_option(self):
        from dataclasses import replace

        opts = replace(RestructurerOptions.automatic(), doacross=False)
        text, _ = restructure_source(ALL_SOURCES["casc"], opts)
        assert "cdoacross" not in text

    def test_max_versions_cap(self):
        from dataclasses import replace

        opts = replace(RestructurerOptions.automatic(), max_versions=1)
        _, rep = restructure(parse_program(ALL_SOURCES["saxpy"]), opts)
        for u in rep.units.values():
            for p in u.plans:
                assert len(p.considered) <= 1

    def test_aggressive_superset(self):
        a = RestructurerOptions.automatic()
        m = RestructurerOptions.manual()
        assert not a.array_privatization and m.array_privatization
        assert not a.generalized_induction and m.generalized_induction
        assert not a.runtime_dependence_test and m.runtime_dependence_test


class TestReport:
    def test_summary_mentions_loops(self):
        _, rep = restructure(parse_program(ALL_SOURCES["saxpy"]))
        s = rep.summary()
        assert "saxpy" in s and "1/1" in s

    def test_plans_have_considered_versions(self):
        _, rep = restructure(parse_program(ALL_SOURCES["saxpy"]))
        plan = rep.units["saxpy"].plans[0]
        labels = [l for l, _ in plan.considered]
        assert "serial" in labels
        assert any(l.startswith("xdoall") for l in labels)


class TestSemanticsPreservation:
    """Every synthetic kernel: restructured result == serial result."""

    @pytest.mark.parametrize("name", sorted(ALL_SOURCES))
    @pytest.mark.parametrize("mode", ["auto", "manual"])
    def test_equivalence(self, name, mode):
        src = ALL_SOURCES[name]
        opts = (RestructurerOptions.automatic() if mode == "auto"
                else RestructurerOptions.manual())
        sf0 = parse_program(src)
        sf1, _ = restructure(parse_program(src), opts)
        unit = sf0.units[0]
        rng = np.random.default_rng(13)
        args0 = self._make_args(unit, rng)
        args1 = [a.copy() if isinstance(a, np.ndarray) else a for a in args0]
        r0 = Interpreter(sf0, processors=1).call(unit.name, *args0)
        r1 = Interpreter(sf1, processors=4).call(unit.name, *args1)
        for k in r0:
            assert np.allclose(np.asarray(r0[k], float),
                               np.asarray(r1[k], float),
                               atol=1e-5), (name, mode, k)

    @staticmethod
    def _make_args(unit, rng):
        """Build arguments from the declared dummy shapes (n fixed 12)."""
        from repro.fortran.symtab import build_symbol_table

        st = build_symbol_table(unit)
        n = 12
        args = []
        for d in unit.args:
            sym = st.lookup(d)
            if sym is not None and sym.is_array:
                if sym.rank == 2:
                    args.append(np.abs(rng.standard_normal((n, n))) + 0.1)
                else:
                    size = n * (n + 1) // 2 if unit.name == "tgiv" else n
                    args.append(np.abs(rng.standard_normal(size)) + 0.1)
            elif sym is not None and sym.type == "integer":
                args.append(n)
            else:
                args.append(float(rng.standard_normal()))
        return args
