"""Induction substitution and two-version loop tests (via the interpreter,
so the transformed code is checked for real)."""

import numpy as np
import pytest

from repro.analysis.induction import find_induction_variables
from repro.api import restructure
from repro.execmodel.interp import Interpreter
from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program
from repro.fortran.symtab import build_symbol_table
from repro.restructurer.induction_sub import substitute_inductions
from repro.restructurer.names import NamePool
from repro.restructurer.options import RestructurerOptions


def loop_of(sf):
    u = sf.units[0]
    build_symbol_table(u)
    return next(s for s in u.body if isinstance(s, F.DoLoop)), u


class TestInductionSubstitution:
    BASIC = """
      subroutine s(n, a, k)
      integer n, k
      real a(2 * n)
      integer i
      do i = 1, n
         k = k + 2
         a(k) = real(i)
      end do
      end
"""

    def test_basic_iv_substituted_and_final_value(self):
        sf = parse_program(self.BASIC)
        loop, unit = loop_of(sf)
        ivs = find_induction_variables(loop)
        out = substitute_inductions(loop, ivs, NamePool(unit))
        assert out.substituted == ["k"]
        # the update statement is gone
        assert not any(
            isinstance(s, F.Assign) and isinstance(s.target, F.Var)
            and s.target.name == "k" for s in loop.body)
        # splice before/after and run: results must match the original
        unit.body = out.before_loop + [loop] + out.after_loop
        n = 8
        a0 = np.zeros(2 * n)
        r0 = Interpreter(parse_program(self.BASIC)).call("s", n, a0, 0)
        a1 = np.zeros(2 * n)
        r1 = Interpreter(sf).call("s", n, a1, 0)
        assert np.allclose(a0, a1)
        assert r0["k"] == r1["k"] == 2 * n

    TRIANGULAR = """
      subroutine s(n, a, k)
      integer n, k
      real a(n * (n + 1) / 2)
      integer i, j
      k = 0
      do i = 1, n
         do j = 1, i
            k = k + 1
            a(k) = real(i) + 0.25 * real(j)
         end do
      end do
      end
"""

    def test_triangular_giv_full_pipeline(self):
        opts = RestructurerOptions.manual()
        cedar, rep = restructure(parse_program(self.TRIANGULAR), opts)
        n = 9
        tri = n * (n + 1) // 2
        a0 = np.zeros(tri)
        r0 = Interpreter(parse_program(self.TRIANGULAR)).call("s", n, a0, 0)
        a1 = np.zeros(tri)
        r1 = Interpreter(cedar, processors=4).call("s", n, a1, 0)
        assert np.allclose(a0, a1)
        assert r0["k"] == r1["k"] == tri
        # and the loop actually went parallel under the GIV treatment
        plans = [p.chosen for u in rep.units.values() for p in u.plans]
        assert any(c != "serial" for c in plans)

    def test_read_before_update_declined(self):
        src = """
      subroutine s(n, a, k)
      integer n, k
      real a(n)
      integer i
      do i = 1, n
         a(i) = real(k)
         k = k + 1
      end do
      end
"""
        sf = parse_program(src)
        loop, unit = loop_of(sf)
        ivs = find_induction_variables(loop)
        out = substitute_inductions(loop, ivs, NamePool(unit))
        assert "k" in out.skipped


class TestTwoVersionLoops:
    SRC = """
      subroutine s(ni, nj, lda, w, d)
      integer ni, nj, lda
      real w(*), d(ni)
      integer i, j
      do j = 1, nj
         do i = 1, ni
            w(i + lda * (j - 1)) = w(i + lda * (j - 1)) * 0.5 + d(i)
         end do
      end do
      end
"""

    def _both(self, lda, ni=6, nj=5):
        cedar, rep = restructure(parse_program(self.SRC),
                                 RestructurerOptions.manual())
        plans = [p.chosen for u in rep.units.values() for p in u.plans]
        assert "runtime-two-version" in plans
        rng = np.random.default_rng(1)
        w0 = rng.standard_normal(lda * nj + ni)
        d = rng.standard_normal(ni)
        w1 = w0.copy()
        Interpreter(parse_program(self.SRC)).call("s", ni, nj, lda,
                                                  w0, d.copy())
        Interpreter(cedar, processors=4).call("s", ni, nj, lda, w1, d.copy())
        return w0, w1

    def test_disjoint_rows_take_parallel_arm(self):
        w0, w1 = self._both(lda=6)  # lda == ni: rows exactly adjacent
        assert np.allclose(w0, w1)

    def test_aliasing_rows_take_serial_arm(self):
        """lda < ni makes rows overlap — the predicate must fail and the
        serial version must run, still giving identical results."""
        w0, w1 = self._both(lda=3)
        assert np.allclose(w0, w1)
