"""Interprocedural analysis feeding the planner (§4.1.1 end to end)."""

import numpy as np

from repro.api import restructure
from repro.execmodel.interp import Interpreter
from repro.fortran.parser import parse_program
from repro.restructurer.options import RestructurerOptions

CALL_IN_LOOP = """
      subroutine work(xin, yout)
      real xin, yout
      yout = xin * 2.0 + 1.0
      end

      subroutine driver(n, a, b)
      integer n
      real a(n), b(n)
      integer i
      do i = 1, n
         call work(a(i), b(i))
      end do
      end
"""


class TestInliningUnlocksLoops:
    def test_auto_keeps_call_loop_serial(self):
        _, rep = restructure(parse_program(CALL_IN_LOOP),
                             RestructurerOptions.automatic())
        plan = rep.units["driver"].plans[0]
        assert plan.chosen == "serial"

    def test_manual_inlines_and_parallelizes(self):
        cedar, rep = restructure(parse_program(CALL_IN_LOOP),
                                 RestructurerOptions.manual())
        assert rep.units["driver"].inlined_calls == 1
        plan = rep.units["driver"].plans[0]
        assert plan.chosen != "serial"

    def test_inlined_version_equivalent(self):
        cedar, _ = restructure(parse_program(CALL_IN_LOOP),
                               RestructurerOptions.manual())
        n = 10
        a = np.arange(1.0, n + 1.0)
        b0, b1 = np.zeros(n), np.zeros(n)
        Interpreter(parse_program(CALL_IN_LOOP)).call("driver", n,
                                                      a.copy(), b0)
        Interpreter(cedar, processors=4).call("driver", n, a.copy(), b1)
        assert np.allclose(b0, b1)
        assert np.allclose(b0, a * 2.0 + 1.0)


class TestConstantPropagationSizes:
    SRC = """
      program main
      parameter (n = 64)
      real a(n), b(n)
      call fill(a, b, n)
      end

      subroutine fill(a, b, m)
      integer m
      real a(m), b(m)
      integer i
      do i = 1, m
         a(i) = b(i) * 2.0
      end do
      end
"""

    def test_entry_constant_resolved(self):
        from repro.analysis.interproc import propagate_constants

        sf = parse_program(self.SRC)
        assert propagate_constants(sf, "fill", ["m"]) == {"m": 64}


class TestSummariesRestrictCallEffects:
    SRC = """
      subroutine reader(xin, acc)
      real xin, acc
      acc = acc + xin
      end

      subroutine driver(n, a, total)
      integer n
      real a(n), total
      integer i
      do i = 1, n
         call reader(a(i), total)
      end do
      end
"""

    def test_summaries_expose_read_only_argument(self):
        """With MOD/REF summaries, 'a' is known read-only at the call —
        the conservative both-ways dependence on it disappears."""
        from repro.analysis.depend import build_dependence_graph
        from repro.analysis.interproc import summarize_source_file
        from repro.analysis.interproc.summaries import effects_oracle
        from repro.fortran import ast_nodes as F
        from repro.fortran.symtab import build_symbol_table

        sf = parse_program(self.SRC)
        driver = sf.unit("driver")
        build_symbol_table(driver)
        loop = next(s for s in driver.body if isinstance(s, F.DoLoop))
        oracle = effects_oracle(summarize_source_file(sf))
        g = build_dependence_graph(loop, effects=oracle)
        carried = {d.variable for d in g.carried_at(0)}
        assert "a" not in carried      # read-only via the summary
        assert "total" in carried      # genuinely modified every call
