"""Tests for the globalization pass (§3.2)."""

from dataclasses import replace

from repro.api import restructure
from repro.cedar.nodes import ClusterDecl, GlobalDecl, ParallelDo
from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program
from repro.fortran.symtab import build_symbol_table
from repro.restructurer.globalize import globalize_unit
from repro.restructurer.options import RestructurerOptions


def _decls(unit, cls):
    return [s for s in unit.specs if isinstance(s, cls)]


class TestGlobalize:
    def test_xdoall_data_becomes_global(self):
        sf = parse_program("""
      subroutine s(n, a, b)
      integer n
      real a(n), b(n)
      end
""")
        unit = sf.units[0]
        unit.body = [ParallelDo(
            level="X", order="doall", var="i",
            start=F.IntLit(1), end=F.Var("n"),
            body=[F.Assign(target=F.ArrayRef("a", [F.Var("i")]),
                           value=F.ArrayRef("b", [F.Var("i")]))])]
        st = build_symbol_table(unit)
        result = globalize_unit(unit, st)
        assert {"a", "b", "n"} <= set(result.global_names)
        assert _decls(unit, GlobalDecl)

    def test_cdoall_data_stays_cluster(self):
        """Cluster-level loops need no global visibility."""
        sf = parse_program("""
      subroutine s(n, a, b)
      integer n
      real a(n), b(n)
      end
""")
        unit = sf.units[0]
        unit.body = [ParallelDo(
            level="C", order="doall", var="i",
            start=F.IntLit(1), end=F.Var("n"),
            body=[F.Assign(target=F.ArrayRef("a", [F.Var("i")]),
                           value=F.ArrayRef("b", [F.Var("i")]))])]
        st = build_symbol_table(unit)
        result = globalize_unit(unit, st)
        assert "a" in result.cluster_names
        assert "a" not in result.global_names

    def test_loop_locals_not_globalized(self):
        sf = parse_program("""
      subroutine s(n, a)
      integer n
      real a(n)
      end
""")
        unit = sf.units[0]
        unit.body = [ParallelDo(
            level="X", order="doall", var="i",
            start=F.IntLit(1), end=F.Var("n"),
            locals_=[F.TypeDecl(type=F.TypeSpec("real"),
                                entities=[F.EntityDecl("t")])],
            body=[F.Assign(target=F.Var("t"),
                           value=F.ArrayRef("a", [F.Var("i")])),
                  F.Assign(target=F.ArrayRef("a", [F.Var("i")]),
                           value=F.Var("t"))])]
        st = build_symbol_table(unit)
        result = globalize_unit(unit, st)
        assert "t" not in result.global_names

    def test_interface_data_default_placement(self):
        """COMMON/dummy data with no cross-cluster use follows the
        user-settable default (§3.2)."""
        src = """
      subroutine s(x)
      real x
      common /blk/ c
      x = c
      end
"""
        sf = parse_program(src)
        unit = sf.units[0]
        st = build_symbol_table(unit)
        res_cluster = globalize_unit(unit, st, default_placement="cluster")
        assert "c" in res_cluster.cluster_names

        sf2 = parse_program(src)
        unit2 = sf2.units[0]
        st2 = build_symbol_table(unit2)
        res_global = globalize_unit(unit2, st2, default_placement="global")
        assert "c" in res_global.global_names

    def test_placement_annotated_on_symbols(self):
        sf, rep = restructure(parse_program("""
      subroutine s(n, a, b)
      integer n
      real a(n), b(n)
      integer i
      do i = 1, n
         a(i) = b(i)
      end do
      end
"""))
        placement = rep.units["s"].placement
        assert placement is not None
        assert placement.placement_of("a") == "global"

    def test_default_placement_option_flows_through(self):
        opts = replace(RestructurerOptions.automatic(),
                       default_placement="global")
        sf, rep = restructure(parse_program("""
      subroutine s(x)
      real x
      common /blk/ c
      x = c
      end
"""), opts)
        assert rep.units["s"].placement.placement_of("c") == "global"
