"""Property-based transformation-correctness tests.

Random small loop nests are generated as Fortran source, pushed through
the full restructuring pipeline in both configurations, and interpreted
against the serial original on random data — the restructurer must never
change program results.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import restructure
from repro.execmodel.interp import Interpreter
from repro.fortran.parser import parse_program
from repro.restructurer.options import RestructurerOptions

N = 10  # runtime array extent

#: statement templates over arrays a, b, c (1-D length n), scalars s, t
BODY_TEMPLATES = [
    "a(i) = b(i) + c(i)",
    "a(i) = b(i) * 2.0 + 1.0",
    "t = b(i)\n a(i) = t * t",
    "a(i) = sqrt(abs(b(i)) + 1.0)",
    "s = s + b(i)",
    "s = s + a(i) * b(i)",
    "a(i) = a(i) + b(i)",
    "if (b(i) .gt. 0.0) a(i) = b(i)",
    "a(i) = b(i - 1) + c(i)",
    "a(i) = a(i - 1) + b(i)",
    "c(i) = c(i) + a(i)\n c(i) = c(i) + b(i)",
    "t = b(i) + c(i)\n a(i) = t\n s = s + t",
]


def build_source(picks: list[int], lo: int, hi: int) -> str:
    body_lines = []
    for p in picks:
        for line in BODY_TEMPLATES[p].split("\n"):
            body_lines.append("         " + line.strip())
    body = "\n".join(body_lines)
    return f"""
      subroutine k(n, a, b, c, s)
      integer n
      real a(n), b(n), c(n), s
      real t
      integer i
      do i = {lo}, n - {hi}
{body}
      end do
      end
"""


def run_both(src: str, opts) -> tuple[dict, dict]:
    rng = np.random.default_rng(99)
    a = rng.standard_normal(N)
    b = rng.standard_normal(N)
    c = rng.standard_normal(N)
    args0 = (N, a.copy(), b.copy(), c.copy(), 0.5)
    args1 = (N, a.copy(), b.copy(), c.copy(), 0.5)
    serial = Interpreter(parse_program(src), processors=1).call("k", *args0)
    cedar, _ = restructure(parse_program(src), opts)
    parallel = Interpreter(cedar, processors=3).call("k", *args1)
    return serial, parallel


@settings(max_examples=60, deadline=None)
@given(
    picks=st.lists(st.integers(0, len(BODY_TEMPLATES) - 1),
                   min_size=1, max_size=3),
    lo=st.integers(2, 3),
    hi=st.integers(1, 2),
)
def test_automatic_restructuring_preserves_semantics(picks, lo, hi):
    src = build_source(picks, lo, hi)
    serial, parallel = run_both(src, RestructurerOptions.automatic())
    for key in serial:
        assert np.allclose(np.asarray(serial[key], float),
                           np.asarray(parallel[key], float),
                           atol=1e-5), (key, src)


@settings(max_examples=60, deadline=None)
@given(
    picks=st.lists(st.integers(0, len(BODY_TEMPLATES) - 1),
                   min_size=1, max_size=3),
    lo=st.integers(2, 3),
    hi=st.integers(1, 2),
)
def test_aggressive_restructuring_preserves_semantics(picks, lo, hi):
    src = build_source(picks, lo, hi)
    serial, parallel = run_both(src, RestructurerOptions.manual())
    for key in serial:
        assert np.allclose(np.asarray(serial[key], float),
                           np.asarray(parallel[key], float),
                           atol=1e-5), (key, src)


NEST_TEMPLATES = [
    "w(j) = u(i, j) * 2.0",
    "u(i, j) = u(i, j) + 1.0",
    "v(i, j) = u(i, j) * 0.5",
    "s = s + u(i, j)",
    "w(j) = u(i, j)\n v(i, j) = w(j) + 1.0",
]


def build_nest_source(picks: list[int]) -> str:
    body_lines = []
    for p in picks:
        for line in NEST_TEMPLATES[p].split("\n"):
            body_lines.append("            " + line.strip())
    body = "\n".join(body_lines)
    return f"""
      subroutine k(n, u, v, s)
      integer n
      real u(n, n), v(n, n), s
      real w(64)
      integer i, j
      do i = 1, n
         do j = 1, n
{body}
         end do
      end do
      end
"""


@settings(max_examples=40, deadline=None)
@given(picks=st.lists(st.integers(0, len(NEST_TEMPLATES) - 1),
                      min_size=1, max_size=2))
@pytest.mark.parametrize("mode", ["auto", "manual"])
def test_nest_restructuring_preserves_semantics(mode, picks):
    src = build_nest_source(picks)
    opts = (RestructurerOptions.automatic() if mode == "auto"
            else RestructurerOptions.manual())
    rng = np.random.default_rng(7)
    u = np.asfortranarray(rng.standard_normal((8, 8)))
    v = np.zeros((8, 8), order="F")
    a0 = (8, u.copy(order="F"), v.copy(order="F"), 0.25)
    a1 = (8, u.copy(order="F"), v.copy(order="F"), 0.25)
    serial = Interpreter(parse_program(src), processors=1).call("k", *a0)
    cedar, _ = restructure(parse_program(src), opts)
    parallel = Interpreter(cedar, processors=3).call("k", *a1)
    for key in serial:
        assert np.allclose(np.asarray(serial[key], float),
                           np.asarray(parallel[key], float),
                           atol=1e-5), (key, src)
