"""Tests for the restructurer-side cost model (§3.3-§3.4)."""

import pytest

from repro.fortran.parser import parse_program
from repro.fortran import ast_nodes as F
from repro.restructurer.costmodel import (
    CostModel,
    estimate_body_ops,
    trip_count,
)


def body_of(src):
    sf = parse_program(src)
    return sf.units[0].body


class TestEstimates:
    def test_trip_count_constant(self):
        (loop,) = body_of("""
      subroutine s(a)
      real a(100)
      integer i
      do i = 3, 100, 2
         a(i) = 0.0
      end do
      end
""")
        assert trip_count(loop) == 49

    def test_trip_count_symbolic_default(self):
        (loop,) = body_of("""
      subroutine s(n, a)
      integer n
      real a(n)
      integer i
      do i = 1, n
         a(i) = 0.0
      end do
      end
""")
        assert trip_count(loop, default_trip=777) == 777

    def test_body_ops_scale_with_statements(self):
        one = body_of("""
      subroutine s(a, b)
      real a, b
      a = b + 1.0
      end
""")
        three = body_of("""
      subroutine s(a, b)
      real a, b
      a = b + 1.0
      b = a * 2.0
      a = a / b
      end
""")
        assert estimate_body_ops(three) > estimate_body_ops(one) * 2

    def test_divide_costs_more(self):
        add = body_of("""
      subroutine s(a, b)
      real a, b
      a = b + b
      end
""")
        div = body_of("""
      subroutine s(a, b)
      real a, b
      a = b / b
      end
""")
        assert estimate_body_ops(div) > estimate_body_ops(add)


class TestVersionScoring:
    def setup_method(self):
        self.cm = CostModel(clusters=4, processors_per_cluster=8)

    def test_serial_beats_parallel_for_tiny_loops(self):
        assert self.cm.serial(10, 5.0) \
            < self.cm.parallel("xdoall", 10, 5.0, 32)

    def test_parallel_wins_at_scale(self):
        assert self.cm.parallel("xdoall", 100000, 20.0, 32) \
            < self.cm.serial(100000, 20.0)

    def test_cdoall_cheaper_to_start(self):
        c = self.cm.parallel("cdoall", 64, 10.0, 8)
        x = self.cm.parallel("xdoall", 64, 10.0, 32)
        assert c < x

    def test_doacross_delay_factor(self):
        """§3.3: the benefit shrinks with the synchronized fraction."""
        small = self.cm.doacross("cdoacross", 1000, 100.0, 5.0, 8)
        large = self.cm.doacross("cdoacross", 1000, 100.0, 80.0, 8)
        assert small < large

    def test_doacross_serial_chain_floor(self):
        t = self.cm.doacross("cdoacross", 1000, 100.0, 100.0, 8)
        assert t >= 1000 * 100.0  # fully serialized region bounds it

    def test_processors_for_levels(self):
        assert self.cm.processors_for("cdoall") == 8
        assert self.cm.processors_for("sdoall") == 4
        assert self.cm.processors_for("xdoall") == 32
        assert self.cm.processors_for("serial") == 1

    def test_vectorization_discount(self):
        assert self.cm.vectorized(10000, 10.0) < self.cm.serial(10000, 10.0)
