"""Unit tests for DOACROSS planning and unordered critical sections."""

import pytest

from repro.analysis.depend import build_dependence_graph
from repro.cedar.nodes import AdvanceStmt, AwaitStmt, LockStmt, UnlockStmt
from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program
from repro.fortran.symtab import build_symbol_table
from repro.restructurer.criticals import (
    build_critical_loop,
    plan_critical_section,
)
from repro.restructurer.doacross import build_doacross, plan_doacross


def get_loop(src):
    sf = parse_program(src)
    u = sf.units[0]
    build_symbol_table(u)
    loop = next(s for s in u.body if isinstance(s, F.DoLoop))
    return loop, build_dependence_graph(loop)


class TestDoacross:
    CASCADE = """
      subroutine s(n, a, b, c, d)
      integer n
      real a(n), b(n), c(n), d(n)
      integer i
      do i = 2, n
         c(i) = d(i) * 2.0
         b(i) = a(i) + b(i - 1)
         d(i) = c(i) + 1.0
      end do
      end
"""

    def test_plan_finds_minimal_region(self):
        loop, g = get_loop(self.CASCADE)
        plan = plan_doacross(loop, g)
        assert plan is not None
        # only the b-recurrence statement is synchronized
        assert plan.first == plan.last == 1
        assert plan.distance == 1

    def test_delay_factor(self):
        loop, g = get_loop(self.CASCADE)
        plan = plan_doacross(loop, g)
        # region is roughly a third of the body; per §3.3 divided by procs
        f8 = plan.delay_factor(8)
        f32 = plan.delay_factor(32)
        assert 0 < f32 < f8 < 1

    def test_build_brackets_region(self):
        loop, g = get_loop(self.CASCADE)
        plan = plan_doacross(loop, g)
        pdo = build_doacross(plan, level="C")
        kinds = [type(s).__name__ for s in pdo.body]
        ai = kinds.index("AwaitStmt")
        vi = kinds.index("AdvanceStmt")
        assert ai < vi
        assert pdo.order == "doacross"

    def test_parallel_loop_needs_no_plan(self):
        loop, g = get_loop("""
      subroutine s(n, a, b)
      integer n
      real a(n), b(n)
      integer i
      do i = 1, n
         a(i) = b(i)
      end do
      end
""")
        assert plan_doacross(loop, g) is None

    def test_unknown_distance_declines(self):
        loop, g = get_loop("""
      subroutine s(n, k, a)
      integer n, k
      real a(n)
      integer i
      do i = 1, n
         a(i) = a(i - k) + 1.0
      end do
      end
""")
        assert plan_doacross(loop, g) is None


class TestCriticalSections:
    HITS = """
      subroutine s(n, x, y, thresh, hits, nhit)
      integer n, nhit
      real x(n), y(n), thresh
      integer hits(n)
      real d
      integer i, k
      do i = 1, n
         d = 0.0
         do k = 1, 50
            d = d + x(i) * 0.01 * k
         end do
         y(i) = d
         if (d .gt. thresh) then
            nhit = nhit + 1
            hits(nhit) = i
         end if
      end do
      end
"""

    def test_plan_accepts_append_idiom(self):
        loop, g = get_loop(self.HITS)
        # the planner passes the privatizable scalars as the ignore set
        plan = plan_critical_section(loop, g, ignore={"d", "k"})
        assert plan is not None
        assert "nhit" in plan.variables

    def test_build_brackets_with_locks(self):
        loop, g = get_loop(self.HITS)
        plan = plan_critical_section(loop, g, ignore={"d", "k"})
        pdo = build_critical_loop(plan)
        kinds = [type(s).__name__ for s in pdo.body]
        assert kinds.index("LockStmt") < kinds.index("UnlockStmt")
        assert pdo.order == "doall"

    def test_order_sensitive_recurrence_rejected(self):
        """A mod-based RNG seed must never go behind an unordered lock —
        the paper's QCD validation footnote."""
        loop, g = get_loop("""
      subroutine s(n, seed, out)
      integer n, seed
      real out(n)
      integer i
      do i = 1, n
         seed = mod(seed * 16807, 2147483647)
         out(i) = seed * 1.0e-9
      end do
      end
""")
        assert plan_critical_section(loop, g, ignore=set()) is None

    def test_region_covering_whole_body_rejected(self):
        loop, g = get_loop("""
      subroutine s(n, t, a)
      integer n
      real t, a(n)
      integer i
      do i = 1, n
         t = t + a(i)
         a(i) = t
      end do
      end
""")
        # t is read outside any small region (whole body involved)
        assert plan_critical_section(loop, g, ignore=set()) is None

    def test_variable_escaping_region_rejected(self):
        loop, g = get_loop("""
      subroutine s(n, x, nhit, b)
      integer n, nhit
      real x(n), b(n)
      integer i
      do i = 1, n
         nhit = nhit + 1
         b(i) = x(i) * nhit
      end do
      end
""")
        assert plan_critical_section(loop, g, ignore=set()) is None
