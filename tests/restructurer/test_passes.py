"""Unit tests for the individual restructuring passes."""

import pytest

from repro.analysis.induction import find_induction_variables
from repro.analysis.reductions import find_reductions
from repro.cedar.nodes import ParallelDo, WhereStmt
from repro.cedar.unparse import unparse_cedar
from repro.errors import TransformError
from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program
from repro.fortran.symtab import build_symbol_table
from repro.restructurer.distribution import distribute
from repro.restructurer.fusion import fuse_adjacent_in, fusion_legal
from repro.restructurer.inline import inline_calls
from repro.restructurer.interchange import interchange, interchange_legal
from repro.restructurer.names import NamePool
from repro.restructurer.recurrence import replace_with_library
from repro.restructurer.reduction_xform import transform_reductions
from repro.restructurer.stripmine import stripmine_vectorize, vectorize_inner


def get_loop(src, n=0):
    sf = parse_program(src)
    u = sf.units[0]
    build_symbol_table(u)
    loops = [s for s in u.body if isinstance(s, F.DoLoop)]
    return loops[n], u, sf


class TestStripmine:
    def test_basic_form(self):
        loop, unit, _ = get_loop("""
      subroutine s(a, b, n)
      integer n
      real a(n), b(n)
      do i = 1, n
         a(i) = b(i) * 2.0
      end do
      end
""")
        pdo = stripmine_vectorize(loop, NamePool(unit), strip=32)
        assert isinstance(pdo, ParallelDo)
        assert pdo.level == "X" and pdo.order == "doall"
        assert pdo.step.value == 32
        text = unparse_cedar(pdo)
        assert "min(32" in text
        assert "a(i:upper)" in text

    def test_offset_subscript(self):
        loop, unit, _ = get_loop("""
      subroutine s(a, b, n)
      integer n
      real a(n), b(n)
      do i = 1, n
         a(i) = b(i + 3)
      end do
      end
""")
        pdo = stripmine_vectorize(loop, NamePool(unit))
        text = unparse_cedar(pdo)
        assert "b(i + 3:upper + 3)" in text.replace("  ", " ")

    def test_invariant_subscript_stays(self):
        loop, unit, _ = get_loop("""
      subroutine s(a, b, n, k)
      integer n, k
      real a(n), b(n)
      do i = 1, n
         a(i) = b(k)
      end do
      end
""")
        text = unparse_cedar(stripmine_vectorize(loop, NamePool(unit)))
        assert "b(k)" in text

    def test_if_becomes_where(self):
        loop, unit, _ = get_loop("""
      subroutine s(a, b, n)
      integer n
      real a(n), b(n)
      do i = 1, n
         if (b(i) .gt. 0.0) a(i) = sqrt(b(i))
      end do
      end
""")
        pdo = stripmine_vectorize(loop, NamePool(unit))
        wheres = [s for s in pdo.body if isinstance(s, WhereStmt)]
        assert len(wheres) == 1
        text = unparse_cedar(pdo)
        assert "where (" in text and "end where" in text

    def test_nonunit_coefficient_rejected(self):
        loop, unit, _ = get_loop("""
      subroutine s(a, b, n)
      integer n
      real a(2 * n), b(n)
      do i = 1, n
         a(2 * i) = b(i)
      end do
      end
""")
        with pytest.raises(TransformError):
            stripmine_vectorize(loop, NamePool(unit))

    def test_inner_loop_rejected(self):
        loop, unit, _ = get_loop("""
      subroutine s(a, n, m)
      integer n, m
      real a(n, m)
      do i = 1, n
         do j = 1, m
            a(i, j) = 0.0
         end do
      end do
      end
""")
        with pytest.raises(TransformError):
            stripmine_vectorize(loop, NamePool(unit))

    def test_vectorize_inner_full_range(self):
        loop, unit, _ = get_loop("""
      subroutine s(a, b, n)
      integer n
      real a(n), b(n)
      do i = 1, n
         a(i) = b(i)
      end do
      end
""")
        stmts = vectorize_inner(loop)
        assert len(stmts) == 1
        text = unparse_cedar(stmts[0])
        assert "a(1:n)" in text and "b(1:n)" in text


class TestReductionTransform:
    def test_scalar_sum_pieces(self):
        loop, unit, _ = get_loop("""
      subroutine s(a, n, t)
      integer n
      real a(n), t
      do i = 1, n
         t = t + a(i)
      end do
      end
""")
        reds = find_reductions(loop)
        out = transform_reductions(loop, reds, NamePool(unit),
                                   build_symbol_table(unit))
        assert out.transformed == ["t"]
        assert len(out.preamble) == 1
        assert len(out.postamble) == 3  # lock, combine, unlock
        body_text = unparse_cedar(loop.body[0])
        assert "t_p" in body_text  # accumulation redirected

    def test_min_reduction_neutral(self):
        loop, unit, _ = get_loop("""
      subroutine s(a, n, lo)
      integer n
      real a(n), lo
      do i = 1, n
         lo = min(lo, a(i))
      end do
      end
""")
        reds = find_reductions(loop)
        out = transform_reductions(loop, reds, NamePool(unit),
                                   build_symbol_table(unit))
        pre = unparse_cedar(out.preamble[0])
        assert "e+30" in pre  # +huge neutral for MIN

    def test_array_reduction_vector_combine(self):
        loop, unit, _ = get_loop("""
      subroutine s(a, b, n, m)
      integer n, m
      real a(100), b(n, 100)
      do i = 1, n
         do j = 1, 100
            a(j) = a(j) + b(i, j)
         end do
      end do
      end
""")
        reds = find_reductions(loop)
        assert reds and reds[0].kind == "array"
        out = transform_reductions(loop, reds, NamePool(unit),
                                   build_symbol_table(unit))
        post = "".join(unparse_cedar(s) for s in out.postamble)
        assert "a(1:100)" in post


class TestLibraryReplacement:
    def test_dotproduct(self):
        loop, _, _ = get_loop("""
      subroutine s(a, b, n, t)
      integer n
      real a(n), b(n), t
      do i = 1, n
         t = t + a(i) * b(i)
      end do
      end
""")
        rep = replace_with_library(loop)
        assert rep is not None
        assert "ces_dotproduct" in unparse_cedar(rep[0])

    def test_sum(self):
        loop, _, _ = get_loop("""
      subroutine s(a, n, t)
      integer n
      real a(n), t
      do i = 1, n
         t = t + a(i)
      end do
      end
""")
        rep = replace_with_library(loop)
        assert rep is not None and "ces_sum" in unparse_cedar(rep[0])

    def test_linear_recurrence(self):
        loop, _, _ = get_loop("""
      subroutine s(x, b, c, n)
      integer n
      real x(n), b(n), c(n)
      do i = 2, n
         x(i) = x(i-1) * b(i) + c(i)
      end do
      end
""")
        rep = replace_with_library(loop)
        assert rep is not None and "ces_linrec" in unparse_cedar(rep[0])

    def test_non_idiom_returns_none(self):
        loop, _, _ = get_loop("""
      subroutine s(a, n, t)
      integer n
      real a(n), t
      do i = 1, n
         t = t + a(i)
         a(i) = t
      end do
      end
""")
        assert replace_with_library(loop) is None


class TestInterchange:
    def test_legal_and_swap(self):
        loop, _, _ = get_loop("""
      subroutine s(a, n, m)
      integer n, m
      real a(100, 100)
      do i = 1, n
         do j = 1, m
            a(i, j) = a(i, j) * 2.0
         end do
      end do
      end
""")
        assert interchange_legal(loop)
        interchange(loop)
        assert loop.var == "j"
        inner = loop.body[0]
        assert inner.var == "i"

    def test_illegal_lt_gt(self):
        loop, _, _ = get_loop("""
      subroutine s(a, n, m)
      integer n, m
      real a(100, 100)
      do i = 2, n
         do j = 1, m - 1
            a(i, j) = a(i - 1, j + 1) + 1.0
         end do
      end do
      end
""")
        assert not interchange_legal(loop)

    def test_triangular_not_interchangeable(self):
        loop, _, _ = get_loop("""
      subroutine s(a, n)
      integer n
      real a(100, 100)
      do i = 1, n
         do j = 1, i
            a(i, j) = 0.0
         end do
      end do
      end
""")
        assert not interchange_legal(loop)


class TestDistribution:
    def test_split_independent_statements(self):
        loop, _, _ = get_loop("""
      subroutine s(a, b, c, d, n)
      integer n
      real a(n), b(n), c(n), d(n)
      do i = 1, n
         a(i) = b(i) + 1.0
         c(i) = d(i) * 2.0
      end do
      end
""")
        parts = distribute(loop)
        assert len(parts) == 2
        assert isinstance(parts[0].body[0], F.Assign)

    def test_recurrence_isolated(self):
        loop, _, _ = get_loop("""
      subroutine s(a, b, x, n)
      integer n
      real a(n), b(n), x(n)
      do i = 2, n
         a(i) = b(i) + 1.0
         x(i) = x(i-1) + a(i)
      end do
      end
""")
        parts = distribute(loop)
        assert len(parts) == 2
        # the recurrence part must come second (it consumes a(i))
        second = unparse_cedar(parts[1])
        assert "x(i - 1)" in second

    def test_cycle_keeps_together(self):
        loop, _, _ = get_loop("""
      subroutine s(a, b, n)
      integer n
      real a(n), b(n)
      do i = 2, n
         a(i) = b(i-1) + 1.0
         b(i) = a(i) * 2.0
      end do
      end
""")
        parts = distribute(loop)
        assert len(parts) == 1


class TestFusion:
    def test_fuse_same_header(self):
        src = """
      subroutine s(a, b, c, n)
      integer n
      real a(n), b(n), c(n)
      do i = 1, n
         a(i) = b(i) + 1.0
      end do
      do j = 1, n
         c(j) = a(j) * 2.0
      end do
      end
"""
        sf = parse_program(src)
        u = sf.units[0]
        build_symbol_table(u)
        count = fuse_adjacent_in(u.body)
        assert count == 1
        loops = [s for s in u.body if isinstance(s, F.DoLoop)]
        assert len(loops) == 1
        assert len(loops[0].body) == 2

    def test_fusion_preventing_dependence(self):
        src = """
      subroutine s(a, b, n)
      integer n
      real a(n), b(n)
      do i = 1, n
         a(i) = b(i) + 1.0
      end do
      do j = 1, n
         b(j) = a(j) * 2.0
      end do
      end
"""
        sf = parse_program(src)
        u = sf.units[0]
        build_symbol_table(u)
        loops = [s for s in u.body if isinstance(s, F.DoLoop)]
        # fusing would make iteration i of loop2 write b(i) which iteration
        # i of loop1 already read — loop-independent a→b flow on a is fine,
        # anti on b is '=': actually legal; verify via the checker
        legal = fusion_legal(loops[0], loops[1])
        count = fuse_adjacent_in(u.body)
        assert (count == 1) == legal

    def test_backward_dep_prevents_fusion(self):
        src = """
      subroutine s(a, b, n)
      integer n
      real a(n), b(n)
      do i = 1, n
         a(i) = b(i) + 1.0
      end do
      do j = 1, n
         b(j) = a(j + 1) * 2.0
      end do
      end
"""
        sf = parse_program(src)
        u = sf.units[0]
        build_symbol_table(u)
        loops = [s for s in u.body if isinstance(s, F.DoLoop)]
        # fused: iteration i reads a(i+1), which iteration i+1 writes →
        # backward carried dependence, illegal
        assert not fusion_legal(loops[0], loops[1])

    def test_different_headers_not_fused(self):
        src = """
      subroutine s(a, b, n, m)
      integer n, m
      real a(n), b(n)
      do i = 1, n
         a(i) = 1.0
      end do
      do j = 1, m
         b(j) = 2.0
      end do
      end
"""
        sf = parse_program(src)
        u = sf.units[0]
        build_symbol_table(u)
        assert fuse_adjacent_in(u.body) == 0

    def test_replication_between_loops(self):
        src = """
      subroutine s(a, b, n, scale)
      integer n
      real a(n), b(n), scale, w
      do i = 1, n
         a(i) = a(i) + 1.0
      end do
      w = scale * 2.0
      do j = 1, n
         b(j) = a(j) * w
      end do
      end
"""
        sf = parse_program(src)
        u = sf.units[0]
        build_symbol_table(u)
        count = fuse_adjacent_in(u.body)
        assert count == 1
        loops = [s for s in u.body if isinstance(s, F.DoLoop)]
        assert len(loops) == 1
        # w computation replicated into the loop body
        body_text = "".join(unparse_cedar(s) for s in loops[0].body)
        assert "scale * 2.0" in body_text


class TestInline:
    def test_simple_expansion(self):
        src = """
      subroutine caller(a, b, n)
      integer n
      real a(n), b(n)
      do i = 1, n
         call scale2(a(i), b(i))
      end do
      end
      subroutine scale2(x, y)
      real x, y
      y = x * 2.0
      end
"""
        sf = parse_program(src)
        unit = sf.units[0]
        res = inline_calls(unit, sf)
        assert res.expanded == 1
        assert not any(isinstance(s, F.CallStmt)
                       for s in F.stmts_walk(unit.body))

    def test_whole_array_argument(self):
        src = """
      subroutine caller(a, n)
      integer n
      real a(n)
      call initz(a, n)
      end
      subroutine initz(x, m)
      integer m
      real x(m)
      do i = 1, m
         x(i) = 0.0
      end do
      end
"""
        sf = parse_program(src)
        unit = sf.units[0]
        res = inline_calls(unit, sf)
        assert res.expanded == 1
        loops = [s for s in unit.body if isinstance(s, F.DoLoop)]
        assert loops
        text = unparse_cedar(loops[0])
        assert "a(" in text  # dummy renamed to actual

    def test_goto_callee_declined(self):
        src = """
      subroutine caller(x)
      real x
      call messy(x)
      end
      subroutine messy(y)
      real y
   10 continue
      y = y - 1.0
      if (y .gt. 0.0) goto 10
      end
"""
        sf = parse_program(src)
        res = inline_calls(sf.units[0], sf)
        assert res.expanded == 0
        assert res.failed and res.failed[0][1] == "callee contains GOTO"

    def test_copy_back_for_element_actual(self):
        src = """
      subroutine caller(a)
      real a(10)
      call bump(a(3))
      end
      subroutine bump(x)
      real x
      x = x + 1.0
      end
"""
        sf = parse_program(src)
        unit = sf.units[0]
        res = inline_calls(unit, sf)
        assert res.expanded == 1
        # copy-in, compute, copy-out
        assigns = [s for s in unit.body if isinstance(s, F.Assign)]
        assert len(assigns) == 3
        last = unparse_cedar(assigns[-1])
        assert "a(3)" in last
