"""Tests for the affine expression algebra and AST simplifier."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.expr import (
    LinearExpr,
    const_value,
    exprs_equal,
    linearize,
    simplify,
)
from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program


def expr_of(text):
    """Parse the expression from 'x = <text>'."""
    sf = parse_program(f"      subroutine s\n      x = {text}\n      end\n")
    return sf.units[0].body[0].value


class TestLinearExpr:
    def test_constant_and_variable(self):
        c = LinearExpr.constant(5)
        v = LinearExpr.variable("i")
        assert c.is_constant and c.const == 5
        assert v.coeff("i") == 1 and not v.is_constant

    def test_add_sub(self):
        a = LinearExpr.variable("i", 2) + LinearExpr.constant(3)
        b = LinearExpr.variable("i", 2) + LinearExpr.variable("j", -1)
        s = a + b
        assert s.coeff("i") == 4 and s.coeff("j") == -1 and s.const == 3
        d = a - b
        assert d.coeff("i") == 0 and d.coeff("j") == 1 and d.const == 3

    def test_zero_coeff_pruned(self):
        a = LinearExpr.variable("i") - LinearExpr.variable("i")
        assert a == LinearExpr.constant(0)
        assert a.variables() == set()

    def test_scale_and_neg(self):
        a = LinearExpr.variable("i", 3) + LinearExpr.constant(2)
        assert a.scale(2).coeff("i") == 6
        assert (-a).const == -2

    def test_multiply_affine_guard(self):
        i = LinearExpr.variable("i")
        assert i.multiply(LinearExpr.constant(4)).coeff("i") == 4
        assert i.multiply(i) is None

    def test_substitute(self):
        a = LinearExpr.variable("i", 2) + LinearExpr.constant(1)
        env = {"i": LinearExpr.variable("j") + LinearExpr.constant(5)}
        s = a.substitute(env)
        assert s.coeff("j") == 2 and s.const == 11

    def test_to_ast_roundtrip(self):
        a = LinearExpr.variable("i", 2) - LinearExpr.variable("j") + 7
        back = linearize(a.to_ast())
        assert back == a

    def test_to_ast_negative_leading(self):
        a = LinearExpr.variable("i", -1)
        back = linearize(a.to_ast())
        assert back == a


class TestLinearize:
    def test_simple(self):
        le = linearize(expr_of("2 * i + j - 3"))
        assert le.coeff("i") == 2 and le.coeff("j") == 1 and le.const == -3

    def test_params_fold(self):
        le = linearize(expr_of("n * 2 + i"), params={"n": 10})
        assert le.const == 20 and le.coeff("i") == 1

    def test_nested_parens(self):
        le = linearize(expr_of("3 * (i - (j + 1))"))
        assert le.coeff("i") == 3 and le.coeff("j") == -3 and le.const == -3

    def test_nonaffine_product(self):
        assert linearize(expr_of("i * j")) is None

    def test_nonaffine_call(self):
        assert linearize(expr_of("mod(i, 2)")) is None

    def test_symbolic_times_symbolic(self):
        assert linearize(expr_of("n * i")) is None
        assert linearize(expr_of("n * i"), params={"n": 4}).coeff("i") == 4

    def test_division_exact(self):
        assert linearize(expr_of("(4 * i) / 2")).coeff("i") == 2
        assert linearize(expr_of("i / 2")) is None

    def test_power_constant(self):
        assert linearize(expr_of("2 ** 3 + i")).const == 8


class TestSimplify:
    def test_constant_folding(self):
        assert simplify(expr_of("2 + 3 * 4")).value == 14

    def test_identities(self):
        assert isinstance(simplify(expr_of("x + 0")), F.Var)
        assert isinstance(simplify(expr_of("1 * x")), F.Var)
        assert simplify(expr_of("0 * x")).value == 0
        assert isinstance(simplify(expr_of("x / 1")), F.Var)
        assert simplify(expr_of("x - x")).value == 0

    def test_double_negation(self):
        e = simplify(F.UnOp("-", F.UnOp("-", F.Var("x"))))
        assert isinstance(e, F.Var)

    def test_min_max_folding(self):
        assert simplify(expr_of("min(3, 5)")).value == 3
        assert simplify(expr_of("max(3, 5)")).value == 5
        assert isinstance(simplify(expr_of("min(x, x)")), F.Var)

    def test_relational_folding(self):
        assert simplify(expr_of("3 .lt. 5")).value is True
        assert simplify(expr_of("3 .ge. 5")).value is False

    def test_truncating_division(self):
        assert const_value(expr_of("7 / 2")) == 3
        assert const_value(expr_of("(-7) / 2")) == -3  # Fortran truncates


class TestExprsEqual:
    def test_affine_equality(self):
        assert exprs_equal(expr_of("i + i"), expr_of("2 * i"))
        assert not exprs_equal(expr_of("i + 1"), expr_of("i"))

    def test_structural_fallback(self):
        assert exprs_equal(expr_of("sqrt(x)"), expr_of("sqrt(x)"))
        assert not exprs_equal(expr_of("sqrt(x)"), expr_of("sqrt(y)"))


@settings(max_examples=200, deadline=None)
@given(
    st.lists(st.tuples(st.sampled_from("ijkn"),
                       st.integers(-5, 5)), max_size=4),
    st.integers(-10, 10),
    st.lists(st.tuples(st.sampled_from("ijkn"),
                       st.integers(-5, 5)), max_size=4),
    st.integers(-10, 10),
)
def test_linear_algebra_laws(t1, c1, t2, c2):
    def build(terms, c):
        e = LinearExpr.constant(c)
        for n, k in terms:
            e = e + LinearExpr.variable(n, k)
        return e

    a, b = build(t1, c1), build(t2, c2)
    assert a + b == b + a
    assert (a - b) + b == a
    assert a.scale(3) == a + a + a
    assert (a + b).scale(2) == a.scale(2) + b.scale(2)
    assert linearize((a - b).to_ast()) == a - b


@settings(max_examples=150, deadline=None)
@given(st.integers(-50, 50), st.integers(-50, 50), st.integers(-50, 50))
def test_const_value_matches_python(x, y, z):
    e = F.BinOp("+", F.BinOp("*", F.IntLit(x), F.IntLit(y)), F.IntLit(z))
    assert const_value(e) == x * y + z
    s = simplify(e)
    assert isinstance(s, F.IntLit) and s.value == x * y + z
