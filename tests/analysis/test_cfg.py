"""Tests for CFG construction and dominators."""

from repro.analysis.cfg import build_cfg
from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program


def body_of(src):
    sf = parse_program(src)
    return sf.units[0].body


class TestCFG:
    def test_straight_line_single_block(self):
        cfg = build_cfg(body_of("""
      subroutine s(a, b)
      real a, b
      a = 1.0
      b = 2.0
      a = a + b
      end
"""))
        # one code block + exit
        assert len(cfg.blocks) == 2
        assert cfg.blocks[0].succs == [cfg.exit_index]

    def test_goto_backward_loop(self):
        cfg = build_cfg(body_of("""
      subroutine s(x)
      real x
   10 continue
      x = x - 1.0
      if (x .gt. 0.0) goto 10
      end
"""))
        back = cfg.back_edges()
        assert len(back) == 1
        assert cfg.is_reducible()

    def test_forward_goto_splits(self):
        cfg = build_cfg(body_of("""
      subroutine s(x)
      real x
      if (x .gt. 0.0) goto 20
      x = -x
   20 continue
      x = x * 2.0
      end
"""))
        # the conditional branch block has two successors
        branching = [b for b in cfg.blocks if len(b.succs) == 2]
        assert branching

    def test_computed_goto_fanout(self):
        cfg = build_cfg(body_of("""
      subroutine s(k, x)
      integer k
      real x
      goto (10, 20), k
   10 x = 1.0
   20 x = 2.0
      end
"""))
        first = cfg.blocks[0]
        assert len(first.succs) >= 2

    def test_dominators_linear(self):
        cfg = build_cfg(body_of("""
      subroutine s(x)
      real x
      x = 1.0
   10 x = x + 1.0
      if (x .lt. 9.0) goto 10
      x = 0.0
      end
"""))
        dom = cfg.dominators()
        # entry dominates everything reachable
        for b in cfg.blocks:
            if dom.get(b.index):
                assert 0 in dom[b.index] or b.index == 0

    def test_return_edges_to_exit(self):
        cfg = build_cfg(body_of("""
      subroutine s(x)
      real x
      if (x .gt. 0.0) return
      x = -x
      end
"""))
        # a block must link straight to exit via the RETURN
        assert any(cfg.exit_index in b.succs for b in cfg.blocks[:-1])

    def test_irreducible_crossing_gotos(self):
        """Two GOTOs jumping into each other's region: not reducible."""
        cfg = build_cfg(body_of("""
      subroutine s(x)
      real x
      if (x .gt. 0.0) goto 20
   10 x = x + 1.0
      goto 30
   20 x = x - 1.0
      if (x .gt. 5.0) goto 10
   30 continue
      if (x .lt. 0.0) goto 20
      end
"""))
        # the 10/20 blocks form a cycle entered from two places
        assert not cfg.is_reducible() or len(cfg.back_edges()) >= 1
