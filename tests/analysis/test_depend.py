"""Dependence-test and dependence-graph tests.

Includes a brute-force consistency property: on small concrete iteration
spaces, enumerate all iteration pairs, compute actual subscript collisions,
and check the symbolic tester never misses a real dependence (soundness)
and is exact on the affine cases it claims to decide.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.depend import (
    DependenceTester,
    SubscriptPair,
    build_dependence_graph,
)
from repro.analysis.depend.banerjee import LoopBounds, banerjee_test
from repro.analysis.depend.gcd import gcd_test
from repro.analysis.expr import LinearExpr
from repro.analysis.refs import LoopInfo
from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program
from repro.fortran.symtab import build_symbol_table


def L(c=0, **coeffs):
    e = LinearExpr.constant(c)
    for n, k in coeffs.items():
        e = e + LinearExpr.variable(n, k)
    return e


def nest1(lo=1, hi=100, var="i"):
    return [LoopInfo(var, F.IntLit(lo), F.IntLit(hi), None)]


class TestGCD:
    def test_no_solution(self):
        # 2i vs 2i'+1: gcd 2 does not divide 1
        assert not gcd_test(L(0, i=2), L(1, i=2), ["i"])

    def test_solution_exists(self):
        assert gcd_test(L(0, i=2), L(2, i=2), ["i"])
        assert gcd_test(L(0, i=3), L(1, i=2), ["i"])

    def test_ziv(self):
        assert gcd_test(L(5), L(5), ["i"])
        assert not gcd_test(L(5), L(6), ["i"])

    def test_symbolic_invariant_cancels(self):
        # a(i+n) vs a(i+n+1): constants differ by 1, coeff gcd 1 → possible
        assert gcd_test(L(0, i=1, n=1), L(1, i=1, n=1), ["i"])
        # mismatched symbolic parts → conservative True
        assert gcd_test(L(0, i=1, n=1), L(0, i=1, m=1), ["i"])


class TestBanerjee:
    def bounds(self, lo=1, hi=100):
        return [LoopBounds("i", lo, hi)]

    def test_equal_direction_independent(self):
        # a(i) vs a(i+1) with '=': difference is -1, never 0
        assert not banerjee_test(L(0, i=1), L(1, i=1), self.bounds(), "=")

    def test_lt_direction_dependent(self):
        # a(i+1) read after write a(i): i' = i+1 carries '<'
        assert banerjee_test(L(1, i=1), L(0, i=1), self.bounds(), "<")

    def test_gt_direction_for_negative_distance(self):
        assert banerjee_test(L(0, i=1), L(1, i=1), self.bounds(), ">")
        assert not banerjee_test(L(1, i=1), L(0, i=1), self.bounds(), ">")

    def test_out_of_range_offset(self):
        # a(i) vs a(i+200) in 100-trip loop: no direction possible
        for d in "<=>":
            assert not banerjee_test(L(0, i=1), L(200, i=1),
                                     self.bounds(), d)

    def test_unknown_bounds_conservative(self):
        bounds = [LoopBounds("i")]  # ± inf
        # src i, sink i'+1: collision needs i = i'+1, i.e. i > i' ('>')
        assert banerjee_test(L(0, i=1), L(1, i=1), bounds, ">")
        assert not banerjee_test(L(0, i=1), L(1, i=1), bounds, "<")
        # with an unknown-coefficient mix, '<' stays possible
        assert banerjee_test(L(0, i=1), L(0, i=2), bounds, "<")

    def test_single_trip_lt_empty(self):
        assert not banerjee_test(L(0, i=1), L(0, i=1),
                                 [LoopBounds("i", 1, 1)], "<")


class TestDependenceTester:
    def test_independent_distinct_constants(self):
        t = DependenceTester(nest1())
        r = t.test_subscripts([SubscriptPair(L(1), L(2))])
        assert r.independent

    def test_same_element_every_iteration(self):
        t = DependenceTester(nest1())
        r = t.test_subscripts([SubscriptPair(L(5), L(5))])
        assert not r.independent

    def test_distance_vector(self):
        t = DependenceTester(nest1())
        # src a(i), sink a(i-1): i' - i = 1 → distance +1, carried '<'
        r = t.test_subscripts([SubscriptPair(L(0, i=1), L(-1, i=1))])
        assert r.distance == (1,)
        assert r.directions == {("<",)}
        assert r.carried_by(0)

    def test_loop_independent_only(self):
        t = DependenceTester(nest1())
        r = t.test_subscripts([SubscriptPair(L(0, i=1), L(0, i=1))])
        assert r.distance == (0,)
        assert r.loop_independent()
        assert not r.carried_by(0)

    def test_stride_2_interleave(self):
        t = DependenceTester(nest1())
        # a(2i) vs a(2i+1): disjoint even/odd elements
        r = t.test_subscripts([SubscriptPair(L(0, i=2), L(1, i=2))])
        assert r.independent

    def test_2d_nest_exact_distance(self):
        nest = [LoopInfo("i", F.IntLit(1), F.IntLit(10), None),
                LoopInfo("j", F.IntLit(1), F.IntLit(10), None)]
        t = DependenceTester(nest)
        # a(i, j) vs a(i-1, j+1): distance (1, -1)
        r = t.test_subscripts([
            SubscriptPair(L(0, i=1), L(-1, i=1)),
            SubscriptPair(L(0, j=1), L(1, j=1)),
        ])
        assert r.distance == (1, -1)
        assert r.carried_by(0)
        assert not r.carried_by(1)

    def test_distance_exceeding_trips(self):
        t = DependenceTester(nest1(1, 5))
        r = t.test_subscripts([SubscriptPair(L(0, i=1), L(-100, i=1))])
        assert r.independent

    def test_symbolic_bound_conservative(self):
        nest = [LoopInfo("i", F.IntLit(1), F.Var("n"), None)]
        t = DependenceTester(nest)
        r = t.test_subscripts([SubscriptPair(L(0, i=1), L(-1, i=1))])
        assert not r.independent
        assert r.carried_by(0)

    def test_nonaffine_conservative(self):
        t = DependenceTester(nest1())
        r = t.test_refs([F.BinOp("*", F.Var("i"), F.Var("i"))],
                        [F.Var("i")])
        assert not r.independent and not r.exact


def graph_of(src, unit=0):
    sf = parse_program(src)
    u = sf.units[unit]
    build_symbol_table(u)
    loop = next(s for s in u.body if isinstance(s, F.DoLoop))
    return build_dependence_graph(loop)


class TestDependenceGraph:
    def test_parallel_loop_no_deps(self):
        g = graph_of("""
      subroutine s(a, b, n)
      integer n
      real a(n), b(n)
      do i = 1, n
         a(i) = b(i) + 1.0
      end do
      end
""")
        assert g.is_parallel(0)

    def test_flow_dependence_carried(self):
        g = graph_of("""
      subroutine s(a, n)
      integer n
      real a(n)
      do i = 2, n
         a(i) = a(i-1) + 1.0
      end do
      end
""")
        assert not g.is_parallel(0)
        flows = [d for d in g.deps if d.kind == "flow" and d.variable == "a"]
        assert flows and flows[0].distance == (1,)

    def test_anti_dependence_not_carried_blocking(self):
        g = graph_of("""
      subroutine s(a, n)
      integer n
      real a(n)
      do i = 1, n
         a(i) = a(i+1) + 1.0
      end do
      end
""")
        # anti dependence a(i+1) read, a(i') written with i' = i+1: carried
        antis = [d for d in g.deps if d.kind == "anti"]
        assert antis
        assert not g.is_parallel(0)

    def test_scalar_accumulator_blocks(self):
        g = graph_of("""
      subroutine s(a, n, total)
      integer n
      real a(n), total
      do i = 1, n
         total = total + a(i)
      end do
      end
""")
        assert not g.is_parallel(0)
        assert "total" in g.variables_with_carried(0)
        # but ignoring the recognized reduction variable it is parallel
        assert g.is_parallel(0, ignore={"total"})

    def test_private_scalar_blocks_until_ignored(self):
        g = graph_of("""
      subroutine s(a, b, n)
      integer n
      real a(n), b(n), t
      do i = 1, n
         t = a(i) * 2.0
         b(i) = t + 1.0
      end do
      end
""")
        assert not g.is_parallel(0)
        assert g.is_parallel(0, ignore={"t"})

    def test_inner_loop_independent_outer_carried(self):
        sf = parse_program("""
      subroutine s(a, n, m)
      integer n, m
      real a(100, 100)
      do i = 2, n
         do j = 1, m
            a(i, j) = a(i-1, j) + 1.0
         end do
      end do
      end
""")
        u = sf.units[0]
        build_symbol_table(u)
        loop = u.body[0]
        g = build_dependence_graph(loop)
        assert not g.is_parallel(0)
        # the j loop (depth 1) carries nothing
        assert g.is_parallel(1)

    def test_unknown_call_conservative(self):
        g = graph_of("""
      subroutine s(a, n)
      integer n
      real a(n)
      do i = 1, n
         call f(a, i)
      end do
      end
""")
        assert not g.is_parallel(0)
        assert not g.exact

    def test_output_dependence(self):
        g = graph_of("""
      subroutine s(a, n, k)
      integer n, k
      real a(n)
      do i = 1, n
         a(k) = a(k) + 1.0
      end do
      end
""")
        outs = [d for d in g.deps if d.kind == "output"]
        assert outs
        assert not g.is_parallel(0)


@settings(max_examples=120, deadline=None)
@given(
    a1=st.integers(-3, 3), c1=st.integers(-6, 6),
    a2=st.integers(-3, 3), c2=st.integers(-6, 6),
    n=st.integers(1, 12),
)
def test_tester_sound_vs_bruteforce(a1, c1, a2, c2, n):
    """The symbolic tester must never report independence when a concrete
    collision exists, and its surviving direction vectors must cover every
    concrete pair relation."""
    nest = [LoopInfo("i", F.IntLit(1), F.IntLit(n), None)]
    t = DependenceTester(nest)
    r = t.test_subscripts([SubscriptPair(L(c1, i=a1), L(c2, i=a2))])

    actual_dirs = set()
    for i, ip in itertools.product(range(1, n + 1), repeat=2):
        if a1 * i + c1 == a2 * ip + c2:
            actual_dirs.add(("<" if i < ip else (">" if i > ip else "="),))
    # soundness: every actual relation must be covered
    assert actual_dirs <= r.directions, (actual_dirs, r.directions)
    # for this affine 1-var case the result should also be reasonably tight:
    # independence claimed only when truly no collision
    if r.independent:
        assert not actual_dirs
