"""Direct tests of the definite-assignment / liveness walkers."""

from repro.analysis.dataflow import (
    Assigned,
    live_after_loop,
    reads_after,
    scalar_usage,
)
from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program


def unit_of(src):
    return parse_program(src).units[0]


def first_loop(unit):
    return next(s for s in unit.body if isinstance(s, F.DoLoop))


class TestReadsAfter:
    def test_read_in_later_statement(self):
        u = unit_of("""
      subroutine s(a, n, out)
      integer n
      real a(n), out
      real t
      integer i
      do i = 1, n
         t = a(i)
         a(i) = t + 1.0
      end do
      out = t
      end
""")
        loop = first_loop(u)
        assert reads_after(u.body, loop, "t") is True

    def test_no_read_after(self):
        u = unit_of("""
      subroutine s(a, n)
      integer n
      real a(n)
      real t
      integer i
      do i = 1, n
         t = a(i)
         a(i) = t + 1.0
      end do
      end
""")
        loop = first_loop(u)
        assert reads_after(u.body, loop, "t") is False

    def test_redefinition_kills_liveness(self):
        """A later statement that overwrites before reading does not keep
        the loop's value live."""
        u = unit_of("""
      subroutine s(a, n, out)
      integer n
      real a(n), out
      real t
      integer i
      do i = 1, n
         t = a(i)
         a(i) = t + 1.0
      end do
      t = 0.0
      out = t
      end
""")
        loop = first_loop(u)
        assert reads_after(u.body, loop, "t") is False

    def test_reexecution_covered_by_redef(self):
        """The FLO52 case: a scalar defined at the top of every outer
        iteration is not live across iterations."""
        u = unit_of("""
      subroutine s(a, n, m)
      integer n, m
      real a(n, m)
      real w
      integer t, j
      do t = 1, n
         do j = 1, m
            w = a(j, t) * 2.0
            a(j, t) = w
         end do
      end do
      end
""")
        outer = first_loop(u)
        inner = first_loop(outer)
        assert reads_after(u.body, inner, "w") is False

    def test_reexecution_upward_exposed(self):
        """A scalar read before redefinition in the next iteration stays
        live (accumulator across outer iterations)."""
        u = unit_of("""
      subroutine s(a, n)
      integer n
      real a(n)
      real acc
      integer t, j
      acc = 0.0
      do t = 1, n
         do j = 1, n
            a(j) = a(j) + acc
         end do
         acc = acc + 1.0
      end do
      end
""")
        outer = first_loop(u)
        inner = first_loop(outer)
        assert reads_after(u.body, inner, "acc") is True


class TestLiveAfterLoop:
    def test_escaping_always_live(self):
        u = unit_of("""
      subroutine s(t, a, n)
      integer n
      real t, a(n)
      integer i
      do i = 1, n
         t = a(i)
         a(i) = t
      end do
      end
""")
        loop = first_loop(u)
        assert live_after_loop(u, loop, "t", escapes=True)
        assert not live_after_loop(u, loop, "t", escapes=False)


class TestScalarUsageEdges:
    def test_logical_if_conditional_def(self):
        u = unit_of("""
      subroutine s(a, b, n)
      integer n
      real a(n), b(n)
      real t
      integer i
      do i = 1, n
         if (a(i) .gt. 0.0) t = a(i)
         b(i) = t
      end do
      end
""")
        loop = first_loop(u)
        usage = scalar_usage(loop.body, "t")
        assert usage.upward_exposed  # conditional def does not dominate

    def test_goto_poisons(self):
        u = unit_of("""
      subroutine s(a, n)
      integer n
      real a(n)
      real t
      integer i
      do i = 1, n
         goto 10
   10    t = a(i)
         a(i) = t
      end do
      end
""")
        loop = first_loop(u)
        usage = scalar_usage(loop.body, "t")
        assert usage.saw_goto and usage.conservative

    def test_do_var_counts_as_definition(self):
        u = unit_of("""
      subroutine s(a, n)
      integer n
      real a(n)
      integer i, j
      do i = 1, n
         do j = 1, 3
            a(i) = a(i) + j
         end do
      end do
      end
""")
        loop = first_loop(u)
        usage = scalar_usage(loop.body, "j")
        assert not usage.upward_exposed
        assert usage.written_anywhere
