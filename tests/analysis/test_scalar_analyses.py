"""Tests for induction variables, reductions, privatization, dataflow."""

import pytest

from repro.analysis.dataflow import Assigned, scalar_usage
from repro.analysis.induction import find_induction_variables
from repro.analysis.privatization import (
    analyze_array,
    analyze_scalar,
    find_privatizable,
)
from repro.analysis.reductions import find_reductions
from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program
from repro.fortran.symtab import build_symbol_table


def first_loop(src):
    sf = parse_program(src)
    u = sf.units[0]
    build_symbol_table(u)
    loop = next(s for s in u.body if isinstance(s, F.DoLoop))
    return loop, u, sf


class TestScalarUsage:
    def test_def_before_use(self):
        loop, _, _ = first_loop("""
      subroutine s(a, b, n)
      real a(n), b(n)
      do i = 1, n
         t = a(i)
         b(i) = t * 2.0
      end do
      end
""")
        u = scalar_usage(loop.body, "t")
        assert not u.upward_exposed
        assert u.assigned == Assigned.YES

    def test_use_before_def(self):
        loop, _, _ = first_loop("""
      subroutine s(a, n)
      real a(n)
      do i = 1, n
         a(i) = t
         t = a(i)
      end do
      end
""")
        u = scalar_usage(loop.body, "t")
        assert u.upward_exposed

    def test_if_both_arms_define(self):
        loop, _, _ = first_loop("""
      subroutine s(a, b, n)
      real a(n), b(n)
      do i = 1, n
         if (a(i) .gt. 0.0) then
            t = 1.0
         else
            t = -1.0
         end if
         b(i) = t
      end do
      end
""")
        u = scalar_usage(loop.body, "t")
        assert not u.upward_exposed

    def test_if_one_arm_defines(self):
        loop, _, _ = first_loop("""
      subroutine s(a, b, n)
      real a(n), b(n)
      do i = 1, n
         if (a(i) .gt. 0.0) then
            t = 1.0
         end if
         b(i) = t
      end do
      end
""")
        u = scalar_usage(loop.body, "t")
        assert u.upward_exposed

    def test_def_in_constant_inner_loop_counts(self):
        loop, _, _ = first_loop("""
      subroutine s(a, b, n)
      real a(n), b(n)
      do i = 1, n
         do j = 1, 4
            t = a(i) + j
         end do
         b(i) = t
      end do
      end
""")
        u = scalar_usage(loop.body, "t")
        assert not u.upward_exposed

    def test_def_in_symbolic_inner_loop_degrades(self):
        loop, _, _ = first_loop("""
      subroutine s(a, b, n, m)
      real a(n), b(n)
      do i = 1, n
         do j = 1, m
            t = a(i) + j
         end do
         b(i) = t
      end do
      end
""")
        u = scalar_usage(loop.body, "t")
        assert u.upward_exposed

    def test_call_is_conservative(self):
        loop, _, _ = first_loop("""
      subroutine s(a, n)
      real a(n)
      do i = 1, n
         call f(t)
         a(i) = t
      end do
      end
""")
        u = scalar_usage(loop.body, "t")
        assert u.conservative


class TestInduction:
    def test_basic_iv(self):
        loop, _, _ = first_loop("""
      subroutine s(a, n)
      real a(n)
      k = 0
      do i = 1, n
         k = k + 2
         a(k) = 0.0
      end do
      end
""")
        ivs = find_induction_variables(loop)
        assert len(ivs) == 1
        iv = ivs[0]
        assert iv.name == "k" and iv.kind == "basic"
        assert iv.strictly_monotonic
        assert iv.closed_form is not None

    def test_geometric_giv(self):
        loop, _, _ = first_loop("""
      subroutine s(a, n)
      real a(n)
      k = 1
      do i = 1, n
         k = k * 2
         a(k) = 0.0
      end do
      end
""")
        ivs = find_induction_variables(loop)
        assert len(ivs) == 1
        assert ivs[0].kind == "geometric"

    def test_triangular_polynomial_giv(self):
        loop, _, _ = first_loop("""
      subroutine s(a, n)
      real a(n * n)
      k = 0
      do i = 1, n
         do j = 1, i
            k = k + 1
            a(k) = 0.0
         end do
      end do
      end
""")
        ivs = find_induction_variables(loop)
        assert len(ivs) == 1
        iv = ivs[0]
        assert iv.kind == "polynomial"
        assert iv.strictly_monotonic
        assert iv.closed_form is not None
        # closed form should mention both indices
        names = {n.name for n in iv.closed_form.walk() if isinstance(n, F.Var)}
        assert {"i", "j"} <= names

    def test_conditional_update_rejected(self):
        loop, _, _ = first_loop("""
      subroutine s(a, n)
      real a(n)
      do i = 1, n
         if (a(i) .gt. 0.0) k = k + 1
         a(i) = k
      end do
      end
""")
        assert find_induction_variables(loop) == []

    def test_non_invariant_step_rejected(self):
        loop, _, _ = first_loop("""
      subroutine s(a, n)
      real a(n)
      do i = 1, n
         k = k + i
         a(i) = k
      end do
      end
""")
        assert find_induction_variables(loop) == []

    def test_multiple_writes_rejected(self):
        loop, _, _ = first_loop("""
      subroutine s(a, n)
      real a(n)
      do i = 1, n
         k = k + 1
         k = k * 2
         a(i) = k
      end do
      end
""")
        assert find_induction_variables(loop) == []


class TestReductions:
    def test_scalar_sum(self):
        loop, _, _ = first_loop("""
      subroutine s(a, n, total)
      real a(n), total
      do i = 1, n
         total = total + a(i)
      end do
      end
""")
        reds = find_reductions(loop)
        assert len(reds) == 1
        assert reds[0].var == "total" and reds[0].op == "+"
        assert reds[0].kind == "scalar"

    def test_subtraction_folds_to_sum(self):
        loop, _, _ = first_loop("""
      subroutine s(a, n, total)
      real a(n), total
      do i = 1, n
         total = total - a(i)
      end do
      end
""")
        reds = find_reductions(loop)
        assert reds and reds[0].op == "+"

    def test_product_reduction(self):
        loop, _, _ = first_loop("""
      subroutine s(a, n, p)
      real a(n), p
      do i = 1, n
         p = p * a(i)
      end do
      end
""")
        reds = find_reductions(loop)
        assert reds and reds[0].op == "*"

    def test_min_intrinsic(self):
        loop, _, _ = first_loop("""
      subroutine s(a, n, lo)
      real a(n), lo
      do i = 1, n
         lo = min(lo, a(i))
      end do
      end
""")
        reds = find_reductions(loop)
        assert reds and reds[0].op == "min"

    def test_max_via_if(self):
        loop, _, _ = first_loop("""
      subroutine s(a, n, hi)
      real a(n), hi
      do i = 1, n
         if (a(i) .gt. hi) hi = a(i)
      end do
      end
""")
        reds = find_reductions(loop)
        assert reds and reds[0].op == "max"

    def test_multiple_accumulations_merged(self):
        loop, _, _ = first_loop("""
      subroutine s(a, b, c, n, total)
      real a(n), b(n), c(n), total
      do i = 1, n
         total = total + a(i)
         total = total + b(i)
         total = total + c(i)
      end do
      end
""")
        reds = find_reductions(loop)
        assert len(reds) == 1 and len(reds[0].stmts) == 3

    def test_array_element_accumulator(self):
        loop, _, _ = first_loop("""
      subroutine s(a, b, n, m)
      real a(m), b(n, m)
      do i = 1, n
         do j = 1, m
            a(j) = a(j) + b(i, j)
            a(j) = a(j) + 2.0 * b(i, j)
         end do
      end do
      end
""")
        reds = find_reductions(loop)
        assert len(reds) == 1
        assert reds[0].kind == "array" and reds[0].var == "a"
        assert len(reds[0].stmts) == 2

    def test_mixed_operators_rejected(self):
        loop, _, _ = first_loop("""
      subroutine s(a, n, t)
      real a(n), t
      do i = 1, n
         t = t + a(i)
         t = t * a(i)
      end do
      end
""")
        assert find_reductions(loop) == []

    def test_other_use_disqualifies(self):
        loop, _, _ = first_loop("""
      subroutine s(a, n, t)
      real a(n), t
      do i = 1, n
         t = t + a(i)
         a(i) = t
      end do
      end
""")
        assert find_reductions(loop) == []

    def test_self_dependent_contribution_rejected(self):
        loop, _, _ = first_loop("""
      subroutine s(a, n, t)
      real a(n), t
      do i = 1, n
         t = t + t * a(i)
      end do
      end
""")
        assert find_reductions(loop) == []


class TestPrivatization:
    def test_temporary_scalar(self):
        loop, unit, _ = first_loop("""
      subroutine s(a, b, n)
      real a(n), b(n)
      do i = 1, n
         t = b(i)
         a(i) = sqrt(t)
      end do
      end
""")
        st = build_symbol_table(unit)
        res = analyze_scalar(loop, "t", unit, st)
        assert res.privatizable
        assert not res.needs_last_value

    def test_last_value_needed_when_read_after(self):
        loop, unit, _ = first_loop("""
      subroutine s(a, b, n, out)
      real a(n), b(n), out
      do i = 1, n
         t = b(i)
         a(i) = sqrt(t)
      end do
      out = t
      end
""")
        st = build_symbol_table(unit)
        res = analyze_scalar(loop, "t", unit, st)
        assert res.privatizable
        assert res.needs_last_value

    def test_dummy_scalar_escapes(self):
        loop, unit, _ = first_loop("""
      subroutine s(a, n, t)
      real a(n), t
      do i = 1, n
         t = a(i)
         a(i) = t + 1.0
      end do
      end
""")
        st = build_symbol_table(unit)
        res = analyze_scalar(loop, "t", unit, st)
        assert res.privatizable
        assert res.needs_last_value

    def test_accumulator_not_privatizable(self):
        loop, unit, _ = first_loop("""
      subroutine s(a, n, t)
      real a(n), t
      do i = 1, n
         t = t + a(i)
      end do
      end
""")
        st = build_symbol_table(unit)
        res = analyze_scalar(loop, "t", unit, st)
        assert not res.privatizable

    def test_work_array_privatizable(self):
        loop, unit, _ = first_loop("""
      subroutine s(a, n, m)
      real a(n, m), w(100)
      do i = 1, n
         do j = 1, m
            w(j) = a(i, j) * 2.0
         end do
         do j = 1, m
            a(i, j) = w(j) + 1.0
         end do
      end do
      end
""")
        st = build_symbol_table(unit)
        res = analyze_array(loop, "w", unit, st)
        assert res.privatizable

    def test_array_use_not_covered(self):
        loop, unit, _ = first_loop("""
      subroutine s(a, n, m)
      real a(n, m), w(100)
      do i = 1, n
         do j = 1, m
            w(j) = a(i, j)
         end do
         do j = 1, m
            a(i, j) = w(j + 1)
         end do
      end do
      end
""")
        st = build_symbol_table(unit)
        res = analyze_array(loop, "w", unit, st)
        assert not res.privatizable

    def test_array_conditional_write_not_covering(self):
        loop, unit, _ = first_loop("""
      subroutine s(a, n, m)
      real a(n, m), w(100)
      do i = 1, n
         do j = 1, m
            if (a(i, j) .gt. 0.0) then
               w(j) = a(i, j)
            end if
         end do
         do j = 1, m
            a(i, j) = w(j)
         end do
      end do
      end
""")
        st = build_symbol_table(unit)
        res = analyze_array(loop, "w", unit, st)
        assert not res.privatizable

    def test_array_smaller_read_range_covered(self):
        loop, unit, _ = first_loop("""
      subroutine s(a, n, m)
      real a(n, m), w(100)
      do i = 1, n
         do j = 1, m
            w(j) = a(i, j)
         end do
         do j = 2, m
            a(i, j) = w(j)
         end do
      end do
      end
""")
        st = build_symbol_table(unit)
        res = analyze_array(loop, "w", unit, st)
        # write range [1,m] encloses read range [2,m]... start compare:
        # 1 <= 2 ok, ends equal → privatizable
        assert res.privatizable

    def test_find_privatizable_collects(self):
        loop, unit, _ = first_loop("""
      subroutine s(a, b, n, m)
      real a(n, m), b(n), w(100)
      do i = 1, n
         t = b(i)
         do j = 1, m
            w(j) = a(i, j) + t
         end do
         do j = 1, m
            a(i, j) = w(j)
         end do
      end do
      end
""")
        st = build_symbol_table(unit)
        results = find_privatizable(loop, unit, st)
        names = {r.name for r in results}
        assert {"t", "w", "j"} <= names
