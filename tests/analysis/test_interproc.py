"""Tests for call graph, MOD/REF summaries, constant propagation, and the
run-time dependence test synthesis."""

from repro.analysis.interproc import (
    build_call_graph,
    propagate_constants,
    summarize_source_file,
)
from repro.analysis.interproc.summaries import effects_oracle
from repro.analysis.depend import build_dependence_graph
from repro.analysis.runtime_test import synthesize_runtime_test
from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program
from repro.fortran.symtab import build_symbol_table


SRC = """
      subroutine top(a, b, n)
      integer n
      real a(n), b(n)
      call mid(a, b, n)
      end

      subroutine mid(x, y, n)
      integer n
      real x(n), y(n)
      do i = 1, n
         y(i) = getx(x, i)
      end do
      end

      real function getx(x, i)
      integer i
      real x(*)
      getx = x(i)
      end
"""


class TestCallGraph:
    def test_edges(self):
        g = build_call_graph(parse_program(SRC))
        assert g.callees["top"] == {"mid"}
        assert g.callees["mid"] == {"getx"}
        assert g.callees["getx"] == set()

    def test_topological_order(self):
        g = build_call_graph(parse_program(SRC))
        order = g.topological()
        assert order.index("getx") < order.index("mid") < order.index("top")

    def test_external_calls(self):
        src = """
      subroutine s(a)
      real a(10)
      call unknown(a)
      end
"""
        g = build_call_graph(parse_program(src))
        assert g.external_calls("s") == {"unknown"}

    def test_recursion_detection(self):
        src = """
      subroutine a(x)
      real x
      call b(x)
      end
      subroutine b(x)
      real x
      call a(x)
      end
"""
        g = build_call_graph(parse_program(src))
        assert g.is_recursive("a") and g.is_recursive("b")


class TestSummaries:
    def test_mod_ref_args(self):
        src = """
      subroutine axpy(n, alpha, x, y)
      integer n
      real alpha, x(n), y(n)
      do i = 1, n
         y(i) = y(i) + alpha * x(i)
      end do
      end
"""
        sums = summarize_source_file(parse_program(src))
        s = sums["axpy"]
        assert 2 in s.ref_args and 3 in s.ref_args     # x read, y read
        assert 3 in s.mod_args                          # y written
        assert 2 not in s.mod_args                      # x not written
        assert 0 in s.ref_args and 1 in s.ref_args      # n, alpha read

    def test_transitive_through_calls(self):
        sums = summarize_source_file(parse_program(SRC))
        top = sums["top"]
        # top(a, b, n): mid writes y→b (pos 1), reads x→a (pos 0)
        assert 1 in top.mod_args
        assert 0 in top.ref_args
        assert 0 not in top.mod_args

    def test_common_effects(self):
        src = """
      subroutine w
      common /blk/ c
      c = 1.0
      end
      subroutine r(out)
      real out
      common /blk/ c
      out = c
      call w
      end
"""
        sums = summarize_source_file(parse_program(src))
        assert ("blk", "c") in sums["w"].mod_common
        assert ("blk", "c") in sums["r"].mod_common  # via the call
        assert ("blk", "c") in sums["r"].ref_common

    def test_unknown_callee_flags(self):
        src = """
      subroutine s(a)
      real a(10)
      call mystery(a)
      end
"""
        sums = summarize_source_file(parse_program(src))
        assert sums["s"].unknown

    def test_oracle_enables_parallelization(self):
        src = """
      subroutine caller(a, b, n)
      integer n
      real a(n), b(n)
      do i = 1, n
         call work(a(i), b(i))
      end do
      end
      subroutine work(x, y)
      real x, y
      y = x * 2.0
      end
"""
        sf = parse_program(src)
        sums = summarize_source_file(sf)
        oracle = effects_oracle(sums)
        unit = sf.units[0]
        build_symbol_table(unit)
        loop = next(s for s in unit.body if isinstance(s, F.DoLoop))
        # without the oracle, the call is opaque → not parallel
        g0 = build_dependence_graph(loop)
        assert not g0.is_parallel(0)
        # with the oracle the call reads a(i), writes b(i) → still
        # conservative because sections are unknown, but restricted to b
        g1 = build_dependence_graph(loop, effects=oracle)
        vars_carried = g1.variables_with_carried(0)
        assert "a" in vars_carried or "b" in vars_carried  # sections unknown


class TestConstProp:
    def test_all_sites_agree(self):
        src = """
      program main
      real a(100)
      call work(a, 100)
      call work(a, 100)
      end
      subroutine work(a, n)
      integer n
      real a(n)
      a(1) = 0.0
      end
"""
        sf = parse_program(src)
        got = propagate_constants(sf, "work", ["n"])
        assert got == {"n": 100}

    def test_disagreeing_sites(self):
        src = """
      program main
      real a(100)
      call work(a, 100)
      call work(a, 50)
      end
      subroutine work(a, n)
      integer n
      real a(n)
      a(1) = 0.0
      end
"""
        got = propagate_constants(parse_program(src), "work", ["n"])
        assert got == {}

    def test_parameter_resolution(self):
        src = """
      subroutine s
      parameter (m = 64)
      real a(m)
      a(1) = 0.0
      end
"""
        got = propagate_constants(parse_program(src), "s", ["m"])
        assert got == {"m": 64}

    def test_chained_through_caller(self):
        src = """
      program main
      parameter (n = 32)
      real a(n)
      k = n
      call work(a, k)
      end
      subroutine work(a, n)
      integer n
      real a(n)
      a(1) = 0.0
      end
"""
        got = propagate_constants(parse_program(src), "work", ["n"])
        assert got == {"n": 32}


class TestRuntimeTest:
    def _loop(self, src):
        sf = parse_program(src)
        u = sf.units[0]
        build_symbol_table(u)
        return next(s for s in u.body if isinstance(s, F.DoLoop))

    def test_linearized_pattern_recognized(self):
        loop = self._loop("""
      subroutine s(a, n, m)
      integer n, m
      real a(*)
      do j = 1, n
         do i = 1, m
            a(i + m * (j - 1)) = 0.0
         end do
      end do
      end
""")
        t = synthesize_runtime_test(loop)
        assert t is not None
        assert t.array == "a"
        # predicate mentions the stride symbol m
        names = {n.name for n in t.predicate.walk() if isinstance(n, F.Var)}
        assert "m" in names

    def test_constant_stride_not_needed(self):
        loop = self._loop("""
      subroutine s(a, n)
      integer n
      real a(*)
      do j = 1, n
         do i = 1, 8
            a(i + 8 * (j - 1)) = 0.0
         end do
      end do
      end
""")
        # constant strides are decidable at compile time: no runtime test
        assert synthesize_runtime_test(loop) is None

    def test_unrelated_loop_none(self):
        loop = self._loop("""
      subroutine s(a, n)
      integer n
      real a(n)
      do i = 1, n
         a(i) = 0.0
      end do
      end
""")
        assert synthesize_runtime_test(loop) is None
