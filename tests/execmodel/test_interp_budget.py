"""Interpreter step-budget guard: livelocks fail fast with a location."""

import numpy as np
import pytest

from repro.errors import (BudgetExceededError, InterpreterBudgetError,
                          InterpreterError)
from repro.execmodel.interp import Interpreter
from repro.fortran.parser import parse_program

SPIN = """
      subroutine spin(n)
      integer n
   10 n = n + 1
      if (n .gt. 0) goto 10
      end
"""

BOUNDED = """
      subroutine work(n, a)
      integer n
      real a(n)
      integer i
      do i = 1, n
         a(i) = a(i) * 2.0
      end do
      end
"""


def test_livelock_trips_budget_with_line():
    interp = Interpreter(parse_program(SPIN), step_budget=5000)
    with pytest.raises(InterpreterBudgetError) as exc:
        interp.call("spin", 1)
    assert "statement budget of 5000 exceeded" in str(exc.value)
    assert "line" in str(exc.value)
    assert exc.value.line is not None


def test_budget_error_is_both_interpreter_and_budget_error():
    assert issubclass(InterpreterBudgetError, InterpreterError)
    assert issubclass(InterpreterBudgetError, BudgetExceededError)


def test_budget_resets_between_calls():
    # two calls of ~n statements each must not trip a budget that one
    # call fits under — the counter is per-call, not per-interpreter
    interp = Interpreter(parse_program(BOUNDED), step_budget=2000)
    for _ in range(5):
        out = interp.call("work", 100, np.ones(100))
        assert np.all(out["a"] == 2.0)


def test_budget_disabled_with_none():
    interp = Interpreter(parse_program(BOUNDED), step_budget=None)
    interp.call("work", 50, np.ones(50))


def test_default_budget_is_generous():
    assert Interpreter.STEP_BUDGET >= 10_000_000
