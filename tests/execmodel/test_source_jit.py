"""The source-JIT engine tier (repro.execmodel.source_jit).

Bit-identity across engines is the golden suite's job
(test_engine_equivalence.py); this file pins the *mechanics*: which
loop shapes vectorize (whole nests, guarded bodies, reductions), which
are rejected (recurrences), that the restructurer's strip-mined
PARALLEL DO output is recognized, that emitted modules round-trip
through the jit-source cache, and that a poisoned module never breaks
execution — the engine falls back to the closure tier per list.
"""

import numpy as np
import pytest

from repro.engine import cached_parse, cached_restructure
from repro.engine import cache as cache_mod
from repro.execmodel.interp import Interpreter
from repro.workloads import validation_cases

CASES = validation_cases()

ELEM = """
      subroutine scale2(n, a, b)
      integer n, i, j
      real a(n,n), b(n,n)
      do 20 j = 1, n
         do 10 i = 1, n
            a(i,j) = b(i,j) * 2.0 + 1.0
   10    continue
   20 continue
      return
      end
"""

GUARD = """
      subroutine clip(n, a, b)
      integer n, i
      real a(n), b(n)
      do 10 i = 1, n
         if (b(i) .gt. 0.0) then
            a(i) = b(i)
         else
            a(i) = 0.0
         endif
   10 continue
      return
      end
"""

RED = """
      subroutine sums(n, x, s, lo)
      integer n, i
      real x(n), s, lo
      s = 0.0
      lo = x(1)
      do 10 i = 1, n
         s = s + x(i)
   10 continue
      do 20 i = 1, n
         lo = min(lo, x(i))
   20 continue
      return
      end
"""

RECUR = """
      subroutine scan(n, x)
      integer n, i
      real x(n)
      do 10 i = 2, n
         x(i) = x(i-1) + x(i)
   10 continue
      return
      end
"""

STENCIL = """
      subroutine relax(n, u, v)
      integer n, j
      real u(n), v(n)
      do 10 j = 2, n - 1
         v(j) = 0.5 * (u(j-1) + u(j+1))
   10 continue
      return
      end
"""


def _both(src, entry, *args, processors=1):
    """Run tree and source engines; return (tree_out, out, compiler)."""
    def fresh():
        return [np.copy(a) if isinstance(a, np.ndarray) else a
                for a in args]

    sf = cached_parse(src)
    tree = Interpreter(sf, processors=processors,
                       engine="tree").call(entry, *fresh())
    interp = Interpreter(sf, processors=processors, engine="source")
    out = interp.call(entry, *fresh())
    return tree, out, interp._compiler


def _assert_bits(tree, out):
    assert set(tree) == set(out)
    for k in tree:
        assert np.asarray(tree[k]).tobytes() \
            == np.asarray(out[k]).tobytes(), k


class TestVectorizedShapes:
    def test_whole_nest_broadcasts(self):
        b = np.arange(36.0).reshape(6, 6)
        tree, out, comp = _both(ELEM, "scale2", 6, np.zeros((6, 6)), b)
        _assert_bits(tree, out)
        assert comp.vectorized_loops == 1
        assert comp.source_stmts >= 1

    def test_guarded_body_uses_masked_lanes(self):
        b = np.linspace(-1.0, 1.0, 8)
        tree, out, comp = _both(GUARD, "clip", 8, np.zeros(8), b)
        _assert_bits(tree, out)
        assert comp.vectorized_loops == 1

    def test_sum_and_min_reductions(self):
        x = np.arange(9.0) - 4.0
        tree, out, comp = _both(RED, "sums", 9, x, 0.0, 0.0)
        _assert_bits(tree, out)
        assert comp.vectorized_loops == 2    # the + spine and the min

    def test_affine_stencil_with_disjoint_reads(self):
        """Reads at j-1/j+1 of an array *not* written in the loop are
        loop-invariant inputs — the offset subscripts vectorize."""
        u = np.arange(10.0)
        tree, out, comp = _both(STENCIL, "relax", 10, u, np.zeros(10))
        _assert_bits(tree, out)
        assert comp.vectorized_loops == 1


class TestRejectedShapes:
    def test_recurrence_falls_back_not_wrong(self):
        """x(i) = x(i-1) + x(i): the read mask differs from the write
        mask, so the proof rejects the loop; the tree semantics are
        replayed by the closure fallback."""
        x = np.arange(7.0) + 1.0
        tree, out, comp = _both(RECUR, "scan", 7, x)
        _assert_bits(tree, out)
        assert comp.vectorized_loops == 0
        assert comp.fallback_stmts >= 1

    def test_recurrent_workload_never_vectorizes(self):
        """tridag's sweeps are genuine recurrences end to end — the
        engine must not claim a single nest there."""
        case = CASES["tridag"]
        cedar, _ = cached_restructure(case.source)
        args, _ = case.make_args(case.n, np.random.default_rng(3))
        interp = Interpreter(cedar, processors=4, engine="source")
        interp.call(case.entry, *args)
        assert interp._compiler.vectorized_loops == 0


class TestRestructuredPrograms:
    """The generalized fast path must engage on the restructurer's own
    output — strip-mined PARALLEL DO nests, guards, reductions — not
    just on handwritten kernels.  These counts are the breadth
    regression guard: a silent narrowing of eligibility flips one to
    zero long before wall clocks move."""

    # every workload here gets at least one vectorized nest today
    EXPECTED_MIN = {"OCEAN": 2, "ARC2D": 2, "cg": 3, "sparse": 3,
                    "TRFD": 1, "MDG": 1}

    @pytest.mark.parametrize("wname", sorted(EXPECTED_MIN))
    def test_vectorizes_stripmined_output(self, wname):
        case = CASES[wname]
        cedar, _ = cached_restructure(case.source)
        args, _ = case.make_args(case.n, np.random.default_rng(3))
        interp = Interpreter(cedar, processors=4, engine="source")
        interp.call(case.entry, *args)
        assert interp._compiler.vectorized_loops \
            >= self.EXPECTED_MIN[wname], (
                f"{wname}: fast-path coverage narrowed to "
                f"{interp._compiler.vectorized_loops} nest(s)")


class TestModuleCache:
    @pytest.fixture
    def fresh_cache(self, monkeypatch, tmp_path):
        c = cache_mod.CompilationCache(cache_dir=tmp_path)
        monkeypatch.setattr(cache_mod, "_DEFAULT", c)
        return c

    def test_modules_served_from_cache(self, fresh_cache):
        sf = cached_parse(ELEM)
        b = np.arange(36.0).reshape(6, 6)
        Interpreter(sf, processors=1, engine="source").call(
            "scale2", 6, np.zeros((6, 6)), b)
        st = fresh_cache.stats()["by_kind"]["jit-source"]
        assert st["misses"] >= 1 and st["disk_writes"] >= 1
        # a second interpreter over the same program recompiles nothing
        Interpreter(sf, processors=1, engine="source").call(
            "scale2", 6, np.zeros((6, 6)), b)
        st = fresh_cache.stats()["by_kind"]["jit-source"]
        assert st["hits"] >= 1

    def test_poisoned_module_text_falls_back(self, fresh_cache):
        """A digest-valid but unparseable stored module (stale entry,
        hand-edited store) must not take the engine down: compile()
        fails, the list falls back to the closure tier, and results
        stay bit-identical."""
        fresh_cache.jit_source = \
            lambda source, *, fingerprint, emit: "this is not python ("
        case = CASES["cg"]
        cedar, _ = cached_restructure(case.source)
        args, _ = case.make_args(case.n, np.random.default_rng(3))
        tree = Interpreter(cedar, processors=4,
                           engine="tree").call(case.entry, *args)
        args2, _ = case.make_args(case.n, np.random.default_rng(3))
        interp = Interpreter(cedar, processors=4, engine="source")
        out = interp.call(case.entry, *args2)
        _assert_bits(tree, out)
        assert interp._compiler.source_stmts == 0
        assert interp._compiler.fallback_stmts >= 1

    def test_emitted_module_is_deterministic(self, fresh_cache):
        """Same statements + same symbol facts => byte-identical module
        text (the content address would otherwise be meaningless)."""
        sf = cached_parse(ELEM)
        texts = []
        orig = fresh_cache.jit_source

        def spy(source, *, fingerprint, emit):
            text = orig(source, fingerprint=fingerprint, emit=emit)
            texts.append(text)
            return text

        fresh_cache.jit_source = spy
        b = np.arange(36.0).reshape(6, 6)
        for _ in range(2):
            fresh_cache.clear()
            Interpreter(sf, processors=1, engine="source").call(
                "scale2", 6, np.zeros((6, 6)), b)
        unit_texts = [t for t in texts if "scale2" in t or True]
        assert len(unit_texts) >= 2
        assert unit_texts[0] == unit_texts[-1]


class TestEngineSelection:
    def test_validate_differential_accepts_source(self):
        from repro.validate.configs import PIPELINE_CONFIGS
        from repro.validate.differential import validate_workload

        case = CASES["cg"]
        res = validate_workload(
            case, {"automatic": PIPELINE_CONFIGS["automatic"]},
            seeds=[3], processors=[2], bisect=False, engine="source")
        assert all(c.status == "ok" for c in res.configs)
