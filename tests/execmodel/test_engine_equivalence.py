"""Golden equivalence suite: the compiled closure engine and the
source-JIT engine must be *bit-identical* to the tree-walking
interpreter — same dtypes, same bytes — on every workload,
restructurer configuration, and processor count.  This is the contract
that lets harnesses default to ``engine="compiled"`` and opt into
``engine="source"``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import cached_parse, cached_restructure
from repro.execmodel.interp import Interpreter
from repro.validate.configs import PIPELINE_CONFIGS
from repro.workloads import validation_cases

CASES = validation_cases()

#: the non-reference tiers, each proven against the tree walk
FAST_ENGINES = ("compiled", "source")


def assert_bit_identical(a: dict, b: dict, ctx: str) -> None:
    assert set(a) == set(b), f"{ctx}: result keys differ"
    for k in a:
        xa, xb = np.asarray(a[k]), np.asarray(b[k])
        assert xa.dtype == xb.dtype, \
            f"{ctx}/{k}: dtype {xa.dtype} != {xb.dtype}"
        assert xa.shape == xb.shape, \
            f"{ctx}/{k}: shape {xa.shape} != {xb.shape}"
        assert xa.tobytes() == xb.tobytes(), \
            f"{ctx}/{k}: values differ bitwise"


def _outputs(program, case, seed: int, processors: int,
             engine: str) -> dict:
    args, _ = case.make_args(case.n, np.random.default_rng(seed))
    return Interpreter(program, processors=processors,
                       engine=engine).call(case.entry, *args)


@pytest.mark.parametrize("engine", FAST_ENGINES)
@pytest.mark.parametrize("wname", sorted(CASES))
def test_sequential_originals_identical(wname, engine):
    case = CASES[wname]
    sf = cached_parse(case.source)
    tree = _outputs(sf, case, seed=3, processors=1, engine="tree")
    fast = _outputs(sf, case, seed=3, processors=1, engine=engine)
    assert_bit_identical(tree, fast, f"{wname}@sequential[{engine}]")


@pytest.mark.parametrize("engine", FAST_ENGINES)
@pytest.mark.parametrize("config", sorted(PIPELINE_CONFIGS))
@pytest.mark.parametrize("wname", sorted(CASES))
def test_restructured_programs_identical(wname, config, engine):
    case = CASES[wname]
    cedar, _ = cached_restructure(case.source,
                                  PIPELINE_CONFIGS[config]())
    for processors in (2, 8):
        tree = _outputs(cedar, case, seed=3, processors=processors,
                        engine="tree")
        fast = _outputs(cedar, case, seed=3, processors=processors,
                        engine=engine)
        assert_bit_identical(
            tree, fast, f"{wname}@{config}/P={processors}[{engine}]")


def test_track_multisets_match_baseline():
    """TRACK's outputs are order-sensitive (permutation_ok): every
    engine must produce the *same multiset* as the sequential original,
    and the same bytes as each other."""
    case = CASES["TRACK"]
    assert case.permutation_ok
    sf = cached_parse(case.source)
    cedar, _ = cached_restructure(case.source)
    base = _outputs(sf, case, seed=3, processors=1, engine="tree")
    for engine in ("tree",) + FAST_ENGINES:
        par = _outputs(cedar, case, seed=3, processors=8, engine=engine)
        assert set(par) == set(base)
        for k in base:
            xb, xp = np.asarray(base[k]), np.asarray(par[k])
            if xb.ndim:
                np.testing.assert_allclose(
                    np.sort(xp.ravel()), np.sort(xb.ravel()),
                    rtol=1e-3, atol=1e-4,
                    err_msg=f"TRACK[{engine}]/{k}: multiset diverged")


@pytest.mark.parametrize("engine", FAST_ENGINES)
def test_shadow_recorder_forces_tree_engine(engine):
    from repro.execmodel.shadow import ShadowRecorder

    case = CASES["tridag"]
    cedar, _ = cached_restructure(case.source)
    interp = Interpreter(cedar, processors=2, shadow=ShadowRecorder(),
                         engine=engine)
    assert interp.engine == "tree"


def test_unknown_engine_rejected():
    from repro.errors import InterpreterError

    case = CASES["tridag"]
    sf = cached_parse(case.source)
    with pytest.raises(InterpreterError):
        Interpreter(sf, engine="jit")


def test_engine_defaults_from_environment(monkeypatch):
    """An Interpreter built without an explicit engine resolves
    ``$REPRO_ENGINE`` — how sweeps pin a tier across worker
    processes."""
    case = CASES["tridag"]
    sf = cached_parse(case.source)
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert Interpreter(sf).engine == "tree"
    for engine in ("tree",) + FAST_ENGINES:
        monkeypatch.setenv("REPRO_ENGINE", engine)
        assert Interpreter(sf).engine == engine
    monkeypatch.setenv("REPRO_ENGINE", "bogus")
    from repro.errors import InterpreterError

    with pytest.raises(InterpreterError):
        Interpreter(sf)


# --- property test: equivalence holds across sampled inputs ----------------

_PROPERTY_WORKLOADS = ("tridag", "cg", "sparse")


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       wname=st.sampled_from(_PROPERTY_WORKLOADS),
       processors=st.sampled_from((1, 2, 5, 8)))
def test_engines_identical_on_sampled_inputs(seed, wname, processors):
    case = CASES[wname]
    cedar, _ = cached_restructure(case.source)
    tree = _outputs(cedar, case, seed=seed, processors=processors,
                    engine="tree")
    for engine in FAST_ENGINES:
        fast = _outputs(cedar, case, seed=seed, processors=processors,
                        engine=engine)
        assert_bit_identical(
            tree, fast, f"{wname}@seed={seed}/P={processors}[{engine}]")
