"""The tracing contract: cycle attribution never changes totals.

For every Table 1 routine (and a couple of Perfect proxies), the sum of
the :class:`CycleLedger` categories must equal the estimator's aggregate
cycle count to within 1e-6 relative — on both the serial original and the
restructured parallel program.  Running with ``trace=False`` must produce
the identical total with no ledger at all.
"""

import pytest

from repro.execmodel.perf import PerfEstimator
from repro.experiments.common import restructured_estimate, serial_estimate
from repro.fortran.parser import parse_program
from repro.machine.config import cedar_config1
from repro.restructurer.options import RestructurerOptions
from repro.workloads.linalg import LINALG_ROUTINES

REL_TOL = 1e-6
#: quick sizes: enough iterations to exercise scheduling/paging paths
SIZE = 48


def _rel_err(ledger_total: float, total: float) -> float:
    return abs(ledger_total - total) / max(abs(total), 1e-12)


@pytest.mark.parametrize("name", sorted(LINALG_ROUTINES))
def test_ledger_matches_total_serial(name):
    r = LINALG_ROUTINES[name]
    res = serial_estimate(r.source, r.entry, r.bindings(SIZE),
                          cedar_config1())
    assert res.ledger is not None
    assert _rel_err(res.ledger.total(), res.total) <= REL_TOL


@pytest.mark.parametrize("name", sorted(LINALG_ROUTINES))
def test_ledger_matches_total_restructured(name):
    r = LINALG_ROUTINES[name]
    res, _, _ = restructured_estimate(
        r.source, r.entry, r.bindings(SIZE), cedar_config1(),
        RestructurerOptions.automatic())
    assert res.ledger is not None
    assert _rel_err(res.ledger.total(), res.total) <= REL_TOL


@pytest.mark.parametrize("name", ["TRFD", "FLO52"])
def test_ledger_matches_total_perfect_proxies(name):
    from repro.workloads.perfect import PERFECT_PROGRAMS

    p = PERFECT_PROGRAMS[name]
    res, _, _ = restructured_estimate(
        p.source, p.entry, p.bindings(max(16, p.default_n // 4)),
        cedar_config1(), RestructurerOptions.manual())
    assert res.ledger is not None
    assert _rel_err(res.ledger.total(), res.total) <= REL_TOL


def test_untraced_total_identical_and_ledger_absent():
    r = LINALG_ROUTINES["cg"]
    sf = parse_program(r.source)
    traced = PerfEstimator(sf, cedar_config1(), prefetch=False,
                           serial_data_placement="cluster")
    untraced = PerfEstimator(parse_program(r.source), cedar_config1(),
                             prefetch=False,
                             serial_data_placement="cluster", trace=False)
    a = traced.estimate(r.entry, r.bindings(SIZE))
    b = untraced.estimate(r.entry, r.bindings(SIZE))
    assert b.total == a.total  # bit-identical: tracing never perturbs math
    assert a.ledger is not None and b.ledger is None


def test_breakdown_helper_shape():
    r = LINALG_ROUTINES["tridag"]
    res = serial_estimate(r.source, r.entry, r.bindings(SIZE),
                          cedar_config1())
    d = res.breakdown()
    assert d["total"] == pytest.approx(res.total, rel=REL_TOL)
    assert set(d["groups"]) == {"processor", "parallel_overhead",
                                "memory", "paging", "degradation"}


def test_parallel_attribution_sees_overhead_categories():
    """A restructured routine must show parallel-overhead cycles —
    the whole point of the attribution (startup dominates small loops)."""
    r = LINALG_ROUTINES["cg"]
    res, _, _ = restructured_estimate(
        r.source, r.entry, r.bindings(SIZE), cedar_config1(),
        RestructurerOptions.automatic())
    assert res.ledger.group_total("parallel_overhead") > 0
    assert res.ledger.group_total("processor") > 0
