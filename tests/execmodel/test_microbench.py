"""Interpreter microbenchmarks: the compiled closure engine must beat
the tree walk, and both must clear a statement-throughput floor that
pins the memoized-dispatch fast path (a regression to per-statement
isinstance ladders shows up here long before it shows up in CI wall
clock)."""

import time

import numpy as np

from repro.engine import cached_parse
from repro.execmodel.interp import Interpreter

# statement-heavy kernel: ~n^2 assignments with subscript arithmetic,
# branches, and intrinsic calls — exactly the dispatch-bound shape the
# closure compiler and the memoized handler tables target
KERNEL = """
      subroutine churn(n, a, b, s)
      integer n, i, j
      real a(n,n), b(n,n), s
      s = 0.0
      do 20 j = 1, n
         do 10 i = 1, n
            a(i,j) = b(i,j) * 2.0 + sqrt(abs(b(i,j)))
            if (a(i,j) .gt. 1.0) then
               a(i,j) = a(i,j) - 1.0
            endif
            s = s + a(i,j)
   10    continue
   20 continue
      return
      end
"""

N = 40


def _run(engine: str) -> tuple[float, dict]:
    sf = cached_parse(KERNEL)
    rng = np.random.default_rng(7)
    b = np.asarray(rng.standard_normal((N, N)), dtype=np.float64)
    best = float("inf")
    out = None
    for _ in range(3):                      # best-of-3 damps host noise
        a = np.zeros((N, N))
        interp = Interpreter(sf, processors=1, engine=engine)
        t0 = time.perf_counter()
        out = interp.call("churn", N, a, b.copy(), 0.0)
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_compiled_engine_beats_tree_walk():
    t_tree, out_tree = _run("tree")
    t_comp, out_comp = _run("compiled")
    # numerics first — a fast wrong answer is not a win
    assert np.array_equal(out_tree["a"], out_comp["a"])
    assert out_tree["s"] == out_comp["s"]
    # the closure engine consistently measures ~2x here; 10% margin
    # keeps the assertion robust on noisy CI hosts
    assert t_comp < t_tree * 0.9, (
        f"compiled engine not faster: {t_comp:.4f}s vs tree "
        f"{t_tree:.4f}s")


def test_tree_walk_throughput_floor():
    """The memoized dispatch tables keep the tree walk above a
    statements-per-second floor that the old isinstance ladder missed
    by a wide margin on slow hosts; set generously (5x below current
    measurements) to catch order-of-magnitude regressions only."""
    t_tree, _ = _run("tree")
    interp = Interpreter(cached_parse(KERNEL), processors=1,
                         engine="tree")
    rng = np.random.default_rng(7)
    b = np.asarray(rng.standard_normal((N, N)), dtype=np.float64)
    interp.call("churn", N, np.zeros((N, N)), b, 0.0)
    steps = interp._steps
    assert steps > N * N                    # the kernel really ran
    rate = steps / t_tree
    assert rate > 20_000, (
        f"tree-walk throughput collapsed: {rate:,.0f} stmt/s "
        f"({steps} steps in {t_tree:.4f}s)")


# vectorizable kernel: elementwise nest + guard — the shape the
# source-JIT tier lowers to whole-array NumPy instead of per-element
# closures.  Statement-heavy enough (3 stmts x n^2 lanes) that the
# closure tier's per-element dispatch dominates its runtime.
VEC_KERNEL = """
      subroutine smooth(n, a, b, c)
      integer n, i, j
      real a(n,n), b(n,n), c(n,n)
      do 20 j = 1, n
         do 10 i = 1, n
            c(i,j) = a(i,j) * 0.25 + b(i,j) * 0.75
            if (c(i,j) .lt. 0.0) then
               c(i,j) = 0.0
            endif
            b(i,j) = c(i,j) + a(i,j)
   10    continue
   20 continue
      return
      end
"""

VN = 64


def _run_warm(engine: str) -> tuple[float, dict, object]:
    """Best-of-5 *warm* call time: compilation (and JIT module
    emission) happens on a discarded warmup call, so this measures the
    execute path alone — the quantity the engine tiers differ on."""
    import os

    sf = cached_parse(VEC_KERNEL)
    rng = np.random.default_rng(7)
    a = np.asarray(rng.standard_normal((VN, VN)), dtype=np.float64)
    b = np.asarray(rng.standard_normal((VN, VN)), dtype=np.float64)
    interp = Interpreter(sf, processors=1, engine=engine)
    interp.call("smooth", VN, a, b.copy(), np.zeros((VN, VN)))
    best = float("inf")
    out = None
    for _ in range(5):
        t0 = time.perf_counter()
        out = interp.call("smooth", VN, a, b.copy(),
                          np.zeros((VN, VN)))
        best = min(best, time.perf_counter() - t0)
    return best, out, interp._compiler


def test_source_jit_beats_closure_tier_on_vectorizable_kernel():
    """The warm source-JIT floor: on a vectorizable nest the emitted
    NumPy module must beat the closure tier's per-element dispatch.

    Measured headroom is ~100-300x on development hosts; asserting 2x
    (t < 0.5 * closure) leaves two orders of magnitude of margin for
    noisy CI runners.  Set REPRO_SKIP_PERF_TESTS=1 to skip wall-clock
    assertions entirely on hosts too loaded to time anything (shared
    build boxes, heavily throttled containers)."""
    import os

    if os.environ.get("REPRO_SKIP_PERF_TESTS") == "1":
        import pytest

        pytest.skip("REPRO_SKIP_PERF_TESTS=1: host opted out of "
                    "wall-clock assertions")
    t_closure, out_closure, _ = _run_warm("compiled")
    t_source, out_source, comp = _run_warm("source")
    # numerics first — a fast wrong answer is not a win
    for k in out_closure:
        assert np.asarray(out_closure[k]).tobytes() \
            == np.asarray(out_source[k]).tobytes(), k
    # the fast path must actually have engaged, or the timing
    # comparison is closure-vs-closure and proves nothing
    assert comp.vectorized_loops >= 1
    assert t_source < t_closure * 0.5, (
        f"warm source-JIT not faster: {t_source * 1e3:.2f}ms vs "
        f"closure {t_closure * 1e3:.2f}ms")
