"""Property test: the interpreter's two intrinsic tables must agree.

The interpreter evaluates an intrinsic two ways: element-at-a-time with
the scalar callable from ``repro.fortran.intrinsics.INTRINSICS``, and
vectorized over array sections with the numpy equivalent from
``repro.execmodel.interp._NP_FUNCS``.  Any disagreement means the same
Fortran expression computes different values depending on whether the
restructurer vectorized the surrounding loop — exactly the class of bug
(``np.mod`` vs Fortran's truncating MOD) translation validation exists
to catch.  This test cross-checks every shared entry on random inputs,
with directed cases for the historically wrong ones.
"""

import math

import numpy as np
import pytest

from repro.execmodel.interp import _NP_FUNCS, Interpreter
from repro.fortran.intrinsics import INTRINSICS
from repro.fortran.parser import parse_program

RNG = np.random.default_rng(20260806)

#: per-intrinsic input domain: (low, high) for each argument draw
_DOMAINS = {
    "sqrt": (0.01, 100.0), "dsqrt": (0.01, 100.0),
    "log": (0.01, 100.0), "alog": (0.01, 100.0), "dlog": (0.01, 100.0),
    "log10": (0.01, 100.0), "alog10": (0.01, 100.0),
    "asin": (-1.0, 1.0), "acos": (-1.0, 1.0),
    "exp": (-5.0, 5.0), "dexp": (-5.0, 5.0),
    "sinh": (-5.0, 5.0), "cosh": (-5.0, 5.0), "tanh": (-5.0, 5.0),
}
_DEFAULT_DOMAIN = (-50.0, 50.0)

#: intrinsics that take (and return) integers
_INTEGER = {"iabs", "isign", "min0", "max0"}

SHARED = sorted(set(INTRINSICS) & set(_NP_FUNCS))


def _draw(name: str, nargs: int, *, integer: bool) -> list:
    lo, hi = _DOMAINS.get(name, _DEFAULT_DOMAIN)
    vals = []
    for _ in range(nargs):
        x = RNG.uniform(lo, hi)
        vals.append(int(round(x)) or 7 if integer else float(x))
    return vals


def _arity(name: str) -> int:
    lo, hi = INTRINSICS[name].arity
    return lo if hi == lo else 3  # exercise the n-ary forms with 3 args


@pytest.mark.parametrize("name", SHARED)
def test_scalar_vs_vector_agree(name):
    """INTRINSICS[name] on scalars == _NP_FUNCS[name] on 1-elem arrays."""
    scalar_fn = INTRINSICS[name].fn
    vector_fn = _NP_FUNCS[name]
    integer = name in _INTEGER
    nargs = _arity(name)
    for trial in range(200):
        args = _draw(name, nargs, integer=integer)
        if name in ("mod", "amod", "dmod") and args[1] == 0:
            continue
        want = scalar_fn(*args)
        got = vector_fn(*[np.asarray([a]) for a in args])
        got_val = np.asarray(got).ravel()[0]
        assert got_val == pytest.approx(want, rel=1e-12, abs=1e-12), (
            f"{name}{tuple(args)}: scalar {want} != vectorized {got_val}")


class TestDirectedCases:
    """The specific disagreements the tables historically had."""

    @pytest.mark.parametrize("a,b", [
        (-7, 3), (7, -3), (-7, -3), (-1, 5), (-10, 4),
        (-7.5, 3.0), (7.5, -3.0), (-7.5, -3.0), (-0.5, 2.0),
    ])
    def test_mod_truncates_toward_zero(self, a, b):
        # Fortran MOD(a, b) = a - INT(a/b)*b carries the *dividend*'s
        # sign; np.mod (floored) carries the divisor's and was wrong for
        # every negative-dividend case here.
        want = a - int(a / b) * b
        got = np.asarray(_NP_FUNCS["mod"](np.asarray([a]), np.asarray([b])))
        assert got.ravel()[0] == pytest.approx(want)
        assert INTRINSICS["mod"].fn(a, b) == pytest.approx(want)

    def test_sign_of_negative_zero_is_positive(self):
        # SIGN(a, -0.0) = +|a| in Fortran 77 (negative zero compares
        # equal to zero); np.copysign would return -|a|.
        got = np.asarray(_NP_FUNCS["sign"](np.asarray([3.0]),
                                           np.asarray([-0.0])))
        assert got.ravel()[0] == 3.0
        assert INTRINSICS["sign"].fn(3.0, -0.0) == 3.0

    def test_nary_min_max_do_not_clobber_third_arg(self):
        # np.minimum(a, b, c) treats c as out= — the third argument was
        # silently overwritten and its value returned unreduced.
        a, b, c = (np.asarray([5.0]), np.asarray([2.0]), np.asarray([8.0]))
        got = _NP_FUNCS["min"](a, b, c)
        assert np.asarray(got).ravel()[0] == 2.0
        assert c[0] == 8.0, "third argument must not be used as out="
        got = _NP_FUNCS["max"](a, b, c)
        assert np.asarray(got).ravel()[0] == 8.0

    def test_int_truncates_like_fortran(self):
        for x in (-2.7, -0.3, 0.3, 2.7):
            got = np.asarray(_NP_FUNCS["int"](np.asarray([x])))
            assert got.ravel()[0] == int(x)
            assert INTRINSICS["int"].fn(x) == int(x)

    def test_nint_rounds_half_away_from_zero(self):
        for x, want in ((2.5, 3), (-2.5, -3), (0.5, 1), (-0.5, -1)):
            got = np.asarray(_NP_FUNCS["nint"](np.asarray([x])))
            assert got.ravel()[0] == want
            assert INTRINSICS["nint"].fn(x) == want


class TestInterpreterPaths:
    """The same MOD expression through both interpreter code paths."""

    SRC = """
      subroutine modpath(n, a, b, r1, r2)
      integer n
      real a(n), b(n), r1(n), r2(n)
      integer i
      do i = 1, n
         r1(i) = mod(a(i), b(i))
      end do
      r2(1:n) = mod(a(1:n), b(1:n))
      end
"""

    def test_mod_scalar_and_section_paths_agree(self):
        n = 8
        a = np.array([-7.0, 7.0, -7.5, 7.5, -1.0, -10.0, 9.0, -3.0])
        b = np.array([3.0, -3.0, 3.0, -3.0, 5.0, 4.0, 2.0, -2.0])
        r1, r2 = np.zeros(n), np.zeros(n)
        res = Interpreter(parse_program(self.SRC), processors=1).call(
            "modpath", n, a, b, r1, r2)
        want = np.array([math.fmod(x, y) for x, y in zip(a, b)])
        assert np.allclose(res["r1"], want), "element-at-a-time path"
        assert np.allclose(res["r2"], want), "vectorized section path"
        assert np.allclose(res["r1"], res["r2"])
