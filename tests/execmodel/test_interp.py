"""Functional interpreter tests."""

import numpy as np
import pytest

from repro.cedar.nodes import ParallelDo
from repro.errors import InterpreterError
from repro.execmodel.interp import Interpreter
from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program


def run(src, name, *args, processors=4, inputs=None):
    it = Interpreter(parse_program(src), processors=processors,
                     inputs=inputs)
    return it.call(name, *args), it


class TestBasics:
    def test_scalar_arithmetic(self):
        res, _ = run("""
      subroutine s(x, y)
      real x, y
      y = x * 2.0 + 1.0
      end
""", "s", 3.0, 0.0)
        assert res["y"] == 7.0

    def test_integer_truncating_division(self):
        res, _ = run("""
      subroutine s(i, j)
      integer i, j
      j = i / 2
      end
""", "s", 7, 0)
        assert res["j"] == 3

    def test_array_in_place_modification(self):
        a = np.zeros(5)
        run("""
      subroutine s(n, a)
      integer n
      real a(n)
      integer i
      do i = 1, n
         a(i) = i * 1.0
      end do
      end
""", "s", 5, a)
        assert np.allclose(a, [1, 2, 3, 4, 5])

    def test_2d_arrays_fortran_order(self):
        a = np.zeros((3, 4), order="F")
        run("""
      subroutine s(n, m, a)
      integer n, m
      real a(n, m)
      integer i, j
      do j = 1, m
         do i = 1, n
            a(i, j) = i * 10.0 + j
         end do
      end do
      end
""", "s", 3, 4, a)
        assert a[0, 0] == 11.0 and a[2, 3] == 34.0

    def test_negative_step_loop(self):
        a = np.zeros(4)
        run("""
      subroutine s(n, a)
      integer n
      real a(n)
      integer i, k
      k = 0
      do i = n, 1, -1
         k = k + 1
         a(i) = k
      end do
      end
""", "s", 4, a)
        assert np.allclose(a, [4, 3, 2, 1])

    def test_goto_loop(self):
        res, _ = run("""
      subroutine s(x)
      real x
   10 continue
      x = x - 1.0
      if (x .gt. 0.5) goto 10
      end
""", "s", 5.2)
        assert res["x"] == pytest.approx(0.2, abs=1e-6)

    def test_computed_goto(self):
        res, _ = run("""
      subroutine s(k, out)
      integer k, out
      goto (10, 20, 30), k
      out = -1
      return
   10 out = 100
      return
   20 out = 200
      return
   30 out = 300
      end
""", "s", 2, 0)
        assert res["out"] == 200

    def test_if_elseif_else(self):
        for x, want in ((2.0, 1.0), (-2.0, -1.0), (0.0, 0.0)):
            res, _ = run("""
      subroutine s(x, sgn)
      real x, sgn
      if (x .gt. 0.0) then
         sgn = 1.0
      else if (x .lt. 0.0) then
         sgn = -1.0
      else
         sgn = 0.0
      end if
      end
""", "s", x, 9.0)
            assert res["sgn"] == want

    def test_stop_halts(self):
        res, _ = run("""
      subroutine s(x)
      real x
      x = 1.0
      stop
      x = 2.0
      end
""", "s", 0.0)
        assert res["x"] == 1.0

    def test_print_collects_output(self):
        _, it = run("""
      subroutine s(x)
      real x
      print *, x, x * 2.0
      end
""", "s", 3.0)
        assert it.outputs == [[3.0, 6.0]]

    def test_read_consumes_inputs(self):
        res, _ = run("""
      subroutine s(x)
      real x
      read *, x
      end
""", "s", 0.0, inputs=[42.0])
        assert res["x"] == 42.0

    def test_intrinsics(self):
        res, _ = run("""
      subroutine s(x, y)
      real x, y
      y = sqrt(abs(x)) + max(1.0, 2.0) + mod(7.0, 4.0)
      end
""", "s", -16.0, 0.0)
        assert res["y"] == pytest.approx(4.0 + 2.0 + 3.0)

    def test_out_of_bounds_raises(self):
        with pytest.raises(InterpreterError):
            run("""
      subroutine s(n, a)
      integer n
      real a(n)
      a(n + 1) = 0.0
      end
""", "s", 3, np.zeros(3))


class TestProceduresAndCommon:
    def test_subroutine_call_by_reference(self):
        res, _ = run("""
      subroutine callee(v)
      real v
      v = v + 10.0
      end
      subroutine s(x)
      real x
      call callee(x)
      end
""", "s", 1.0)
        assert res["x"] == 11.0

    def test_function_call(self):
        res, _ = run("""
      real function twice(v)
      real v
      twice = v * 2.0
      end
      subroutine s(x, y)
      real x, y
      y = twice(x) + 1.0
      end
""", "s", 4.0, 0.0)
        assert res["y"] == 9.0

    def test_array_element_actual_copy_back(self):
        a = np.zeros(3)
        run("""
      subroutine bump(v)
      real v
      v = v + 5.0
      end
      subroutine s(a)
      real a(3)
      call bump(a(2))
      end
""", "s", a)
        assert np.allclose(a, [0, 5, 0])

    def test_common_block_shared(self):
        res, _ = run("""
      subroutine setter
      common /blk/ c
      c = 99.0
      end
      subroutine s(out)
      real out
      common /blk/ c
      call setter
      out = c
      end
""", "s", 0.0)
        assert res["out"] == 99.0

    def test_parameter_constants(self):
        res, _ = run("""
      subroutine s(out)
      real out
      parameter (k = 5)
      real w(k)
      w(k) = 3.0
      out = w(k) + k
      end
""", "s", 0.0)
        assert res["out"] == 8.0

    def test_sequence_association_reshape(self):
        """1-D actual viewed as 2-D dummy (storage association)."""
        a = np.arange(1.0, 13.0)
        res, _ = run("""
      subroutine twod(m, n, b, out)
      integer m, n
      real b(m, n), out
      out = b(2, 3)
      end
      subroutine s(a, out)
      real a(12), out
      call twod(3, 4, a, out)
      end
""", "s", a, 0.0)
        assert res["out"] == 8.0  # column-major: b(2,3) = a(2 + 3*(3-1))


class TestCedarExecution:
    def test_xdoall_with_locals(self):
        src = """
      subroutine s(n, a, b)
      integer n
      real a(n), b(n)
      real t
      integer i
      do i = 1, n
         t = b(i) * 2.0
         a(i) = t
      end do
      end
"""
        from repro.api import restructure

        sf, _ = restructure(parse_program(src))
        a, b = np.zeros(20), np.arange(1.0, 21.0)
        Interpreter(sf, processors=8).call("s", 20, a, b)
        assert np.allclose(a, b * 2.0)

    def test_where_statement(self):
        from repro.cedar.nodes import WhereStmt

        sf = parse_program("""
      subroutine s(n, a, b)
      integer n
      real a(n), b(n)
      end
""")
        unit = sf.units[0]
        unit.body = [WhereStmt(
            mask=F.BinOp(".gt.", F.ArrayRef("b", [F.RangeExpr(None, None)]),
                         F.RealLit(0.0)),
            body=[F.Assign(
                target=F.ArrayRef("a", [F.RangeExpr(None, None)]),
                value=F.ArrayRef("b", [F.RangeExpr(None, None)]))],
            elsewhere=[F.Assign(
                target=F.ArrayRef("a", [F.RangeExpr(None, None)]),
                value=F.RealLit(-1.0))],
        )]
        a = np.zeros(4)
        b = np.array([1.0, -2.0, 3.0, -4.0])
        Interpreter(sf).call("s", 4, a, b)
        assert np.allclose(a, [1.0, -1.0, 3.0, -1.0])

    def test_parallel_do_worker_scopes(self):
        """Each simulated processor gets its own loop-local copy."""
        sf = parse_program("""
      subroutine s(n, a)
      integer n
      real a(n)
      end
""")
        unit = sf.units[0]
        body = [
            F.Assign(target=F.Var("t"),
                     value=F.BinOp("*", F.Var("i"), F.IntLit(2))),
            F.Assign(target=F.ArrayRef("a", [F.Var("i")]), value=F.Var("t")),
        ]
        unit.body = [ParallelDo(
            level="X", order="doall", var="i",
            start=F.IntLit(1), end=F.Var("n"),
            locals_=[F.TypeDecl(type=F.TypeSpec("real"),
                                entities=[F.EntityDecl("t")])],
            body=body,
        )]
        a = np.zeros(16)
        Interpreter(sf, processors=4).call("s", 16, a)
        assert np.allclose(a, np.arange(1, 17) * 2.0)

    def test_library_dotproduct(self):
        sf = parse_program("""
      subroutine s(n, a, b, out)
      integer n
      real a(n), b(n), out
      end
""")
        unit = sf.units[0]
        unit.body = [F.Assign(
            target=F.Var("out"),
            value=F.FuncCall("ces_dotproduct", [
                F.ArrayRef("a", [F.RangeExpr(F.IntLit(1), F.Var("n"))]),
                F.ArrayRef("b", [F.RangeExpr(F.IntLit(1), F.Var("n"))]),
            ]))]
        a = np.arange(1.0, 5.0)
        b = np.ones(4) * 2.0
        res = Interpreter(sf).call("s", 4, a, b, 0.0)
        assert res["out"] == pytest.approx(20.0)

    def test_library_linrec(self):
        sf = parse_program("""
      subroutine s(n, x, b, c)
      integer n
      real x(n), b(n), c(n)
      end
""")
        unit = sf.units[0]
        unit.body = [F.CallStmt(name="ces_linrec", args=[
            F.ArrayRef("x", [F.RangeExpr(F.IntLit(2), F.Var("n"))]),
            F.ArrayRef("b", [F.RangeExpr(F.IntLit(2), F.Var("n"))]),
            F.ArrayRef("c", [F.RangeExpr(F.IntLit(2), F.Var("n"))]),
        ])]
        n = 6
        x = np.zeros(n)
        x[0] = 1.0
        b = np.full(n, 0.5)
        c = np.arange(1.0, n + 1.0)
        Interpreter(sf).call("s", n, x, b, c)
        expect = x.copy()
        for i in range(1, n):
            expect[i] = expect[i - 1] * b[i] + c[i]
        assert np.allclose(x, expect)
