"""Performance estimator tests: structural properties of the cost model."""

import pytest

from repro.api import restructure
from repro.execmodel.perf import PerfEstimator
from repro.fortran.parser import parse_program
from repro.machine.config import alliant_fx80, cedar_config1
from repro.restructurer.options import RestructurerOptions

SAXPY = """
      subroutine saxpy(n, a, x, y)
      integer n
      real a, x(n), y(n)
      integer i
      do i = 1, n
         y(i) = y(i) + a * x(i)
      end do
      end
"""


def serial_est(src, entry, bindings, machine=None, **kw):
    return PerfEstimator(parse_program(src), machine or cedar_config1(),
                         **kw).estimate(entry, bindings)


def parallel_est(src, entry, bindings, machine=None,
                 options=None, **kw):
    sf, _ = restructure(parse_program(src), options)
    return PerfEstimator(sf, machine or cedar_config1(),
                         **kw).estimate(entry, bindings)


class TestBasics:
    def test_cost_scales_with_size(self):
        small = serial_est(SAXPY, "saxpy", {"n": 100})
        big = serial_est(SAXPY, "saxpy", {"n": 10000})
        assert big.total > small.total * 50

    def test_parallel_beats_serial_at_scale(self):
        ser = serial_est(SAXPY, "saxpy", {"n": 100000})
        par = parallel_est(SAXPY, "saxpy", {"n": 100000})
        assert ser.total / par.total > 8

    def test_parallel_overhead_dominates_tiny_loops(self):
        """XDOALL startup (≈1700 cycles) makes a 10-trip loop not worth
        spreading — the paper's Cedar-auto-below-1 effect."""
        src = SAXPY.replace("do i = 1, n", "do i = 1, 10")
        ser = serial_est(src, "saxpy", {"n": 10})
        # force the parallel form regardless of planner judgement
        from repro.restructurer.options import RestructurerOptions

        sf, rep = restructure(parse_program(src))
        # if the planner kept it serial (it should), the times match;
        # the point stands either way: no big win on 10 trips
        par = PerfEstimator(sf, cedar_config1()).estimate("saxpy", {"n": 10})
        assert par.total > ser.total * 0.5

    def test_placement_matters(self):
        ser_cluster = serial_est(SAXPY, "saxpy", {"n": 10000},
                                 serial_data_placement="cluster")
        ser_global = serial_est(SAXPY, "saxpy", {"n": 10000},
                                serial_data_placement="global")
        assert ser_global.total > ser_cluster.total  # scalar global is slow

    def test_prefetch_helps_parallel_global_streams(self):
        on = parallel_est(SAXPY, "saxpy", {"n": 100000}, prefetch=True)
        off = parallel_est(SAXPY, "saxpy", {"n": 100000}, prefetch=False)
        assert on.total < off.total

    def test_fx80_vs_cedar_startups(self):
        """A small XDOALL starts far cheaper on the FX/80 (one cluster, no
        cross-cluster wakeup through global memory)."""
        from repro.cedar.nodes import ParallelDo
        from repro.fortran import ast_nodes as F

        sf = parse_program(SAXPY)
        unit = sf.units[0]
        loop = unit.body[0]
        unit.body = [ParallelDo(level="X", order="doall", var=loop.var,
                                start=F.IntLit(1), end=F.IntLit(64),
                                body=loop.body)]
        cedar = PerfEstimator(sf, cedar_config1()).estimate("saxpy", {"n": 64})
        fx = PerfEstimator(sf, alliant_fx80()).estimate("saxpy", {"n": 64})
        assert fx.total < cedar.total


class TestPaging:
    SRC = """
      subroutine big(n, a, b)
      integer n
      real a(n, n), b(n, n)
      integer i, j
      do j = 1, n
         do i = 1, n
            b(i, j) = a(i, j) * 2.0
         end do
      end do
      end
"""

    def test_thrashing_kicks_in_past_capacity(self):
        """Two n×n matrices: 2×8 MB at n=1000 exceed the 16 MB cluster's
        usable memory (the mprove effect)."""
        small = serial_est(self.SRC, "big", {"n": 800})
        large = serial_est(self.SRC, "big", {"n": 1100})
        # thrashing adds orders of magnitude, not the ~1.9x of pure work
        assert large.page_overhead > 0
        assert small.page_overhead == 0
        assert large.total / small.total > 10

    def test_global_memory_avoids_thrash(self):
        par = parallel_est(self.SRC, "big", {"n": 1100})
        assert par.page_overhead == 0


class TestProfiles:
    def test_traffic_accounted(self):
        res = parallel_est(SAXPY, "saxpy", {"n": 10000})
        assert res.profile.global_elems > 10000  # x and y streams

    def test_saturation_slows_constrained_bandwidth(self):
        """Tightening the global bandwidth must slow a streaming loop."""
        from dataclasses import replace as dc_replace

        sf, _ = restructure(parse_program(SAXPY))
        wide = PerfEstimator(sf, cedar_config1()).estimate(
            "saxpy", {"n": 200000}).total
        narrow_cfg = dc_replace(cedar_config1(), global_bandwidth=0.5)
        narrow = PerfEstimator(sf, narrow_cfg).estimate(
            "saxpy", {"n": 200000}).total
        assert narrow > wide * 1.5


class TestBranchDecision:
    def test_two_version_condition_decided(self):
        """A runtime-test IF with bindings that satisfy the predicate must
        be charged as the parallel arm, not the average."""
        src = """
      subroutine rt(ni, nj, lda, w, d)
      integer ni, nj, lda
      real w(*), d(ni)
      integer i, j
      do j = 1, nj
         do i = 1, ni
            w(i + lda * (j - 1)) = w(i + lda * (j - 1)) + d(i)
         end do
      end do
      end
"""
        opts = RestructurerOptions.manual()
        sf, rep = restructure(parse_program(src), opts)
        plans = [p.chosen for u in rep.units.values() for p in u.plans]
        assert "runtime-two-version" in plans
        good = PerfEstimator(sf, cedar_config1()).estimate(
            "rt", {"ni": 512, "nj": 512, "lda": 512})
        # lda < ni: rows alias, the serial arm runs
        bad = PerfEstimator(sf, cedar_config1()).estimate(
            "rt", {"ni": 512, "nj": 512, "lda": 100})
        assert good.total < bad.total
