"""--jobs / --cache-dir across the three sweep CLIs: byte-identical
payloads, shared exit-code convention on parallel failure paths."""

import json

import pytest


def _validate(args, tmp_path, name):
    from repro.validate.__main__ import main

    out = tmp_path / name
    rc = main(["tridag", "--no-bisect", *args, "-o", str(out)])
    return rc, out.read_bytes() if out.exists() else b""


def _faults(args, tmp_path, name):
    from repro.faults.__main__ import main

    out = tmp_path / name
    rc = main(["sweep", "--quick", "--workloads", "tridag",
               "--scenarios", "healthy", "dead-ce", *args,
               "-o", str(out)])
    return rc, out.read_bytes() if out.exists() else b""


class TestByteIdentity:
    def test_validate_serial_parallel_identical(self, tmp_path, capsys):
        rc1, b1 = _validate(["--jobs", "1"], tmp_path, "j1.json")
        rc2, b2 = _validate(["--jobs", "2"], tmp_path, "j2.json")
        assert rc1 == rc2 == 0
        assert b1 == b2

    def test_faults_serial_parallel_identical(self, tmp_path, capsys):
        rc1, b1 = _faults(["--jobs", "1"], tmp_path, "j1.json")
        rc2, b2 = _faults(["--jobs", "2"], tmp_path, "j2.json")
        assert rc1 == rc2 == 0
        assert b1 == b2

    def test_experiments_serial_parallel_identical(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table1", "--quick", "--json", "--jobs", "1"]) == 0
        out1 = capsys.readouterr().out
        assert main(["table1", "--quick", "--json", "--jobs", "2"]) == 0
        out2 = capsys.readouterr().out
        assert out1 == out2
        assert json.loads(out1)["schema"] == "repro-experiment/1"


class TestCacheDirFlag:
    def test_validate_populates_and_reuses_store(self, tmp_path, capsys):
        store = tmp_path / "store"
        rc, _ = _validate(["--cache-dir", str(store)], tmp_path, "a.json")
        assert rc == 0
        entries = list(store.rglob("*.pkl"))
        assert entries, "cache store not populated"
        # second run over the same store must not add entries
        rc, _ = _validate(["--cache-dir", str(store)], tmp_path, "b.json")
        assert rc == 0
        assert list(store.rglob("*.pkl")) == entries

    def test_cache_dir_payloads_identical_to_uncached(self, tmp_path,
                                                      capsys, monkeypatch):
        _, plain = _validate([], tmp_path, "plain.json")
        monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
        _, cold = _validate([], tmp_path, "cold.json")
        monkeypatch.delenv("REPRO_CACHE_DISABLE")
        _, warm = _validate(["--cache-dir", str(tmp_path / "s")],
                            tmp_path, "warm.json")
        assert plain == cold == warm


class TestParallelFailurePaths:
    """Exit-code map coverage when cells fail under --jobs N."""

    def test_validate_watchdog_fault_exits_3(self, tmp_path, capsys):
        rc, raw = _validate(["--jobs", "2", "--timeout", "0.000001"],
                            tmp_path, "t.json")
        assert rc == 3
        payload = json.loads(raw)
        assert payload["faults"]
        assert payload["faults"][0]["kind"] == "timeout"
        # the crashed workload still has a schema-valid entry
        [w] = payload["workloads"]
        assert all(c["status"] == "error" for c in w["configs"])

    def test_faults_watchdog_fault_exits_3(self, tmp_path, capsys):
        rc, raw = _faults(["--jobs", "2", "--timeout", "0.000001"],
                          tmp_path, "t.json")
        assert rc == 3
        payload = json.loads(raw)
        assert payload["summary"]["harness_faults"] >= 1

    def test_experiments_fault_exits_3_and_reports(self, capsys):
        from repro.experiments.__main__ import main

        rc = main(["table1", "--quick", "--json", "--jobs", "2",
                   "--keep-going", "--timeout", "0.000001"])
        assert rc == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["faults"]
        assert payload["faults"][0]["kind"] == "timeout"

    def test_usage_errors_still_exit_2(self, capsys):
        from repro.experiments.__main__ import main as exp_main

        assert exp_main(["no-such-experiment", "--jobs", "2"]) == 2

    def test_bad_jobs_value_is_usage_error(self, capsys):
        from repro.validate.__main__ import main

        with pytest.raises(SystemExit) as exc:
            main(["tridag", "--jobs", "many"])
        assert exc.value.code == 2


class TestLoggingByteIdentity:
    """Structured logging must be observational only: payload bytes do
    not change whether it's off, on via --log-level, or on via
    $REPRO_LOG, serial or parallel."""

    def _logged(self, extra, tmp_path, name, env=None, monkeypatch=None):
        if env:
            for k, v in env.items():
                monkeypatch.setenv(k, v)
        try:
            return _validate(extra, tmp_path, name)
        finally:
            if env and monkeypatch:
                for k in env:
                    monkeypatch.delenv(k, raising=False)

    def test_validate_flag_logging_identical(self, tmp_path, capsys):
        rc1, plain = _validate(["--jobs", "2"], tmp_path, "off.json")
        rc2, logged = _validate(
            ["--jobs", "2", "--log-level", "debug"], tmp_path, "on.json")
        assert rc1 == rc2 == 0
        assert plain == logged
        assert plain, "payload unexpectedly empty"

    def test_validate_env_logging_identical(self, tmp_path, capsys,
                                            monkeypatch):
        rc1, plain = _validate([], tmp_path, "off.json")
        rc2, logged = self._logged(
            [], tmp_path, "env.json", monkeypatch=monkeypatch,
            env={"REPRO_LOG": "debug",
                 "REPRO_LOG_FILE": str(tmp_path / "log.jsonl")})
        assert rc1 == rc2 == 0
        assert plain == logged
        # the env run actually logged something
        assert (tmp_path / "log.jsonl").read_text().strip()

    def test_faults_logging_identical(self, tmp_path, capsys):
        rc1, plain = _faults(["--jobs", "2"], tmp_path, "off.json")
        rc2, logged = _faults(
            ["--jobs", "2", "--log-level", "debug"], tmp_path, "on.json")
        assert rc1 == rc2 == 0
        assert plain == logged

    def test_log_sink_lands_in_telemetry_dir(self, tmp_path, capsys):
        telem = tmp_path / "telem"
        rc, _ = _validate(["--log-level", "info",
                           "--telemetry", str(telem)],
                          tmp_path, "t.json")
        assert rc == 0
        assert (telem / "log.jsonl").exists()
        import json as _json

        events = [_json.loads(ln) for ln in
                  (telem / "log.jsonl").read_text().splitlines()]
        assert any(e["event"] == "workload_done" for e in events)
