"""The content-addressed compilation cache (repro.engine.cache)."""

import numpy as np
import pytest

from repro.engine.cache import (
    CompilationCache,
    content_key,
    options_fingerprint,
)
from repro.restructurer.options import RestructurerOptions

SRC = """
      subroutine axpy(n, a, x, y)
      integer n, i
      real a, x(n), y(n)
      do 10 i = 1, n
         y(i) = y(i) + a * x(i)
   10 continue
      return
      end
"""

SRC2 = SRC.replace("axpy", "axpy2")


class TestContentKey:
    def test_deterministic(self):
        assert content_key("parse", SRC) == content_key("parse", SRC)

    def test_source_sensitive(self):
        assert content_key("parse", SRC) != content_key("parse", SRC2)

    def test_kind_sensitive(self):
        assert content_key("parse", SRC) != content_key("restructure", SRC)

    def test_fingerprint_sensitive(self):
        fp = options_fingerprint(
            RestructurerOptions(loop_interchange=False))
        assert content_key("restructure", SRC) \
            != content_key("restructure", SRC, fp)

    def test_no_concatenation_collisions(self):
        # the parts are length-delimited, not concatenated
        assert content_key("ab", "c") != content_key("a", "bc")


class TestOptionsFingerprint:
    def test_none_equals_defaults(self):
        assert options_fingerprint(None) \
            == options_fingerprint(RestructurerOptions())

    def test_distinguishes_options(self):
        assert options_fingerprint(RestructurerOptions()) \
            != options_fingerprint(
                RestructurerOptions(loop_interchange=False))


class TestMemoryCache:
    def test_parse_memoized_and_shared(self):
        c = CompilationCache()
        a = c.parse(SRC)
        b = c.parse(SRC)
        assert a is b
        assert c.hits == 1 and c.misses == 1

    def test_mutable_parse_returns_fresh_clone(self):
        c = CompilationCache()
        a = c.parse(SRC, mutable=True)
        b = c.parse(SRC, mutable=True)
        assert a is not b
        assert a.units[0] is not b.units[0]

    def test_restructure_pair_shared(self):
        c = CompilationCache()
        pair_a = c.restructure(SRC)
        pair_b = c.restructure(SRC)
        assert pair_a[0] is pair_b[0] and pair_a[1] is pair_b[1]

    def test_restructure_keyed_on_options(self):
        c = CompilationCache()
        a, _ = c.restructure(SRC)
        b, _ = c.restructure(
            SRC, RestructurerOptions(loop_interchange=False))
        assert a is not b

    def test_disabled_cache_recomputes(self):
        c = CompilationCache(enabled=False)
        assert c.parse(SRC) is not c.parse(SRC)
        assert c.hits == 0 and c.misses == 0

    def test_clear_drops_memory(self):
        c = CompilationCache()
        a = c.parse(SRC)
        c.clear()
        assert c.parse(SRC) is not a


class TestDiskCache:
    def test_second_instance_hits_disk(self, tmp_path):
        c1 = CompilationCache(cache_dir=tmp_path)
        c1.restructure(SRC)
        assert c1.disk_writes >= 1
        c2 = CompilationCache(cache_dir=tmp_path)
        c2.restructure(SRC)
        assert c2.disk_hits >= 1 and c2.misses == 0

    def test_disk_artifact_is_usable(self, tmp_path):
        from repro.execmodel.interp import Interpreter

        CompilationCache(cache_dir=tmp_path).restructure(SRC)
        cedar, report = CompilationCache(
            cache_dir=tmp_path).restructure(SRC)
        x = np.arange(1.0, 5.0)
        y = np.ones(4)
        out = Interpreter(cedar, processors=2).call(
            "axpy", 4, 2.0, x, y)
        assert np.allclose(out["y"], 1.0 + 2.0 * x)

    def test_torn_disk_entry_recomputes(self, tmp_path):
        c1 = CompilationCache(cache_dir=tmp_path)
        c1.parse(SRC)
        for p in tmp_path.rglob("*.pkl"):
            p.write_bytes(b"not a pickle")
        c2 = CompilationCache(cache_dir=tmp_path)
        sf = c2.parse(SRC)      # must not raise
        assert sf.units and c2.misses == 1

    def test_readonly_dir_degrades_to_memory(self, tmp_path):
        ro = tmp_path / "ro"
        ro.mkdir()
        ro.chmod(0o500)
        try:
            c = CompilationCache(cache_dir=ro)
            a = c.parse(SRC)    # disk write fails silently
            assert c.parse(SRC) is a
        finally:
            ro.chmod(0o700)


class TestDiskIntegrity:
    """On-disk entries carry a SHA-256 payload digest verified on every
    read; a corrupt entry is quarantined and reported, never trusted."""

    def _entry(self, tmp_path):
        [p] = list(tmp_path.rglob("*.pkl"))
        return p

    def test_entry_carries_verifiable_digest(self, tmp_path):
        import hashlib

        CompilationCache(cache_dir=tmp_path).parse(SRC)
        data = self._entry(tmp_path).read_bytes()
        digest, payload = data[:64], data[65:]
        assert data[64:65] == b"\n"
        assert hashlib.sha256(payload).hexdigest().encode() == digest

    def test_flipped_bit_is_quarantined_not_served(self, tmp_path):
        CompilationCache(cache_dir=tmp_path).parse(SRC)
        p = self._entry(tmp_path)
        data = bytearray(p.read_bytes())
        data[-1] ^= 0xFF                  # bit rot in the payload
        p.write_bytes(bytes(data))
        c2 = CompilationCache(cache_dir=tmp_path)
        sf = c2.parse(SRC)                # recomputes, must not raise
        assert sf.units
        st = c2.stats()["by_kind"]["parse"]
        assert st["misses"] == 1 and st["corrupt"] == 1
        # the damaged bytes were moved aside, and the recompute
        # republished a fresh, verifiable entry at the original path
        assert p.with_suffix(".quarantine").exists()
        assert CompilationCache(
            cache_dir=p.parents[1]).parse(SRC).units

    def test_truncated_entry_is_quarantined(self, tmp_path):
        CompilationCache(cache_dir=tmp_path).parse(SRC)
        p = self._entry(tmp_path)
        p.write_bytes(p.read_bytes()[:80])   # torn write
        c2 = CompilationCache(cache_dir=tmp_path)
        assert c2.parse(SRC).units
        assert c2.stats()["by_kind"]["parse"]["corrupt"] == 1
        assert p.with_suffix(".quarantine").exists()

    def test_quarantined_entry_not_retried(self, tmp_path):
        CompilationCache(cache_dir=tmp_path).parse(SRC)
        p = self._entry(tmp_path)
        p.write_bytes(b"garbage")
        CompilationCache(cache_dir=tmp_path).parse(SRC)
        # the rewrite after quarantine publishes a fresh valid entry
        c3 = CompilationCache(cache_dir=tmp_path)
        c3.parse(SRC)
        st = c3.stats()["by_kind"]["parse"]
        assert st["corrupt"] == 0 and st["disk_hits"] == 1

    def test_corruption_counter_in_registry(self, tmp_path):
        CompilationCache(cache_dir=tmp_path).parse(SRC)
        p = self._entry(tmp_path)
        p.write_bytes(b"garbage")
        c2 = CompilationCache(cache_dir=tmp_path)
        c2.parse(SRC)
        snap = c2.metrics.snapshot()
        got = [m["value"] for m in snap["counters"]
               if m["name"] == "repro_cache_corrupt_total"
               and m["labels"]["kind"] == "parse"]
        assert got == [1]

    def test_disk_error_hook_fires_on_io_failure(self, tmp_path):
        # a path whose parent is a regular file fails with an OSError
        # on every open/mkdir — even running as root (unlike chmod)
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        seen = []
        c = CompilationCache(cache_dir=blocker / "cache")
        c.disk_error_hook = seen.append
        a = c.parse(SRC)                  # store fails -> hook fires
        assert c.parse(SRC) is a          # memory path still serves
        assert seen and all(isinstance(e, OSError) for e in seen)

    def test_hook_not_fired_on_plain_miss(self, tmp_path):
        seen = []
        c = CompilationCache(cache_dir=tmp_path)
        c.disk_error_hook = seen.append
        c.parse(SRC)                      # cold miss + clean write
        assert seen == []


class TestPerKindAccounting:
    """stats() breaks hits/misses down per artifact kind, backed by the
    registry counters that also feed the telemetry artifact."""

    def test_stats_by_kind_breakdown(self, tmp_path):
        c = CompilationCache(cache_dir=tmp_path)
        c.parse(SRC)
        c.parse(SRC)
        c.restructure(SRC)
        st = c.stats()
        by = st["by_kind"]
        assert set(by) == {"parse", "restructure", "jit-source"}
        assert by["parse"]["hits"] >= 1 and by["parse"]["misses"] == 1
        assert by["restructure"]["misses"] == 1
        assert by["restructure"]["disk_writes"] >= 1
        assert by["restructure"]["disk_bytes_written"] > 0
        # the aggregate properties are the per-kind sums
        assert st["hits"] == sum(k["hits"] for k in by.values())
        assert st["misses"] == sum(k["misses"] for k in by.values())

    def test_disk_hit_counts_bytes_read(self, tmp_path):
        CompilationCache(cache_dir=tmp_path).parse(SRC)
        c2 = CompilationCache(cache_dir=tmp_path)
        c2.parse(SRC)
        by = c2.stats()["by_kind"]["parse"]
        assert by["disk_hits"] == 1
        assert by["disk_bytes_read"] > 0

    def test_metrics_registry_sees_requests(self):
        c = CompilationCache()
        c.parse(SRC)
        c.parse(SRC)
        snap = c.metrics.snapshot()
        got = {(m["labels"]["kind"], m["labels"]["result"]): m["value"]
               for m in snap["counters"]
               if m["name"] == "repro_cache_requests_total"}
        assert got[("parse", "hit")] == 1
        assert got[("parse", "miss")] == 1


class TestProcessWideConfiguration:
    def test_configure_and_env(self, tmp_path, monkeypatch):
        from repro.engine import cache as mod

        monkeypatch.setattr(mod, "_DEFAULT", None)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        c = mod.get_cache()
        assert c.cache_dir == tmp_path
        assert mod.cached_parse(SRC) is mod.cached_parse(SRC)
        assert mod.cache_stats()["hits"] == 1

    def test_env_disable(self, monkeypatch):
        from repro.engine import cache as mod

        monkeypatch.setattr(mod, "_DEFAULT", None)
        monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
        assert mod.get_cache().enabled is False

    def test_configure_overrides(self, monkeypatch):
        from repro.engine import cache as mod

        monkeypatch.setattr(mod, "_DEFAULT", None)
        c = mod.configure(enabled=True)
        assert c.enabled and mod.get_cache() is c


@pytest.mark.parametrize("opts", [None, RestructurerOptions(
    scalar_expansion=False)])
def test_cached_restructure_matches_uncached(opts):
    """Cache hits must be semantically identical to recomputation."""
    from repro.fortran.parser import parse_program
    from repro.restructurer.pipeline import Restructurer

    cache = CompilationCache()
    cached, _ = cache.restructure(SRC, opts)
    cached2, _ = cache.restructure(SRC, opts)   # the hit
    fresh, _ = Restructurer(opts).run(parse_program(SRC))
    assert cached is cached2
    assert str(cached.units[0].name) == str(fresh.units[0].name)
    from repro.execmodel.interp import Interpreter

    x = np.arange(1.0, 7.0)
    args = (6, 3.0, x, np.zeros(6))
    out_c = Interpreter(cached, processors=4).call("axpy", *args)
    out_f = Interpreter(fresh, processors=4).call("axpy", *args)
    assert np.array_equal(out_c["y"], out_f["y"])


class TestJitSourceArtifacts:
    """The jit-source artifact kind: emitted module text, content-keyed
    on the statement dump + codegen fingerprint, digest-verified on
    disk, quarantined and re-emitted when corrupt."""

    DUMP = "Assign(target=x, value=1)"
    FP = "jit1|unit|x:r"

    def _emitter(self, calls, text="OUT = [lambda rt: None]\n"):
        def emit():
            calls.append(1)
            return text
        return emit

    def test_memoized_per_dump_and_fingerprint(self):
        c = CompilationCache()
        calls = []
        a = c.jit_source(self.DUMP, fingerprint=self.FP,
                         emit=self._emitter(calls))
        b = c.jit_source(self.DUMP, fingerprint=self.FP,
                         emit=self._emitter(calls))
        assert a == b and len(calls) == 1
        assert c.stats()["by_kind"]["jit-source"]["hits"] == 1
        # a different fingerprint (other symbol types) re-emits
        c.jit_source(self.DUMP, fingerprint="jit1|unit|x:i",
                     emit=self._emitter(calls))
        assert len(calls) == 2

    def test_disabled_cache_always_emits(self):
        c = CompilationCache(enabled=False)
        calls = []
        c.jit_source(self.DUMP, fingerprint=self.FP,
                     emit=self._emitter(calls))
        c.jit_source(self.DUMP, fingerprint=self.FP,
                     emit=self._emitter(calls))
        assert len(calls) == 2

    def test_disk_round_trip_skips_emitter(self, tmp_path):
        calls = []
        c1 = CompilationCache(cache_dir=tmp_path)
        c1.jit_source(self.DUMP, fingerprint=self.FP,
                      emit=self._emitter(calls))
        assert c1.stats()["by_kind"]["jit-source"]["disk_writes"] == 1
        c2 = CompilationCache(cache_dir=tmp_path)
        text = c2.jit_source(self.DUMP, fingerprint=self.FP,
                             emit=self._emitter(calls))
        assert text == "OUT = [lambda rt: None]\n"
        assert len(calls) == 1          # served from disk, not re-emitted
        assert c2.stats()["by_kind"]["jit-source"]["disk_hits"] == 1

    def test_corrupt_module_quarantined_then_recompiled(self, tmp_path):
        """Bit rot in a stored JIT module must never be served: the
        digest check quarantines the entry and the engine falls back to
        recompilation (a fresh emit), republishing a valid artifact."""
        calls = []
        c1 = CompilationCache(cache_dir=tmp_path)
        c1.jit_source(self.DUMP, fingerprint=self.FP,
                      emit=self._emitter(calls))
        [p] = list(tmp_path.rglob("*.pkl"))
        data = bytearray(p.read_bytes())
        data[-1] ^= 0xFF                     # flip a payload bit
        p.write_bytes(bytes(data))
        c2 = CompilationCache(cache_dir=tmp_path)
        text = c2.jit_source(self.DUMP, fingerprint=self.FP,
                             emit=self._emitter(calls))
        assert text == "OUT = [lambda rt: None]\n"
        assert len(calls) == 2               # recompiled, not served
        st = c2.stats()["by_kind"]["jit-source"]
        assert st["corrupt"] == 1 and st["misses"] == 1
        assert p.with_suffix(".quarantine").exists()
        # the re-emit republished a verifiable entry at the same path
        c3 = CompilationCache(cache_dir=tmp_path)
        c3.jit_source(self.DUMP, fingerprint=self.FP,
                      emit=self._emitter(calls))
        assert len(calls) == 2
        assert c3.stats()["by_kind"]["jit-source"]["disk_hits"] == 1

    def test_wrong_typed_payload_quarantined(self, tmp_path):
        """A digest-valid entry of the wrong type (a stale pickle of a
        non-string) is quarantined, not handed to compile()."""
        c1 = CompilationCache(cache_dir=tmp_path)
        key = content_key("jit-source", self.DUMP, self.FP)
        c1._store(key, 12345, "jit-source")  # poisoned but digest-valid
        calls = []
        c2 = CompilationCache(cache_dir=tmp_path)
        text = c2.jit_source(self.DUMP, fingerprint=self.FP,
                             emit=self._emitter(calls))
        assert text == "OUT = [lambda rt: None]\n"
        assert len(calls) == 1
        assert c2.stats()["by_kind"]["jit-source"]["corrupt"] == 1
        [q] = list(tmp_path.rglob("*.quarantine"))
        assert q.stem == f"{key}"
