"""The order-preserving parallel executor (repro.engine.parallel)."""

import os

import pytest

from repro.engine.parallel import WorkerCrash, parallel_map


# --- module-level cell functions (must be picklable) -----------------------


def square(x):
    return x * x


def slow_inverse_square(x):
    # later items finish first: order preservation must not depend on
    # completion order
    import time

    time.sleep(0.05 * (4 - x))
    return x * x


def pid_tag(x):
    return (x, os.getpid())


def boom(x):
    if x == 2:
        raise ValueError(f"cell {x} exploded")
    return x


def hard_exit(x):
    if x == 1:
        os._exit(17)      # simulates a segfault/OOM-killed worker
    return x


def sleep_then_boom(x):
    import time

    if x == 1:
        time.sleep(0.15)
        raise RuntimeError("slow death")
    return x


def exit_on_odd(x):
    if x % 2 == 1:
        os._exit(9)       # several workers die in one sweep
    return x


class TestSerialPath:
    def test_maps_in_order(self):
        assert parallel_map(square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_single_item_stays_in_process(self):
        [(v, pid)] = parallel_map(pid_tag, [7], jobs=8)
        assert v == 7 and pid == os.getpid()

    def test_on_result_fires_in_order(self):
        seen = []
        parallel_map(square, [1, 2, 3], jobs=1,
                     on_result=lambda i, r: seen.append((i, r)))
        assert seen == [(0, 1), (1, 4), (2, 9)]

    def test_serial_exception_propagates(self):
        # jobs<=1 is a plain map: isolation is the cell's own job
        with pytest.raises(ValueError):
            parallel_map(boom, [1, 2, 3], jobs=1)


class TestParallelPath:
    def test_results_in_submission_order(self):
        assert parallel_map(slow_inverse_square, [1, 2, 3],
                            jobs=3) == [1, 4, 9]

    def test_runs_in_worker_processes(self):
        out = parallel_map(pid_tag, [1, 2, 3, 4], jobs=2)
        assert [v for v, _ in out] == [1, 2, 3, 4]
        assert any(pid != os.getpid() for _, pid in out)

    def test_on_result_fires_in_order(self):
        seen = []
        parallel_map(slow_inverse_square, [1, 2, 3], jobs=3,
                     on_result=lambda i, r: seen.append(i))
        assert seen == [0, 1, 2]

    def test_cell_exception_becomes_worker_crash(self):
        out = parallel_map(boom, [1, 2, 3], jobs=2,
                           labels=["a", "b", "c"])
        assert out[0] == 1 and out[2] == 3
        crash = out[1]
        assert isinstance(crash, WorkerCrash)
        assert crash.label == "b"
        assert "exploded" in crash.message

    def test_dead_worker_becomes_worker_crash(self):
        out = parallel_map(hard_exit, [0, 1, 2], jobs=2)
        assert isinstance(out[1], WorkerCrash)
        # positions of unaffected results are preserved (a broken pool
        # may take siblings down with it — those also become crashes)
        assert all(r == i or isinstance(r, WorkerCrash)
                   for i, r in enumerate(out))

    def test_crash_fault_dict_shape(self):
        fd = WorkerCrash(label="cell", message="died").to_fault_dict()
        assert fd["kind"] == "internal"
        assert fd["error_type"] == "WorkerCrash"
        assert fd["label"] == "cell" and fd["message"] == "died"
        # shape-compatible with FaultReport.to_dict()
        from repro.faults.harness import FaultReport

        assert set(fd) == set(
            FaultReport(label="x", kind="internal", error_type="E",
                        message="m").to_dict())

    def test_crash_stamped_with_index_and_duration(self):
        out = parallel_map(boom, [1, 2, 3], jobs=2)
        crash = out[1]
        assert isinstance(crash, WorkerCrash)
        assert crash.index == 1
        assert crash.duration_s >= 0.0
        fd = crash.to_fault_dict()
        assert fd["detail"] == {"cell_index": 1}
        assert fd["elapsed_s"] == crash.duration_s

    def test_crash_message_carries_traceback_tail(self):
        out = parallel_map(boom, [1, 2, 3], jobs=2)
        crash = out[1]
        assert crash.message.startswith("ValueError: cell 2 exploded")
        # the tail of the worker's traceback rides along for diagnosis
        assert "in boom" in crash.message
        assert "raise ValueError" in crash.message

    def test_dead_worker_crash_stamped_with_index(self):
        out = parallel_map(hard_exit, [0, 1, 2], jobs=2)
        for i, r in enumerate(out):
            if isinstance(r, WorkerCrash):
                assert r.index == i
                assert r.duration_s >= 0.0

    def test_crash_duration_measures_cell_runtime(self):
        # a cell that runs before dying carries the measured wall-clock,
        # not a zero placeholder — telemetry attributes the lost time
        out = parallel_map(sleep_then_boom, [0, 1, 2], jobs=2)
        crash = out[1]
        assert isinstance(crash, WorkerCrash)
        assert crash.duration_s >= 0.15
        assert crash.to_fault_dict()["elapsed_s"] == crash.duration_s

    def test_multiple_kills_preserve_positions_and_labels(self):
        # several workers dying in one sweep must not shift surviving
        # results or mislabel the crash entries
        labels = [f"cell-{i}" for i in range(6)]
        out = parallel_map(exit_on_odd, list(range(6)), jobs=3,
                           labels=labels)
        assert len(out) == 6
        for i, r in enumerate(out):
            if isinstance(r, WorkerCrash):
                assert r.label == labels[i]
            else:
                assert r == i and i % 2 == 0

    def test_on_result_sees_crashes_in_order(self):
        # incremental journaling (the server's durability hook) must
        # observe crash entries at their submission position
        seen = []
        parallel_map(hard_exit, [0, 1, 2], jobs=2,
                     on_result=lambda i, r: seen.append(
                         (i, isinstance(r, WorkerCrash))))
        assert [i for i, _ in seen] == [0, 1, 2]
        assert any(crashed for _, crashed in seen)


def test_serial_and_parallel_agree():
    items = list(range(10))
    assert parallel_map(square, items, jobs=1) \
        == parallel_map(square, items, jobs=4)


def log_then_boom(x):
    from repro.obs.log import get_logger

    get_logger("worker").info("about_to_work", item=x)
    if x == 2:
        raise ValueError(f"cell {x} exploded")
    return x


class TestFlightRecorderInCrashes:
    def test_worker_crash_carries_flight_tail(self, tmp_path):
        from repro.obs import log

        log.configure("debug", path=tmp_path / "log.jsonl")
        try:
            out = parallel_map(log_then_boom, [1, 2, 3], jobs=2,
                               labels=["a", "b", "c"])
        finally:
            log.shutdown()
        crash = out[1]
        assert isinstance(crash, WorkerCrash)
        events = crash.to_fault_dict()["detail"]["flight_recorder"]
        # the worker's own last moments: the log line it emitted just
        # before raising, and the cell_failed record itself
        assert any(e.get("event") == "about_to_work"
                   and e.get("fields", {}).get("item") == 2
                   for e in events)
        assert any(e.get("event") == "cell_failed" for e in events)

    def test_no_flight_when_logging_off(self):
        out = parallel_map(boom, [1, 2, 3], jobs=2)
        fd = out[1].to_fault_dict()
        assert "flight_recorder" not in fd["detail"]
