"""The examples must stay runnable — they are the documented entry point."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "techniques_tour.py",
    "machine_exploration.py",
    "linear_algebra.py",
])
def test_example_runs(script):
    path = EXAMPLES / script
    assert path.exists(), path
    proc = subprocess.run([sys.executable, str(path)],
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()


def test_quickstart_shows_cedar_fortran():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=300)
    assert "xdoall" in proc.stdout
    assert "speedup" in proc.stdout
