"""Smoke + shape tests for the experiment drivers (quick mode)."""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.report import Table


class TestReportTable:
    def test_render_and_access(self):
        t = Table("demo", ["k", "v"])
        t.add("a", 1.0)
        t.add("b", 250.0)
        assert t.cell("a", "v") == 1.0
        assert t.column("k") == ["a", "b"]
        text = t.render()
        assert "demo" in text and "250" in text

    def test_missing_row_raises(self):
        t = Table("demo", ["k", "v"])
        with pytest.raises(KeyError):
            t.row("nope")


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_driver_runs_quick(name):
    t = ALL_EXPERIMENTS[name](quick=True)
    assert t.rows
    assert t.render()


class TestQuickShapes:
    """Light shape checks at quick size (full-size checks in benchmarks/)."""

    def test_table2_manual_geq_auto(self):
        t = ALL_EXPERIMENTS["table2"](quick=True)
        for row in t.rows:
            prog, fa, ca, fm, cm = row[:5]
            assert fm >= fa * 0.9, prog
            assert cm >= ca * 0.9, prog

    def test_fig6_cg_over_trfd(self):
        t = ALL_EXPERIMENTS["fig6"](quick=True)
        assert t.cell("CG", "measured gain") \
            >= t.cell("TRFD", "measured gain")

    def test_fig7_privatization_wins(self):
        t = ALL_EXPERIMENTS["fig7"](quick=True)
        assert t.cell("privatization", "measured speed") \
            > t.cell("expansion", "measured speed")

    def test_fig8_partitioned_scales(self):
        # quick sizes leave startup dominant; require monotone growth only
        # (the 2x+ scaling is asserted at full size in benchmarks/)
        t = ALL_EXPERIMENTS["fig8"](quick=True)
        p1 = t.cell(1, "partitioned (measured)")
        p4 = t.cell(4, "partitioned (measured)")
        assert p4 > p1 * 1.2
