"""Tests for structured experiment output: Table.to_dict, negative-float
rendering, the ``--json``/``--trace`` CLI, and the payload validator."""

import io
import json
import sys

import pytest

from repro.experiments.__main__ import JSON_SCHEMA, main
from repro.experiments.report import Table


class TestTableFormatting:
    def test_negative_floats_keep_magnitude_precision(self):
        t = Table(title="T", columns=["k", "v"])
        t.add("a", -123.456)
        t.add("b", -12.345)
        t.add("c", -1.234)
        text = t.render()
        # sign must not promote a value into a higher-precision bucket
        assert "-123" in text and "-123.5" not in text
        assert "-12.3" in text and "-12.35" not in text
        assert "-1.23" in text

    def test_positive_formatting_unchanged(self):
        t = Table(title="T", columns=["k", "v"])
        t.add("a", 123.456)
        t.add("b", 12.345)
        t.add("c", 1.234)
        text = t.render()
        assert "123" in text and "12.3" in text and "1.23" in text

    def test_to_dict_rows_keyed_by_column(self):
        t = Table(title="T", columns=["routine", "speedup"],
                  notes=["a note"])
        t.add("cg", 6.5)
        t.meta["trace"] = {}
        d = t.to_dict()
        assert d["rows"] == [{"routine": "cg", "speedup": 6.5}]
        assert d["notes"] == ["a note"]
        assert d["meta"] == {"trace": {}}
        json.dumps(d)


@pytest.fixture(scope="module")
def table1_payload():
    """One quick --json run shared by the CLI tests."""
    buf = io.StringIO()
    old = sys.stdout
    sys.stdout = buf
    try:
        rc = main(["table1", "--quick", "--json"])
    finally:
        sys.stdout = old
    assert rc == 0
    return json.loads(buf.getvalue())


class TestJsonCli:
    def test_payload_shape(self, table1_payload):
        p = table1_payload
        assert p["schema"] == JSON_SCHEMA
        assert p["quick"] is True
        t1 = p["experiments"]["table1"]
        assert len(t1["rows"]) == 10
        assert set(t1["rows"][0]) == set(t1["columns"])

    def test_every_workload_has_trace(self, table1_payload):
        trace = table1_payload["experiments"]["table1"]["meta"]["trace"]
        routines = {r["routine"] for r in
                    table1_payload["experiments"]["table1"]["rows"]}
        assert set(trace) == routines
        for w in trace.values():
            assert "serial_breakdown" in w and "parallel_breakdown" in w
            assert w["decisions"]

    def test_serial_loops_have_rejection_reasons(self, table1_payload):
        """Acceptance criterion: >=1 rejection reason per serial loop."""
        trace = table1_payload["experiments"]["table1"]["meta"]["trace"]
        for name, w in trace.items():
            decs = w["decisions"]
            serial = {(d.get("loop"), d.get("line")) for d in decs
                      if d["action"] == "accepted"
                      and d["technique"] == "serial"}
            for key in serial:
                rej = [d for d in decs
                       if (d.get("loop"), d.get("line")) == key
                       and d["action"] in ("rejected", "failed")
                       and d.get("reason")]
                assert rej, f"{name}: serial loop {key} unexplained"

    def test_validator_accepts_real_payload(self, table1_payload):
        sys.path.insert(0, "scripts")
        try:
            import validate_experiment_json as v
        finally:
            sys.path.pop(0)
        assert v.validate(table1_payload) == []

    def test_validator_rejects_broken_payloads(self, table1_payload):
        sys.path.insert(0, "scripts")
        try:
            import validate_experiment_json as v
        finally:
            sys.path.pop(0)
        assert v.validate({"schema": "wrong"})
        broken = json.loads(json.dumps(table1_payload))
        t1 = broken["experiments"]["table1"]
        first = next(iter(t1["meta"]["trace"].values()))
        first["serial_breakdown"]["total"] += 1e6  # break the invariant
        problems = v.validate(broken)
        assert any("group sum" in p for p in problems)

    def test_unknown_experiment_errors(self):
        assert main(["nosuch", "--json"]) == 2


class TestTraceCli:
    def test_trace_flag_appends_breakdown(self, capsys):
        rc = main(["table1", "--quick", "--trace"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cycle attribution" in out
        assert "parallel_overhead" in out or "startup" in out
