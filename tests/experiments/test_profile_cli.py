"""The ``--profile DIR`` CLI path: artifacts exist, validate, and render."""

import io
import json
import sys

import pytest

from repro.experiments.__main__ import main


@pytest.fixture(scope="module")
def profile_artifacts(tmp_path_factory):
    outdir = tmp_path_factory.mktemp("prof")
    old, sys.stdout = sys.stdout, io.StringIO()
    try:
        assert main(["table1", "--quick", "--profile", str(outdir)]) == 0
    finally:
        sys.stdout = old
    return outdir


class TestProfileCli:
    def test_writes_both_artifacts(self, profile_artifacts):
        assert (profile_artifacts / "table1.trace.json").exists()
        assert (profile_artifacts / "table1.profile.json").exists()

    def test_profile_doc_validates(self, profile_artifacts):
        sys.path.insert(0, "scripts")
        try:
            import validate_experiment_json as v
        finally:
            sys.path.pop(0)
        doc = json.loads(
            (profile_artifacts / "table1.profile.json").read_text())
        assert v.validate(doc) == []
        assert doc["schema"] == "repro-profile/1"
        assert doc["quick"] is True

    def test_trace_is_chrome_format(self, profile_artifacts):
        doc = json.loads(
            (profile_artifacts / "table1.trace.json").read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases <= {"X", "M"}
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_gantt_cli_renders_trace(self, profile_artifacts, capsys):
        from repro.prof.__main__ import main as prof_main

        trace = profile_artifacts / "table1.trace.json"
        assert prof_main(["gantt", str(trace), "--pid", "2"]) == 0
        out = capsys.readouterr().out
        assert "CE " in out

    def test_report_cli_renders_profile(self, profile_artifacts, capsys):
        from repro.prof.__main__ import main as prof_main

        profile = profile_artifacts / "table1.profile.json"
        assert prof_main(["report", str(profile)]) == 0
        out = capsys.readouterr().out
        assert "table1/" in out and "total" in out

    def test_diff_accepts_profile_docs(self, profile_artifacts, capsys):
        from repro.prof.__main__ import main as prof_main

        profile = str(profile_artifacts / "table1.profile.json")
        assert prof_main(["diff", profile, profile]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out
