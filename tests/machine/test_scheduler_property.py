"""Property test: the O(1) homogeneous closed form in ``LoopScheduler.run``
must agree with the event simulation (``_simulate``) to floating-point
rounding, across worker counts, trip counts (including trips < workers),
chunk sizes, and partial tail chunks."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.config import MachineConfig, cedar_config1, cedar_config2
from repro.machine.scheduler import LoopScheduler


def closed_vs_simulated(cfg: MachineConfig, level: str, trips: int,
                        per: float, chunk: int, preamble: float,
                        postamble: float) -> tuple:
    sched = LoopScheduler(cfg)
    closed = sched.run(level, "doall", trips, per, preamble=preamble,
                       postamble=postamble, chunk=chunk)
    p = min(cfg.processors_at(level), max(trips, 1))
    startup = cfg.startup(level, "doall")
    dispatch = cfg.dispatch(level)
    simulated = sched._simulate(level, "doall", [per] * trips, p, startup,
                                dispatch, preamble, postamble, chunk)
    return closed, simulated


@given(
    trips=st.integers(min_value=1, max_value=400),
    per=st.floats(min_value=0.5, max_value=500.0,
                  allow_nan=False, allow_infinity=False),
    chunk=st.integers(min_value=1, max_value=16),
    preamble=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    postamble=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    level=st.sampled_from(["C", "S", "X"]),
    config=st.sampled_from(["cedar1", "cedar2"]),
)
@settings(max_examples=200, deadline=None)
def test_closed_form_matches_simulation(trips, per, chunk, preamble,
                                        postamble, level, config):
    cfg = cedar_config1() if config == "cedar1" else cedar_config2()
    closed, simulated = closed_vs_simulated(cfg, level, trips, per, chunk,
                                            preamble, postamble)
    scale = max(abs(simulated.total_time), 1.0)
    assert abs(closed.total_time - simulated.total_time) <= 1e-9 * scale, (
        f"total: closed {closed.total_time} != sim {simulated.total_time} "
        f"(trips={trips} chunk={chunk} per={per})")
    busy_scale = max(abs(simulated.busy_time), 1.0)
    assert abs(closed.busy_time - simulated.busy_time) <= 1e-9 * busy_scale
    assert closed.workers == simulated.workers
    assert closed.chunks == simulated.chunks


def test_trips_below_workers_edge():
    """Fewer trips than CEs: every trip gets its own worker; completion is
    one chunk deep."""
    cfg = cedar_config1()
    for trips in range(1, cfg.processors_at("C") + 1):
        closed, simulated = closed_vs_simulated(cfg, "C", trips, 10.0, 1,
                                                0.0, 0.0)
        assert closed.workers == trips
        assert abs(closed.total_time - simulated.total_time) <= 1e-9 * max(
            simulated.total_time, 1.0)


def test_partial_tail_chunk():
    """trips % chunk != 0 leaves a short final chunk; both paths must
    price the same critical path."""
    cfg = cedar_config2()
    for trips, chunk in [(10, 3), (17, 4), (33, 8), (100, 7), (5, 4)]:
        closed, simulated = closed_vs_simulated(cfg, "S", trips, 9.0, chunk,
                                                2.0, 2.0)
        assert abs(closed.total_time - simulated.total_time) <= 1e-9 * max(
            simulated.total_time, 1.0), (trips, chunk)
