"""Unit tests for the Cedar machine model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MachineModelError
from repro.machine import (
    LoopScheduler,
    MemorySystem,
    PagingModel,
    PrefetchUnit,
    SyncModel,
    VectorUnit,
    alliant_fx80,
    cedar_config1,
    cedar_config2,
)
from repro.machine.tasking import TaskingModel, TaskSpawn


class TestConfig:
    def test_presets(self):
        c1, c2 = cedar_config1(), cedar_config2()
        assert c1.total_processors == 32
        assert c1.cluster_memory_mb == 16 and c2.cluster_memory_mb == 64
        assert c1.global_memory_mb == c2.global_memory_mb == 64
        fx = alliant_fx80()
        assert fx.clusters == 1 and not fx.has_global_memory

    def test_processors_at_levels(self):
        c = cedar_config1()
        assert c.processors_at("C") == 8
        assert c.processors_at("S") == 4
        assert c.processors_at("X") == 32
        with pytest.raises(MachineModelError):
            c.processors_at("Z")

    def test_startup_ordering(self):
        """CDOALL start ≪ SDOALL/XDOALL start (§4.2.4)."""
        c = cedar_config1()
        assert c.startup("C", "doall") * 10 < c.startup("S", "doall")
        assert c.startup("C", "doall") * 10 < c.startup("X", "doall")

    def test_with_clusters(self):
        c = cedar_config1().with_clusters(2)
        assert c.total_processors == 16
        with pytest.raises(MachineModelError):
            cedar_config1().with_clusters(0)


class TestMemory:
    def test_hierarchy_ordering(self):
        m = MemorySystem(cedar_config1())
        assert m.scalar_access("private") < m.scalar_access("cluster") \
            < m.scalar_access("global")

    def test_prefetched_global_stream_beats_unprefetched(self):
        m = MemorySystem(cedar_config1())
        on, _ = m.vector_access("global", 1000, prefetch=True)
        off, _ = m.vector_access("global", 1000, prefetch=False)
        assert on < off

    def test_prefetched_global_beats_cluster_for_long_streams(self):
        """The Figure 8 one-cluster effect: global transfer rate + prefetch
        beat cluster memory."""
        m = MemorySystem(cedar_config1())
        g, _ = m.vector_access("global", 10000, prefetch=True)
        c, _ = m.vector_access("cluster", 10000)
        assert g < c

    def test_fx80_global_degrades_to_cluster(self):
        m = MemorySystem(alliant_fx80())
        assert m.scalar_access("global") == m.scalar_access("cluster")

    def test_saturation_factor(self):
        m = MemorySystem(cedar_config1())
        assert m.saturation_factor(100.0, 1000.0, 4) == 1.0  # low demand
        f = m.saturation_factor(100000.0, 1000.0, 4)  # 100 elems/cycle
        assert f > 1.0

    def test_zero_length_stream(self):
        m = MemorySystem(cedar_config1())
        c, prof = m.vector_access("global", 0)
        assert c == 0.0 and prof.global_elems == 0


class TestPrefetchUnit:
    def test_speedup_grows_with_length(self):
        """Figure 6's cause: long vectors gain much more than short ones."""
        u = PrefetchUnit(cedar_config1())
        assert u.speedup_for(1000) > u.speedup_for(8)

    def test_disabled_unit_no_gain(self):
        u = PrefetchUnit(cedar_config1(), enabled=False)
        v = PrefetchUnit(cedar_config1(), enabled=True)
        assert u.stream_cost(256) > v.stream_cost(256)


class TestPaging:
    def test_no_faults_within_capacity(self):
        p = PagingModel(cedar_config1())
        assert p.fault_overhead(8 * 2**20, "cluster", 3.0) == 0.0

    def test_thrash_beyond_capacity(self):
        """The mprove effect: two 8 MB matrices in a 16 MB cluster."""
        p = PagingModel(cedar_config1())
        over = p.fault_overhead(16 * 2**20, "cluster", 3.0)
        assert over > 1e8

    def test_global_memory_larger(self):
        p = PagingModel(cedar_config1())
        assert p.fault_overhead(16 * 2**20, "global", 3.0) == 0.0

    def test_monotone_in_working_set(self):
        p = PagingModel(cedar_config1())
        a = p.fault_overhead(14 * 2**20, "cluster", 1.0)
        b = p.fault_overhead(20 * 2**20, "cluster", 1.0)
        assert b >= a


class TestScheduler:
    def test_doall_scales(self):
        s = LoopScheduler(cedar_config1())
        t8 = s.run("C", "doall", 1024, iter_cost=100.0)
        assert t8.workers == 8
        serial = 1024 * 100.0
        assert t8.total_time < serial / 4  # decent efficiency

    def test_small_trip_counts_dont_scale(self):
        s = LoopScheduler(cedar_config1())
        t = s.run("X", "doall", 4, iter_cost=10.0)
        assert t.workers == 4  # only as many workers as iterations
        assert t.total_time > 4 * 10.0  # startup dominates

    def test_startup_gap_c_vs_s(self):
        """§4.2.4: spreading a tiny loop across clusters loses."""
        s = LoopScheduler(cedar_config1())
        c = s.run("C", "doall", 16, iter_cost=20.0)
        x = s.run("X", "doall", 16, iter_cost=20.0)
        assert c.total_time < x.total_time

    def test_doacross_serial_chain_bound(self):
        s = LoopScheduler(cedar_config1())
        t = s.doacross("C", 100, iter_cost=50.0, region_cost=45.0)
        signal = (cedar_config1().cost_await + cedar_config1().cost_advance)
        assert t.total_time >= 100 * (45.0 + signal)

    def test_doacross_small_region_parallelizes(self):
        s = LoopScheduler(cedar_config1())
        big_region = s.doacross("C", 1000, 100.0, region_cost=90.0)
        small_region = s.doacross("C", 1000, 100.0, region_cost=5.0)
        assert small_region.total_time < big_region.total_time

    def test_heterogeneous_simulation(self):
        """Triangular per-iteration costs load-balance via self-scheduling."""
        s = LoopScheduler(cedar_config1())
        costs = [float(i) for i in range(1, 65)]
        t = s.run("C", "doall", 64, iter_cost=costs)
        busy_ideal = sum(costs) / 8
        assert t.total_time >= busy_ideal
        assert t.total_time < busy_ideal * 2.5

    def test_zero_trips(self):
        s = LoopScheduler(cedar_config1())
        t = s.run("C", "doall", 0, iter_cost=10.0)
        assert t.total_time == cedar_config1().start_cdoall


class TestSync:
    def test_cascade_cost_cross_cluster_higher(self):
        m = SyncModel(cedar_config1())
        assert m.cascade_cost(True) > m.cascade_cost(False)

    def test_critical_section_contention(self):
        m = SyncModel(cedar_config1())
        assert m.critical_section(100.0, 32) > m.critical_section(100.0, 2)

    def test_reduction_combine_levels(self):
        m = SyncModel(cedar_config1())
        assert m.reduction_combine("X") > m.reduction_combine("C")


class TestTasking:
    def test_ctskstart_much_more_expensive(self):
        t = TaskingModel(cedar_config1())
        c = t.spawn_cost(TaskSpawn("ctskstart"))
        mt = t.spawn_cost(TaskSpawn("mtskstart"))
        assert c > 10 * mt

    def test_mtskstart_rejects_synchronization(self):
        """§2.2.2: sync in helper-task threads can deadlock."""
        t = TaskingModel(cedar_config1())
        with pytest.raises(MachineModelError):
            t.spawn_cost(TaskSpawn("mtskstart", uses_synchronization=True))

    def test_ctskstart_allows_synchronization(self):
        t = TaskingModel(cedar_config1())
        assert t.spawn_cost(TaskSpawn("ctskstart",
                                      uses_synchronization=True)) > 0

    def test_helper_capacity(self):
        t = TaskingModel(cedar_config1(), helper_tasks=4)
        assert t.can_run_concurrently(4, "mtskstart")
        assert not t.can_run_concurrently(5, "mtskstart")
        assert t.can_run_concurrently(100, "ctskstart")


@settings(max_examples=60, deadline=None)
@given(trips=st.integers(1, 5000), iter_cost=st.floats(1.0, 500.0))
def test_scheduler_bounds(trips, iter_cost):
    """Completion time is bounded below by ideal parallel time and above
    by startup + serial time + dispatch."""
    cfg = cedar_config1()
    s = LoopScheduler(cfg)
    t = s.run("X", "doall", trips, iter_cost=iter_cost)
    ideal = trips * iter_cost / t.workers
    assert t.total_time >= ideal * 0.99
    serial = trips * (iter_cost + cfg.dispatch_x)
    assert t.total_time <= cfg.start_xdoall + serial + iter_cost + 1


@settings(max_examples=60, deadline=None)
@given(length=st.floats(1, 1e6))
def test_memory_stream_monotone(length):
    m = MemorySystem(cedar_config1())
    a, _ = m.vector_access("global", length, prefetch=True)
    b, _ = m.vector_access("global", length + 100, prefetch=True)
    assert b >= a
