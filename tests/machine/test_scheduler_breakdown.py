"""Critical-path breakdown tests for the loop scheduler (satellite of the
cycle-attribution work): the ``*_cycles`` fields must always sum to
``total_time``, across the closed form, the DOACROSS bound, and the
event-driven heterogeneous simulation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine import LoopScheduler, cedar_config1
from repro.trace import CycleLedger


def _parts(t):
    return (t.startup_cycles + t.dispatch_cycles + t.sync_cycles
            + t.body_cycles + t.pre_post_cycles)


class TestBreakdownInvariant:
    def test_homogeneous_doall(self):
        s = LoopScheduler(cedar_config1())
        t = s.run("C", "doall", 1024, iter_cost=100.0,
                  preamble=7.0, postamble=3.0)
        assert _parts(t) == pytest.approx(t.total_time)
        assert t.pre_post_cycles == 10.0
        assert t.startup_cycles == cedar_config1().start_cdoall

    def test_zero_trips_is_pure_startup(self):
        s = LoopScheduler(cedar_config1())
        t = s.run("X", "doall", 0, iter_cost=10.0)
        assert t.startup_cycles == t.total_time
        assert _parts(t) == pytest.approx(t.total_time)

    def test_doacross_serial_chain(self):
        s = LoopScheduler(cedar_config1())
        t = s.doacross("C", 100, iter_cost=50.0, region_cost=45.0)
        assert _parts(t) == pytest.approx(t.total_time)
        assert t.sync_cycles > 0  # the await/advance cascade shows up

    def test_doacross_parallel_part(self):
        s = LoopScheduler(cedar_config1())
        t = s.doacross("C", 1000, iter_cost=300.0, region_cost=1.0)
        assert _parts(t) == pytest.approx(t.total_time)
        assert t.dispatch_cycles > 0  # self-scheduling path, not the chain

    def test_heterogeneous_triangular(self):
        s = LoopScheduler(cedar_config1())
        costs = [float(i) for i in range(1, 65)]
        t = s.run("C", "doall", 64, iter_cost=costs,
                  preamble=5.0, postamble=2.0)
        assert _parts(t) == pytest.approx(t.total_time)
        assert t.chunks == 64

    def test_heterogeneous_chunked(self):
        s = LoopScheduler(cedar_config1())
        costs = [10.0, 1.0] * 32
        t1 = s.run("C", "doall", 64, iter_cost=costs, chunk=1)
        t4 = s.run("C", "doall", 64, iter_cost=costs, chunk=4)
        assert t4.chunks == 16
        assert _parts(t4) == pytest.approx(t4.total_time)
        # fewer dispatches with bigger chunks
        assert t4.dispatch_cycles < t1.dispatch_cycles

    def test_postamble_lands_on_critical_path(self):
        s = LoopScheduler(cedar_config1())
        plain = s.run("C", "doall", 64,
                      iter_cost=[1.0] * 64)
        with_post = s.run("C", "doall", 64,
                          iter_cost=[1.0] * 64, postamble=50.0)
        assert with_post.total_time == pytest.approx(plain.total_time + 50.0)
        assert with_post.pre_post_cycles == 50.0
        assert _parts(with_post) == pytest.approx(with_post.total_time)


class TestLedgerCharging:
    def test_run_charges_only_overhead(self):
        s = LoopScheduler(cedar_config1())
        led = CycleLedger()
        t = s.run("C", "doall", 128, iter_cost=20.0, ledger=led)
        assert led.startup == t.startup_cycles
        assert led.dispatch == t.dispatch_cycles
        assert led.sync == t.sync_cycles
        assert led.compute == 0.0  # body is the caller's to attribute
        assert led.total() == pytest.approx(t.overhead_cycles)

    def test_doacross_charges_sync(self):
        s = LoopScheduler(cedar_config1())
        led = CycleLedger()
        t = s.doacross("C", 100, iter_cost=50.0, region_cost=45.0,
                       ledger=led)
        assert led.sync == pytest.approx(t.sync_cycles)
        assert led.sync > 0

    def test_default_ledger_untouched(self):
        from repro.trace import NULL_LEDGER

        s = LoopScheduler(cedar_config1())
        s.run("C", "doall", 128, iter_cost=20.0)
        assert NULL_LEDGER.total() == 0.0


@given(st.lists(st.floats(0.5, 100.0), min_size=1, max_size=120),
       st.integers(1, 8))
def test_breakdown_sums_to_total_property(costs, chunk):
    """Property: the decomposition is exact for arbitrary cost vectors."""
    s = LoopScheduler(cedar_config1())
    t = s.run("C", "doall", len(costs), iter_cost=costs, chunk=chunk,
              preamble=1.0, postamble=2.0)
    assert _parts(t) == pytest.approx(t.total_time, rel=1e-12)
