"""Tests for the Cedar Fortran dialect: nodes, unparser, library."""

import numpy as np
import pytest

from repro.cedar import (
    CEDAR_LIBRARY,
    AdvanceStmt,
    AwaitStmt,
    ClusterDecl,
    GlobalDecl,
    LockStmt,
    ParallelDo,
    UnlockStmt,
    WhereStmt,
    unparse_cedar,
)
from repro.cedar.nodes import contains_parallelism, is_cedar_stmt
from repro.fortran import ast_nodes as F


def make_loop(level="X", order="doall", **kw):
    return ParallelDo(
        level=level, order=order, var="i",
        start=F.IntLit(1), end=F.Var("n"),
        body=[F.Assign(target=F.ArrayRef("a", [F.Var("i")]),
                       value=F.IntLit(0))],
        **kw,
    )


class TestNodes:
    def test_keyword_spellings(self):
        assert make_loop("C", "doall").keyword == "cdoall"
        assert make_loop("S", "doall").keyword == "sdoall"
        assert make_loop("X", "doacross").keyword == "xdoacross"

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            make_loop("Q")

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            make_loop("C", "sideways")

    def test_is_cedar_stmt(self):
        assert is_cedar_stmt(make_loop())
        assert is_cedar_stmt(GlobalDecl(names=["a"]))
        assert not is_cedar_stmt(F.ContinueStmt())

    def test_contains_parallelism(self):
        serial = F.DoLoop(var="i", start=F.IntLit(1), end=F.IntLit(2),
                          body=[make_loop()])
        assert contains_parallelism([serial])
        assert not contains_parallelism([F.ContinueStmt()])

    def test_clone_parallel_do(self):
        p = make_loop(locals_=[F.TypeDecl(type=F.TypeSpec("real"),
                                          entities=[F.EntityDecl("t")])])
        q = p.clone()
        q.locals_[0].entities[0].name = "zz"
        assert p.locals_[0].entities[0].name == "t"


class TestUnparser:
    def test_figure3_loop_structure(self):
        """preamble/LOOP/body/ENDLOOP/postamble layout (paper Figure 3)."""
        p = make_loop(
            preamble=[F.Assign(target=F.Var("t"), value=F.IntLit(0))],
            postamble=[F.Assign(target=F.Var("u"), value=F.IntLit(1))],
        )
        text = unparse_cedar(p)
        lines = [l.strip() for l in text.splitlines()]
        assert "xdoall i = 1, n" in lines[0]
        assert lines.index("loop") < lines.index("endloop")
        assert "end xdoall" in lines[-1]

    def test_figure5_declarations(self):
        assert unparse_cedar(GlobalDecl(names=["a", "b"])).strip() \
            == "global a, b"
        assert unparse_cedar(ClusterDecl(names=["c"])).strip() == "cluster c"

    def test_sync_statements(self):
        assert "call await(1, 2)" in unparse_cedar(AwaitStmt(point=1,
                                                             distance=2))
        assert "call advance(1)" in unparse_cedar(AdvanceStmt(point=1))
        assert "call lock(l)" in unparse_cedar(LockStmt(name="l"))
        assert "call unlock(l)" in unparse_cedar(UnlockStmt(name="l"))

    def test_where_statement(self):
        w = WhereStmt(
            mask=F.BinOp(".gt.", F.ArrayRef("a", [F.RangeExpr(None, None)]),
                         F.RealLit(0.0)),
            body=[F.Assign(target=F.ArrayRef("b", [F.RangeExpr(None, None)]),
                           value=F.IntLit(1))],
            elsewhere=[F.Assign(
                target=F.ArrayRef("b", [F.RangeExpr(None, None)]),
                value=F.IntLit(0))],
        )
        text = unparse_cedar(w)
        assert "where (" in text
        assert "elsewhere" in text
        assert "end where" in text


class TestLibrary:
    def test_catalogue_contents(self):
        assert {"ces_dotproduct", "ces_sum", "ces_linrec"} <= set(CEDAR_LIBRARY)

    def test_reference_semantics(self):
        dot = CEDAR_LIBRARY["ces_dotproduct"]
        assert dot.fn([1, 2, 3], [4, 5, 6]) == pytest.approx(32.0)
        s = CEDAR_LIBRARY["ces_sum"]
        assert s.fn([1.0, 2.0, 3.5]) == pytest.approx(6.5)
        loc = CEDAR_LIBRARY["ces_maxloc"]
        assert loc.fn([1.0, 9.0, 3.0]) == 2  # 1-based

    def test_parallel_ops_scaling(self):
        dot = CEDAR_LIBRARY["ces_dotproduct"]
        serial = dot.parallel_ops(10000, 1)
        p32 = dot.parallel_ops(10000, 32)
        assert p32 < serial / 8  # near-linear minus combining

    def test_recurrence_critical_path(self):
        rec = CEDAR_LIBRARY["ces_linrec"]
        serial = rec.parallel_ops(10000, 1)
        p32 = rec.parallel_ops(10000, 32)
        # cyclic reduction: ~2.5x work, so <13x speedup on 32 procs
        assert serial / p32 < 14
        assert serial / p32 > 4

    def test_linrec_matches_loop(self):
        rec = CEDAR_LIBRARY["ces_linrec"]
        b = np.array([0.5, 0.2, 0.9, 1.1])
        c = np.array([1.0, 2.0, 3.0, 4.0])
        out = rec.fn(b, c)
        acc = 0.0
        for i in range(4):
            acc = acc * b[i] + c[i]
        assert out[-1] == pytest.approx(acc)
