"""Top-level API tests (the quickstart surface)."""

import numpy as np

import repro
from repro import (
    parse_source,
    restructure,
    restructure_source,
    unparse_cedar,
    unparse_f77,
)

SRC = """
      subroutine saxpy(n, a, x, y)
      integer n
      real a, x(n), y(n)
      integer i
      do i = 1, n
         y(i) = y(i) + a * x(i)
      end do
      end
"""


def test_version():
    assert repro.__version__


def test_parse_and_unparse_roundtrip():
    sf = parse_source(SRC)
    text = unparse_f77(sf)
    sf2 = parse_source(text)
    assert sf2.units[0].name == "saxpy"


def test_restructure_source_produces_cedar_text():
    text, report = restructure_source(SRC)
    assert "xdoall" in text
    assert "global" in text
    assert report.units["saxpy"].parallelized_loops == 1


def test_restructure_ast_then_unparse():
    cedar, report = restructure(parse_source(SRC))
    text = unparse_cedar(cedar)
    assert "end xdoall" in text


def test_docstring_example_runs():
    """The module docstring's quickstart must actually work."""
    cedar_source, report = restructure_source("""
      subroutine saxpy(n, a, x, y)
      integer n
      real a, x(n), y(n)
      do 10 i = 1, n
         y(i) = y(i) + a * x(i)
   10 continue
      end
""")
    assert "xdoall" in cedar_source


def test_end_to_end_pipeline_with_interpreter():
    from repro.execmodel.interp import Interpreter

    cedar, _ = restructure(parse_source(SRC))
    x = np.arange(1.0, 33.0)
    y = np.ones(32)
    Interpreter(cedar, processors=4).call("saxpy", 32, 3.0, x, y)
    assert np.allclose(y, 1.0 + 3.0 * np.arange(1.0, 33.0))
