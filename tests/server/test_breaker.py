"""Circuit breaker state machine, driven by an injected clock."""

from repro.telemetry import MetricsRegistry

from repro.server.breaker import CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, s):
        self.now += s


def make(threshold=3, reset=30.0, registry=None):
    clock = FakeClock()
    b = CircuitBreaker("dep", failure_threshold=threshold,
                       reset_after_s=reset, clock=clock,
                       registry=registry)
    return b, clock


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        b, _ = make()
        assert b.state == "closed" and b.allow()

    def test_opens_after_threshold_failures(self):
        b, _ = make(threshold=3)
        for _ in range(2):
            b.record_failure()
        assert b.state == "closed"
        b.record_failure()
        assert b.state == "open" and not b.allow()

    def test_success_resets_the_failure_count(self):
        b, _ = make(threshold=3)
        b.record_failure()
        b.record_failure()
        b.record_success()
        b.record_failure()
        b.record_failure()
        assert b.state == "closed"

    def test_half_open_after_cooldown(self):
        b, clock = make(threshold=1, reset=30.0)
        b.record_failure()
        assert not b.allow()
        clock.advance(30.0)
        assert b.state == "half-open"

    def test_half_open_allows_exactly_one_probe(self):
        b, clock = make(threshold=1, reset=30.0)
        b.record_failure()
        clock.advance(30.0)
        assert b.allow()          # the probe slot
        assert not b.allow()      # a concurrent caller is refused

    def test_probe_success_closes(self):
        b, clock = make(threshold=1, reset=30.0)
        b.record_failure()
        clock.advance(30.0)
        assert b.allow()
        b.record_success()
        assert b.state == "closed" and b.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        b, clock = make(threshold=1, reset=30.0)
        b.record_failure()
        clock.advance(30.0)
        assert b.allow()
        b.record_failure()
        assert b.state == "open"
        clock.advance(15.0)       # half the cool-down: still open
        assert not b.allow()
        clock.advance(15.0)
        assert b.allow()          # a fresh probe


class TestMetrics:
    def test_state_gauge_tracks_transitions(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        b = CircuitBreaker("store", failure_threshold=1,
                           reset_after_s=10.0, clock=clock, registry=reg)

        def gauge_value():
            return [g["value"] for g in reg.snapshot()["gauges"]
                    if g["name"] == "repro_server_breaker_state"
                    and g["labels"]["breaker"] == "store"][0]

        assert gauge_value() == 0
        b.record_failure()
        assert gauge_value() == 2
        clock.advance(10.0)
        assert b.state == "half-open"
        assert gauge_value() == 1
        assert b.allow()
        b.record_success()
        assert gauge_value() == 0
