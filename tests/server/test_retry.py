"""Retry policy: classification and deterministic backoff."""

from repro.server.retry import RetryPolicy


def fault(kind):
    return {"label": "w", "kind": kind, "error_type": "E",
            "message": "m", "elapsed_s": 0.0, "traceback": "",
            "detail": {}}


class TestClassification:
    def test_timeout_and_internal_retry(self):
        p = RetryPolicy()
        assert p.classify(fault("timeout"))
        assert p.classify(fault("internal"))

    def test_modelled_error_is_terminal(self):
        # a ReproError means the input itself is bad: retrying burns
        # pool capacity on a request that can never succeed
        assert not RetryPolicy().classify(fault("error"))

    def test_no_fault_is_not_retryable(self):
        p = RetryPolicy()
        assert not p.classify(None)
        assert not p.classify({})

    def test_budget_exhaustion(self):
        p = RetryPolicy(max_attempts=3)
        assert p.should_retry(fault("timeout"), attempt=1)
        assert p.should_retry(fault("timeout"), attempt=2)
        assert not p.should_retry(fault("timeout"), attempt=3)

    def test_terminal_never_retries_even_with_budget(self):
        assert not RetryPolicy(max_attempts=10).should_retry(
            fault("error"), attempt=1)


class TestBackoff:
    def test_deterministic_for_same_inputs(self):
        p = RetryPolicy(seed=7)
        assert p.backoff("req-1", 1) == p.backoff("req-1", 1)

    def test_seed_and_request_change_the_jitter(self):
        a = RetryPolicy(seed=1).backoff("req-1", 1)
        b = RetryPolicy(seed=2).backoff("req-1", 1)
        c = RetryPolicy(seed=1).backoff("req-2", 1)
        assert a != b and a != c

    def test_exponential_growth_capped(self):
        p = RetryPolicy(base_delay_s=0.1, max_delay_s=0.5, jitter=0.0)
        assert p.backoff("r", 1) == 0.1
        assert p.backoff("r", 2) == 0.2
        assert p.backoff("r", 3) == 0.4
        assert p.backoff("r", 10) == 0.5    # capped

    def test_jitter_stays_within_bounds(self):
        p = RetryPolicy(base_delay_s=0.1, max_delay_s=5.0, jitter=0.5)
        for attempt in (1, 2, 3):
            nominal = 0.1 * (2 ** (attempt - 1))
            for rid in (f"req-{i}" for i in range(50)):
                d = p.backoff(rid, attempt)
                assert nominal * 0.75 <= d <= nominal * 1.25

    def test_never_negative(self):
        p = RetryPolicy(base_delay_s=0.001, jitter=1.0)
        assert all(p.backoff(f"r{i}", 1) >= 0.0 for i in range(100))
