"""The HTTP front end: routes, status mapping, concurrent clients."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.engine.cache import get_cache
from repro.telemetry import MetricsRegistry

from repro.server.http import make_server
from repro.server.retry import RetryPolicy
from repro.server.service import RestructurerService

SRC = """      subroutine axpy(n, a, x, y)
      integer n, i
      real a, x(n), y(n)
      do 10 i = 1, n
         y(i) = y(i) + a * x(i)
   10 continue
      return
      end
"""


@pytest.fixture(scope="module")
def server_url():
    svc = RestructurerService(
        workers=1, registry=MetricsRegistry(),
        retry=RetryPolicy(max_attempts=2, base_delay_s=0.01))
    server = make_server(svc)       # port 0: a free port
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    svc.drain(timeout_s=5.0)
    get_cache().disk_error_hook = None


def post(url, path, body, raw=None):
    data = raw if raw is not None else json.dumps(body).encode()
    req = urllib.request.Request(
        url + path, data=data,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get(url, path):
    try:
        with urllib.request.urlopen(url + path, timeout=30) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


class TestRoutes:
    def test_restructure_ok_is_200(self, server_url):
        code, env = post(server_url, "/restructure",
                         {"source": SRC, "quick": True})
        assert code == 200 and env["status"] == "ok"
        assert env["result"]["experiment"]["schema"] \
            == "repro-experiment/1"

    def test_lint_ok_is_200(self, server_url):
        code, env = post(server_url, "/lint", {"source": SRC})
        assert code == 200 and env["status"] == "ok"
        assert env["result"]["schema"] == "repro-lint/1"

    def test_invalid_input_is_422(self, server_url):
        code, env = post(server_url, "/restructure",
                         {"source": "garbage"})
        assert code == 422 and env["status"] == "invalid-input"

    def test_malformed_json_body_is_classified_422(self, server_url):
        code, env = post(server_url, "/restructure", None,
                         raw=b"this is not json{")
        assert code == 422 and env["status"] == "invalid-input"
        assert env["schema"] == "repro-server/1"

    def test_unknown_path_is_404(self, server_url):
        code, _ = post(server_url, "/nope", {"source": SRC})
        assert code == 404
        code, _ = get(server_url, "/nope")
        assert code == 404

    def test_degraded_is_200_with_notes(self, server_url):
        code, env = post(server_url, "/restructure", {
            "source": SRC, "quick": True, "fault_scenario": "chaos"})
        assert code == 200 and env["status"] == "degraded"
        assert "fault-scenario:chaos" in env["degraded"]


class TestOperationalEndpoints:
    def test_healthz(self, server_url):
        code, body = get(server_url, "/healthz")
        h = json.loads(body)
        assert code == 200 and h["status"] == "ok"
        assert set(h["breakers"]) == {"store", "pool"}

    def test_readyz(self, server_url):
        code, body = get(server_url, "/readyz")
        assert code == 200 and json.loads(body) == {"ready": True}

    def test_metrics_prometheus_exposition(self, server_url):
        post(server_url, "/lint", {"source": SRC})
        code, text = get(server_url, "/metrics")
        assert code == 200
        assert "# TYPE repro_server_requests_total counter" in text
        assert 'endpoint="lint"' in text
        assert "repro_server_breaker_state" in text


class TestConcurrentClients:
    def test_parallel_posts_all_classified(self, server_url):
        results = []
        lock = threading.Lock()

        def client(i):
            if i % 3 == 2:
                code, env = post(server_url, "/restructure",
                                 {"source": "junk"})
            else:
                code, env = post(server_url, "/lint", {"source": SRC})
            with lock:
                results.append((code, env["status"]))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(9)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert not any(t.is_alive() for t in threads), "client hung"
        assert len(results) == 9
        assert all(status in ("ok", "degraded", "shed",
                              "invalid-input")
                   for _, status in results)
        assert sum(1 for c, _ in results if c == 200) == 6
        assert sum(1 for c, _ in results if c == 422) == 3
