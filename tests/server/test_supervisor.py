"""Worker supervisor: crash containment, deadlines, respawn."""

import os
import time

from repro.telemetry import MetricsRegistry

from repro.server.supervisor import WorkerSupervisor


# --- module-level cell functions (must be picklable) -----------------------


def echo(arg):
    return {"outcome": "ok", "payload": arg, "pid": os.getpid()}


def die(arg):
    os._exit(9)       # a real mid-request worker death


def sleep_forever(arg):
    time.sleep(60.0)
    return {"outcome": "ok"}


class TestHappyPath:
    def test_result_passes_through(self):
        sup = WorkerSupervisor(workers=1)
        try:
            result, fault = sup.submit(echo, {"x": 1}, "r1")
            assert fault is None
            assert result["payload"] == {"x": 1}
            assert result["pid"] != os.getpid()   # ran in a worker
        finally:
            sup.shutdown()

    def test_submit_after_shutdown_rebuilds_pool(self):
        sup = WorkerSupervisor(workers=1)
        try:
            sup.submit(echo, 1, "r1")
            sup.shutdown()
            result, fault = sup.submit(echo, 2, "r2")
            assert fault is None and result["payload"] == 2
        finally:
            sup.shutdown()


class TestCrashContainment:
    def test_worker_death_is_a_classified_fault(self):
        sup = WorkerSupervisor(workers=1)
        try:
            result, fault = sup.submit(die, None, "r1")
            assert result is None
            assert fault["kind"] == "internal"
            assert fault["error_type"] == "PoolCrashError"
            assert "died" in fault["message"]
        finally:
            sup.shutdown()

    def test_pool_respawns_after_crash(self):
        reg = MetricsRegistry()
        sup = WorkerSupervisor(workers=1, registry=reg)
        try:
            _, fault = sup.submit(die, None, "r1")
            assert fault is not None
            # the next request finds a healthy pool
            result, fault = sup.submit(echo, "alive", "r2")
            assert fault is None and result["payload"] == "alive"
            respawns = [c["value"] for c in reg.snapshot()["counters"]
                        if c["name"]
                        == "repro_server_worker_respawns_total"]
            assert respawns == [1]
        finally:
            sup.shutdown()


class TestDeadlines:
    def test_wedged_worker_is_killed_and_classified(self):
        sup = WorkerSupervisor(workers=1)
        try:
            t0 = time.monotonic()
            result, fault = sup.submit(sleep_forever, None, "r1",
                                       timeout_s=0.5)
            elapsed = time.monotonic() - t0
            assert result is None
            assert fault["kind"] == "timeout"
            assert "deadline" in fault["message"]
            assert elapsed < 30.0     # did not wait out the sleep
            # and the pool recovered
            result, fault = sup.submit(echo, "next", "r2")
            assert fault is None and result["payload"] == "next"
        finally:
            sup.shutdown()
