"""Service orchestration: envelopes, degradation ladder, durability."""

import pytest

from repro.engine.cache import get_cache
from repro.faults.harness import SweepJournal
from repro.telemetry import MetricsRegistry

from repro.server.retry import RetryPolicy
from repro.server.service import SERVER_SCHEMA, RestructurerService

SRC = """      subroutine axpy(n, a, x, y)
      integer n, i
      real a, x(n), y(n)
      do 10 i = 1, n
         y(i) = y(i) + a * x(i)
   10 continue
      return
      end
"""

ENVELOPE_KEYS = {"schema", "request_id", "endpoint", "status",
                 "attempts", "retries", "degraded", "reason",
                 "elapsed_s", "result", "fault"}


@pytest.fixture
def service():
    svc = RestructurerService(
        workers=1, registry=MetricsRegistry(),
        retry=RetryPolicy(max_attempts=2, base_delay_s=0.01))
    # the constructor installs a breaker hook on the process-wide
    # cache; detach it so later tests see a pristine cache
    yield svc
    svc.drain(timeout_s=5.0)
    get_cache().disk_error_hook = None


class TestEnvelope:
    def test_ok_envelope_shape(self, service):
        env = service.handle("restructure", {"source": SRC,
                                             "quick": True})
        assert set(env) == ENVELOPE_KEYS
        assert env["schema"] == SERVER_SCHEMA
        assert env["status"] == "ok"
        assert env["attempts"] == 1 and env["retries"] == 0
        assert env["degraded"] == [] and env["fault"] is None
        assert env["result"]["experiment"]["schema"] \
            == "repro-experiment/1"
        assert env["request_id"].startswith("req-")

    def test_request_ids_are_unique(self, service):
        ids = {service.handle("lint", {"source": SRC})["request_id"]
               for _ in range(3)}
        assert len(ids) == 3

    def test_lint_endpoint_returns_lint_payload(self, service):
        env = service.handle("lint", {"source": SRC})
        assert env["status"] == "ok"
        assert env["result"]["schema"] == "repro-lint/1"

    def test_malformed_source_is_invalid_input(self, service):
        env = service.handle("restructure", {"source": "not fortran"})
        assert env["status"] == "invalid-input"
        assert env["attempts"] == 1      # terminal: never retried
        assert "lint error" in env["reason"]
        assert env["result"] is None

    def test_missing_source_is_invalid_input(self, service):
        for bad in (None, [], {}, {"source": ""}, {"source": 42}):
            env = service.handle("restructure", bad)
            assert env["status"] == "invalid-input", bad

    def test_unknown_scenario_is_invalid_input(self, service):
        env = service.handle("restructure", {
            "source": SRC, "fault_scenario": "nope"})
        assert env["status"] == "invalid-input"
        assert "unknown fault scenario" in env["reason"]

    def test_fault_scenario_degrades_but_serves(self, service):
        env = service.handle("restructure", {
            "source": SRC, "quick": True, "fault_scenario": "chaos"})
        assert env["status"] == "degraded"
        assert "fault-scenario:chaos" in env["degraded"]
        table = env["result"]["experiment"]["experiments"]["source"]
        assert table["meta"]["fault_scenario"] == "chaos"


class TestMetrics:
    def test_requests_counted_by_status(self, service):
        service.handle("restructure", {"source": SRC, "quick": True})
        service.handle("restructure", {"source": "junk"})
        got = {(c["labels"]["endpoint"], c["labels"]["status"]):
               c["value"]
               for c in service.registry.snapshot()["counters"]
               if c["name"] == "repro_server_requests_total"}
        assert got[("restructure", "ok")] == 1
        assert got[("restructure", "invalid-input")] == 1


class TestDurability:
    def test_journal_records_accept_and_done(self, tmp_path):
        journal = tmp_path / "server.jsonl"
        svc = RestructurerService(workers=1, registry=MetricsRegistry(),
                                  journal_path=journal)
        try:
            env = svc.handle("lint", {"source": SRC})
        finally:
            svc.drain(5.0)
            get_cache().disk_error_hook = None
        j = SweepJournal(journal)
        rid = env["request_id"]
        assert f"accept:{rid}" in j
        assert f"done:{rid}" in j
        assert j.payload(f"done:{rid}")["status"] == "ok"

    def test_restart_reports_lost_in_flight(self, tmp_path):
        journal = tmp_path / "server.jsonl"
        # simulate a server that died mid-request: accept, no done
        j = SweepJournal(journal)
        j.record("accept:req-999-00001", {"endpoint": "restructure"})
        j.record("accept:req-999-00002", {"endpoint": "lint"})
        j.record("done:req-999-00002", {"status": "ok"})
        svc = RestructurerService(workers=1, registry=MetricsRegistry(),
                                  journal_path=journal)
        try:
            assert svc.lost_on_restart == ["req-999-00001"]
            assert svc.healthz()["lost_on_restart"] \
                == ["req-999-00001"]
            # the loss is journaled, so a *second* restart is clean
            svc2 = RestructurerService(workers=1,
                                       registry=MetricsRegistry(),
                                       journal_path=journal)
            try:
                assert svc2.lost_on_restart == []
            finally:
                svc2.drain(5.0)
        finally:
            svc.drain(5.0)
            get_cache().disk_error_hook = None


class TestDegradationLadder:
    def test_open_pool_breaker_serves_serially(self, service):
        service.pool_breaker.record_failure()
        service.pool_breaker.record_failure()
        service.pool_breaker.record_failure()
        assert service.pool_breaker.state == "open"
        env = service.handle("restructure", {"source": SRC,
                                             "quick": True})
        assert env["status"] == "degraded"
        assert "pool:serial" in env["degraded"]
        # the serial result is the full-fidelity artifact
        assert env["result"]["experiment"]["schema"] \
            == "repro-experiment/1"

    def test_open_store_breaker_goes_memory_only(self, service,
                                                 tmp_path):
        cache = get_cache()
        old_dir = cache.cache_dir
        cache.cache_dir = tmp_path
        try:
            service.store_breaker.record_failure()
            service.store_breaker.record_failure()
            service.store_breaker.record_failure()
            assert service.store_breaker.state == "open"
            env = service.handle("lint", {"source": SRC})
            assert env["status"] == "degraded"
            assert "cache:memory-only" in env["degraded"]
            assert cache.cache_dir is None      # disk store disabled
        finally:
            cache.cache_dir = old_dir

    def test_cache_disk_errors_feed_store_breaker(self, service):
        hook = get_cache().disk_error_hook
        assert hook is not None
        for _ in range(3):
            hook(OSError("disk on fire"))
        assert service.store_breaker.state == "open"


class TestLifecycle:
    def test_drain_flips_readyz(self, service):
        assert service.readyz() == {"ready": True}
        assert service.drain(timeout_s=5.0)
        assert service.readyz() == {"ready": False}
        assert service.healthz()["status"] == "draining"

    def test_healthz_reports_breakers(self, service):
        h = service.healthz()
        assert h["breakers"] == {"store": "closed", "pool": "closed"}
        assert h["in_flight"] == 0


class TestRequestDedup:
    """Identical concurrent /restructure bodies coalesce onto one
    in-flight computation (content-addressed by source + result-shaping
    fields); followers ride the leader's envelope instead of
    recomputing."""

    BODY = {"source": SRC, "quick": True}

    def test_identical_bodies_share_a_key(self, service):
        k1 = service._dedup_key("restructure", dict(self.BODY))
        k2 = service._dedup_key("restructure", dict(self.BODY))
        assert k1 is not None and k1 == k2

    def test_result_shaping_fields_split_the_key(self, service):
        base = service._dedup_key("restructure", dict(self.BODY))
        for extra in ({"quick": False}, {"engine": "source"},
                      {"fault_scenario": "chaos"}, {"path": "x.f"}):
            other = service._dedup_key("restructure",
                                       {**self.BODY, **extra})
            assert other is not None and other != base, extra

    def test_chaos_and_lint_never_coalesce(self, service):
        assert service._dedup_key(
            "restructure", {**self.BODY, "chaos": {"stall_s": 1}}) is None
        assert service._dedup_key("lint", dict(self.BODY)) is None

    def test_follower_rides_leader_envelope(self, service):
        import threading

        from repro.server.service import _InflightRequest

        key = service._dedup_key("restructure", dict(self.BODY))
        cell = service._inflight[key] = _InflightRequest()
        got = {}

        def follower():
            got["env"] = service.handle("restructure", dict(self.BODY))

        t = threading.Thread(target=follower)
        t.start()
        # the follower is parked on the in-flight cell; publish the
        # leader's envelope and it must return that object verbatim
        leader_env = {"schema": SERVER_SCHEMA, "status": "ok",
                      "request_id": "req-leader", "result": {"x": 1}}
        cell.envelope = leader_env
        cell.done.set()
        t.join(timeout=10.0)
        assert not t.is_alive()
        assert got["env"] is leader_env
        dedups = [c["value"]
                  for c in service.registry.snapshot()["counters"]
                  if c["name"] == "repro_server_dedup_total"]
        assert dedups == [1]
        del service._inflight[key]

    def test_leader_clears_the_inflight_table(self, service):
        env = service.handle("restructure", dict(self.BODY))
        assert env["status"] == "ok"
        assert service._inflight == {}

    def test_concurrent_identical_requests_all_serve(self, service):
        import threading

        envs = []
        lock = threading.Lock()

        def call():
            env = service.handle("restructure", dict(self.BODY))
            with lock:
                envs.append(env)

        threads = [threading.Thread(target=call) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert len(envs) == 3
        assert all(e["status"] == "ok" for e in envs)
        # coalesced followers return the leader's envelope verbatim, so
        # payloads agree whether or not the threads actually overlapped
        results = [e["result"]["experiment"]["experiments"]["source"]
                   for e in envs]
        assert results[0] == results[1] == results[2]
