"""Admission queue: bounded concurrency, shedding, no deadlocks."""

import threading
import time

import pytest

from repro.telemetry import MetricsRegistry

from repro.server.queue import AdmissionQueue, ShedRequest


class TestAdmission:
    def test_admits_up_to_capacity(self):
        q = AdmissionQueue(capacity=2, max_wait_s=0.05)
        q.acquire()
        q.acquire()
        assert q.in_flight == 2

    def test_sheds_when_full(self):
        q = AdmissionQueue(capacity=1, max_wait_s=0.05)
        q.acquire()
        with pytest.raises(ShedRequest) as exc:
            q.acquire()
        assert exc.value.reason == "queue-full"

    def test_release_unblocks_a_waiter(self):
        q = AdmissionQueue(capacity=1, max_wait_s=5.0)
        q.acquire()
        admitted = threading.Event()

        def waiter():
            q.acquire()
            admitted.set()

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        assert not admitted.is_set()
        q.release()
        t.join(5.0)
        assert admitted.is_set()

    def test_deadline_shorter_than_queue_wait_sheds_as_deadline(self):
        q = AdmissionQueue(capacity=1, max_wait_s=5.0)
        q.acquire()
        t0 = time.monotonic()
        with pytest.raises(ShedRequest) as exc:
            q.acquire(deadline_s=0.05)
        assert exc.value.reason == "deadline"
        # bounded: the wait honoured the deadline, not max_wait_s
        assert time.monotonic() - t0 < 2.0

    def test_zero_deadline_with_free_slot_is_admitted(self):
        q = AdmissionQueue(capacity=1, max_wait_s=5.0)
        q.acquire(deadline_s=0.0)       # a slot is free: no wait needed
        assert q.in_flight == 1

    def test_never_deadlocks_without_release(self):
        # even a lost release cannot park a caller forever: every wait
        # is bounded by the admission budget
        q = AdmissionQueue(capacity=1, max_wait_s=0.2)
        q.acquire()
        t0 = time.monotonic()
        with pytest.raises(ShedRequest):
            q.acquire()
        assert time.monotonic() - t0 < 5.0

    def test_release_floor_is_zero(self):
        q = AdmissionQueue(capacity=1)
        q.release()                     # spurious release is harmless
        assert q.in_flight == 0
        q.acquire()
        assert q.in_flight == 1


class TestDrain:
    def test_drain_empty_queue_is_immediate(self):
        assert AdmissionQueue(capacity=2).drain(timeout_s=0.5)

    def test_drain_waits_for_in_flight(self):
        q = AdmissionQueue(capacity=2)
        q.acquire()

        def finish():
            time.sleep(0.1)
            q.release()

        threading.Thread(target=finish).start()
        assert q.drain(timeout_s=5.0)
        assert q.in_flight == 0

    def test_drain_times_out_bounded(self):
        q = AdmissionQueue(capacity=1)
        q.acquire()                     # never released
        t0 = time.monotonic()
        assert not q.drain(timeout_s=0.3)
        assert time.monotonic() - t0 < 5.0


class TestMetrics:
    def test_depth_gauge_and_shed_counter(self):
        reg = MetricsRegistry()
        q = AdmissionQueue(capacity=1, max_wait_s=0.05, registry=reg)
        q.acquire()
        with pytest.raises(ShedRequest):
            q.acquire()
        snap = reg.snapshot()
        depth = [g["value"] for g in snap["gauges"]
                 if g["name"] == "repro_server_queue_depth"]
        shed = [c["value"] for c in snap["counters"]
                if c["name"] == "repro_server_shed_total"
                and c["labels"]["reason"] == "queue-full"]
        assert depth == [1] and shed == [1]


class TestConcurrencyStress:
    def test_many_threads_all_terminate_classified(self):
        # the no-deadlock contract under real contention: every caller
        # either finishes its work or sheds — nobody hangs
        q = AdmissionQueue(capacity=4, max_wait_s=0.5)
        outcomes = []
        lock = threading.Lock()

        def worker():
            try:
                q.acquire()
                try:
                    time.sleep(0.01)
                finally:
                    q.release()
                result = "ok"
            except ShedRequest:
                result = "shed"
            with lock:
                outcomes.append(result)

        threads = [threading.Thread(target=worker) for _ in range(32)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert not any(t.is_alive() for t in threads), "worker hung"
        assert len(outcomes) == 32
        assert set(outcomes) <= {"ok", "shed"}
        assert outcomes.count("ok") >= 1
        assert q.in_flight == 0
