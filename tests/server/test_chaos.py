"""The chaos acceptance test (ISSUE 9 acceptance criterion).

A seeded fault scenario — real worker SIGKILLs mid-request, the cache
store's disk yanked away, a watchdog-length stall — driven through the
service, asserting the classified-outcome contract: every accepted
request terminates as ``ok`` / ``degraded`` / ``shed`` /
``invalid-input`` / ``error``, nothing hangs, nothing deadlocks, and a
``/restructure`` result served through the service is byte-identical to
the same pipeline run via the ``repro.experiments --source`` CLI path.
"""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.engine.cache import get_cache
from repro.telemetry import MetricsRegistry

from repro.server.retry import RetryPolicy
from repro.server.service import RestructurerService

REPO = Path(__file__).resolve().parents[2]
SAMPLE = REPO / "examples" / "sample.f"

SRC = """      subroutine axpy(n, a, x, y)
      integer n, i
      real a, x(n), y(n)
      do 10 i = 1, n
         y(i) = y(i) + a * x(i)
   10 continue
      return
      end
"""

CLASSIFIED = {"ok", "degraded", "shed", "invalid-input", "error"}


@pytest.fixture
def chaos_service(tmp_path):
    svc = RestructurerService(
        workers=2, chaos=True, registry=MetricsRegistry(),
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.01, seed=42),
        journal_path=tmp_path / "journal.jsonl",
        default_timeout_s=20.0)
    yield svc
    svc.drain(timeout_s=10.0)
    get_cache().disk_error_hook = None


class TestWorkerKill:
    def test_sigkill_mid_request_is_retried_to_success(self,
                                                       chaos_service):
        env = chaos_service.handle("restructure", {
            "source": SRC, "quick": True, "chaos": {"kill_worker": 1}})
        assert env["status"] == "ok"
        assert env["attempts"] == 2 and env["retries"] == 1

    def test_kill_budget_exhaustion_is_classified_error(self,
                                                        chaos_service):
        # more kills than the retry budget: the request must terminate
        # as a classified error, never hang or raise
        env = chaos_service.handle("restructure", {
            "source": SRC, "quick": True, "chaos": {"kill_worker": 99}})
        assert env["status"] == "error"
        assert env["attempts"] == 3
        assert env["fault"]["kind"] == "internal"
        # and the service still works afterwards (pool respawned)
        env = chaos_service.handle("lint", {"source": SRC})
        assert env["status"] in ("ok", "degraded")


class TestStall:
    def test_watchdog_length_stall_retried_to_success(self,
                                                      chaos_service):
        env = chaos_service.handle("restructure", {
            "source": SRC, "quick": True, "timeout_s": 1.0,
            "chaos": {"stall_s": 30.0}})
        assert env["status"] == "ok"
        assert env["attempts"] == 2       # stall fires only once


class TestStoreFailure:
    def test_unwritable_cache_dir_degrades_not_dies(self, tmp_path):
        # a path whose parent is a regular file fails with OSError on
        # every write — even as root (chmod is root-bypassed)
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = get_cache()
        old_dir = cache.cache_dir
        cache.cache_dir = blocker / "cache"
        svc = RestructurerService(
            workers=1, registry=MetricsRegistry(),
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.01))
        try:
            # distinct sources: each is a fresh cache miss, so every
            # request actually touches the failing disk store
            statuses = [svc.handle("restructure",
                                   {"source": SRC.replace(
                                        "axpy", f"ax{i}"),
                                    "quick": True,
                                    "path": f"v{i}.f"})["status"]
                        for i in range(4)]
            # every request terminated classified; once the breaker
            # opened, responses are explicitly degraded to memory-only
            assert set(statuses) <= {"ok", "degraded"}
            assert svc.store_breaker.state == "open"
            assert "cache:memory-only" in \
                svc.handle("lint", {"source": SRC})["degraded"]
            assert cache.cache_dir is None
        finally:
            svc.drain(10.0)
            cache.cache_dir = old_dir
            cache.disk_error_hook = None


class TestEverythingAtOnce:
    def test_mixed_chaos_burst_all_classified(self, chaos_service):
        """The full scenario: kills, stalls, bad input, fault plans and
        clean requests concurrently — every outcome classified, no
        thread hangs."""
        requests = [
            {"source": SRC, "quick": True},
            {"source": SRC, "quick": True,
             "chaos": {"kill_worker": 1}},
            {"source": "m a l f o r m e d"},
            {"source": SRC, "quick": True, "fault_scenario": "chaos"},
            {"source": SRC, "quick": True, "timeout_s": 1.0,
             "chaos": {"stall_s": 30.0}},
            {"source": SRC, "quick": True,
             "chaos": {"kill_worker": 99}},
        ]
        outcomes = [None] * len(requests)

        def drive(i):
            outcomes[i] = chaos_service.handle("restructure",
                                               requests[i])

        threads = [threading.Thread(target=drive, args=(i,))
                   for i in range(len(requests))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120.0)
        assert not any(t.is_alive() for t in threads), "request hung"
        statuses = [env["status"] for env in outcomes]
        assert all(s in CLASSIFIED for s in statuses), statuses
        assert statuses[0] in ("ok", "degraded")
        assert statuses[2] == "invalid-input"
        assert outcomes[3]["status"] == "degraded"
        assert outcomes[5]["status"] == "error"
        # in-flight work fully released: nothing leaked a queue slot
        assert chaos_service.queue.in_flight == 0

    def test_shedding_under_deadline_pressure(self, chaos_service):
        # saturate the queue with slow work, then demand an instant
        # answer: the service sheds rather than parks the caller
        chaos_service.queue.capacity = 1
        hold = threading.Event()
        release = threading.Event()

        def occupier():
            chaos_service.queue.acquire()
            hold.set()
            release.wait(30.0)
            chaos_service.queue.release()

        t = threading.Thread(target=occupier)
        t.start()
        assert hold.wait(5.0)
        try:
            env = chaos_service.handle("restructure", {
                "source": SRC, "quick": True, "deadline_s": 0.05})
            assert env["status"] == "shed"
            assert env["reason"] == "deadline"
            assert env["result"] is None
        finally:
            release.set()
            t.join(10.0)


class TestByteIdentity:
    def test_served_result_matches_cli_output(self, chaos_service):
        """The acceptance bar: a /restructure result served through the
        service is byte-identical to the CLI's --source --json path."""
        source = SAMPLE.read_text()
        env = chaos_service.handle("restructure", {
            "source": source, "path": str(SAMPLE), "quick": True})
        assert env["status"] == "ok"
        served = json.dumps(env["result"]["experiment"], indent=2) + "\n"

        cli = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "--source",
             str(SAMPLE), "--quick", "--json"],
            capture_output=True, text=True, timeout=300,
            env={**os.environ,
                 "PYTHONPATH": str(REPO / "src"),
                 "REPRO_CACHE_DISABLE": "",
                 "REPRO_CACHE_DIR": ""},
            cwd=str(REPO))
        assert cli.returncode == 0, cli.stderr
        assert served == cli.stdout

    def test_served_envelope_validates(self, chaos_service):
        sys.path.insert(0, str(REPO / "scripts"))
        try:
            import validate_experiment_json as vej
        finally:
            sys.path.pop(0)
        for request in ({"source": SRC, "quick": True},
                        {"source": SRC, "quick": True,
                         "fault_scenario": "chaos"},
                        {"source": "junk"}):
            env = chaos_service.handle("restructure", request)
            problems = vej.validate(env)
            assert problems == [], (request, problems)
        env = chaos_service.handle("lint", {"source": SRC})
        assert vej.validate(env) == []
