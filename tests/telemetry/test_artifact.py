"""The PR's acceptance scenario: a ``--jobs 2 --telemetry DIR`` sweep
produces one merged ``repro-metrics/1`` artifact that passes both
validators, carries spans from at least two worker processes with
per-stage breakdowns and cache hit rates — while the sweep's own JSON
payload stays byte-identical to a serial, telemetry-off run."""

import contextlib
import importlib.util
import io
import json
from pathlib import Path

import pytest

from repro import telemetry

ROOT = Path(__file__).resolve().parents[2]


def _load_script_validator():
    spec = importlib.util.spec_from_file_location(
        "validate_experiment_json",
        ROOT / "scripts" / "validate_experiment_json.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    """One serial/off + one parallel/on experiments sweep, shared by the
    assertions below (the sweep is the expensive part)."""
    import repro.experiments.__main__ as exp

    def run(argv):
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = exp.main(argv)
        assert rc == 0
        return buf.getvalue()

    tdir = tmp_path_factory.mktemp("telem")
    off = run(["table1", "fig6", "--quick", "--json", "--jobs", "1"])
    on = run(["table1", "fig6", "--quick", "--json", "--jobs", "2",
              "--telemetry", str(tdir)])
    payload = json.loads((tdir / "metrics.json").read_text())
    return {"dir": tdir, "off": off, "on": on, "payload": payload}


class TestAcceptance:
    def test_sweep_json_byte_identical(self, sweep):
        assert sweep["on"] == sweep["off"]

    def test_artifact_passes_canonical_validator(self, sweep):
        assert telemetry.validate_metrics(sweep["payload"]) == []

    def test_artifact_passes_script_validator(self, sweep):
        mod = _load_script_validator()
        assert mod.validate(sweep["payload"]) == []

    def test_spans_from_at_least_two_workers(self, sweep):
        span_pids = {s["pid"] for s in sweep["payload"]["spans"]}
        assert len(span_pids) >= 2
        assert len(sweep["payload"]["pids"]) >= 2

    def test_spans_keyed_by_cell_index(self, sweep):
        cells = [s for s in sweep["payload"]["spans"]
                 if s["name"] == "cell"]
        assert cells
        indices = {s["cell"] for s in cells}
        assert indices == set(range(len(cells)))

    def test_per_stage_breakdown_present(self, sweep):
        stages = sweep["payload"]["summary"]["stages"]
        # experiment cells drive the front end + the perf estimator
        assert {"parse", "restructure", "estimate"} <= set(stages)
        assert all(st["count"] > 0 and st["total_s"] >= 0.0
                   for st in stages.values())

    def test_cache_hit_rates_present(self, sweep):
        cache = sweep["payload"]["summary"]["cache"]
        assert cache, "no cache accounting in the artifact"
        for slot in cache.values():
            assert slot["hits"] + slot["misses"] > 0
            assert 0.0 <= slot["hit_rate"] <= 1.0

    def test_worker_utilization_present(self, sweep):
        workers = sweep["payload"]["summary"]["workers"]
        assert len(workers) >= 2
        assert all(0.0 <= w["utilization"] <= 1.0
                   for w in workers.values())

    def test_session_dir_is_clean(self, sweep):
        names = {p.name for p in sweep["dir"].iterdir()}
        assert names == {"meta.json", "metrics.json", "spans.jsonl",
                         "metrics.prom"}

    def test_prometheus_export_written(self, sweep):
        text = (sweep["dir"] / "metrics.prom").read_text()
        assert "# TYPE repro_cell_seconds histogram" in text
        assert "repro_cell_seconds_count" in text


class TestEnvVarPath:
    def test_env_var_enables_telemetry(self, tmp_path, monkeypatch,
                                       capsys):
        import repro.validate.__main__ as val

        tdir = tmp_path / "telem"
        monkeypatch.setenv("REPRO_TELEMETRY", str(tdir))
        assert val.main(["tridag", "--no-bisect", "--json"]) == 0
        payload = json.loads((tdir / "metrics.json").read_text())
        assert telemetry.validate_metrics(payload) == []
        assert payload["summary"]["cells"] == 1
        # finalize popped the env var: the session does not leak
        import os

        assert "REPRO_TELEMETRY" not in os.environ

    def test_faults_sweep_instrumented(self, tmp_path, capsys):
        import repro.faults.__main__ as faults

        tdir = tmp_path / "telem"
        assert faults.main(["sweep", "--quick", "--workloads", "tridag",
                            "--scenarios", "healthy", "dead-ce",
                            "--json", "--telemetry", str(tdir)]) == 0
        payload = json.loads((tdir / "metrics.json").read_text())
        assert telemetry.validate_metrics(payload) == []
        # the fault sweep fans out per workload: one cell here
        assert payload["summary"]["cells"] == 1
        assert payload["harness"] == "repro.faults sweep"
