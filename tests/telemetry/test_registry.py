"""Counters, gauges, fixed-bucket histograms (repro.telemetry.registry)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.registry import (
    LATENCY_BUCKETS_S,
    Histogram,
    MetricsRegistry,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        r = MetricsRegistry()
        c = r.counter("reqs", kind="parse")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("reqs").inc(-1)

    def test_gauge_sets_and_bumps(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3)
        g.inc()
        assert g.value == 4.0

    def test_identity_by_name_and_labels(self):
        r = MetricsRegistry()
        assert r.counter("x", a="1") is r.counter("x", a="1")
        assert r.counter("x", a="1") is not r.counter("x", a="2")
        assert r.counter("x") is not r.gauge("x")


class TestHistogram:
    def test_bucket_counts_sum_to_count(self):
        h = Histogram("h", {}, bounds=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]        # one overflow bucket
        assert h.count == 3 and h.sum == 101.0
        assert h.min == 0.5 and h.max == 99.0

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", {}, bounds=(2.0, 1.0))

    def test_empty_percentile_is_nan(self):
        assert math.isnan(Histogram("h", {}).percentile(0.5))

    def test_q_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", {}).percentile(1.5)

    def test_merge_adds_counts(self):
        a = Histogram("h", {}, bounds=LATENCY_BUCKETS_S)
        b = Histogram("h", {}, bounds=LATENCY_BUCKETS_S)
        a.observe(0.1)
        b.observe(10.0)
        a._merge(b)
        assert a.count == 2
        assert a.min == 0.1 and a.max == 10.0

    def test_merge_rejects_different_bounds(self):
        a = Histogram("h", {}, bounds=(1.0,))
        b = Histogram("h", {}, bounds=(2.0,))
        with pytest.raises(ValueError):
            a._merge(b)


# The invariant the artifact validator leans on: a percentile estimate
# can never escape the observed extremes, and it is monotone in q.
@settings(deadline=None, max_examples=200)
@given(st.lists(st.floats(min_value=0.0, max_value=500.0,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=100),
       st.lists(st.floats(min_value=0.0, max_value=1.0),
                min_size=2, max_size=8))
def test_percentiles_bounded_and_monotone(values, qs):
    h = Histogram("h", {})
    for v in values:
        h.observe(v)
    lo, hi = min(values), max(values)
    estimates = [h.percentile(q) for q in sorted(qs)]
    for p in estimates:
        assert lo <= p <= hi
    assert all(b >= a for a, b in zip(estimates, estimates[1:]))


@settings(deadline=None, max_examples=100)
@given(st.lists(st.floats(min_value=0.0, max_value=500.0,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=60),
       st.integers(min_value=1, max_value=4))
def test_sharded_merge_equals_single_histogram(values, shards):
    """Observing values across N shards then merging == one histogram."""
    whole = Histogram("h", {})
    parts = [Histogram("h", {}) for _ in range(shards)]
    for i, v in enumerate(values):
        whole.observe(v)
        parts[i % shards].observe(v)
    merged = parts[0]
    for p in parts[1:]:
        merged._merge(p)
    assert merged.counts == whole.counts
    assert merged.count == whole.count
    assert merged.min == whole.min and merged.max == whole.max
    for q in (0.5, 0.9, 0.99):
        assert merged.percentile(q) == whole.percentile(q)


class TestRegistryExport:
    def test_snapshot_shape_and_percentile_keys(self):
        r = MetricsRegistry()
        r.counter("reqs", kind="parse").inc(2)
        h = r.histogram("lat")
        h.observe(0.2)
        snap = r.snapshot()
        [c] = snap["counters"]
        assert c == {"name": "reqs", "labels": {"kind": "parse"},
                     "value": 2}
        [hs] = snap["histograms"]
        assert hs["count"] == 1
        for p in ("p50", "p90", "p95", "p99"):
            assert hs[p] == pytest.approx(0.2)

    def test_empty_histogram_snapshot_has_null_percentiles(self):
        r = MetricsRegistry()
        r.histogram("lat")
        [hs] = r.snapshot()["histograms"]
        assert hs["min"] is None and hs["p99"] is None

    def test_merge_snapshot_roundtrip(self):
        a = MetricsRegistry()
        a.counter("reqs").inc(3)
        a.gauge("depth").set(7)
        a.histogram("lat").observe(0.5)
        b = MetricsRegistry()
        b.counter("reqs").inc(1)
        b.gauge("depth").set(2)
        b.histogram("lat").observe(1.5)
        b.merge_snapshot(a.snapshot())
        snap = b.snapshot()
        [c] = snap["counters"]
        assert c["value"] == 4                       # counters add
        [g] = snap["gauges"]
        assert g["value"] == 7                       # gauges keep the max
        [h] = snap["histograms"]
        assert h["count"] == 2 and h["min"] == 0.5 and h["max"] == 1.5

    def test_reset_zeroes_in_place(self):
        r = MetricsRegistry()
        c = r.counter("reqs")
        c.inc(5)
        r.reset()
        assert c.value == 0                          # same object
        assert r.counter("reqs") is c

    def test_collectors_run_before_snapshot(self):
        r = MetricsRegistry()
        r.add_collector(lambda reg: reg.gauge("entries").set(42))
        [g] = r.snapshot()["gauges"]
        assert g["value"] == 42.0

    def test_prometheus_text_format(self):
        r = MetricsRegistry()
        r.counter("repro_reqs_total", kind="parse").inc(2)
        r.histogram("lat", bounds=(1.0, 2.0)).observe(1.5)
        text = r.to_prometheus()
        assert "# TYPE repro_reqs_total counter" in text
        assert 'repro_reqs_total{kind="parse"} 2' in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="1.0"} 0' in text
        assert 'lat_bucket{le="2.0"} 1' in text      # cumulative
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text


class TestPrometheusSpec:
    """Exposition-format edge cases the scrape side chokes on: bad
    names, unescaped label values, and missing +Inf buckets."""

    def test_help_line_precedes_type_once_per_family(self):
        r = MetricsRegistry()
        r.counter("repro_cache_requests_total", kind="parse").inc()
        r.counter("repro_cache_requests_total", kind="restructure").inc()
        text = r.to_prometheus()
        assert text.count(
            "# HELP repro_cache_requests_total") == 1
        assert text.count(
            "# TYPE repro_cache_requests_total counter") == 1
        help_at = text.index("# HELP repro_cache_requests_total")
        type_at = text.index("# TYPE repro_cache_requests_total")
        assert help_at < type_at

    def test_metric_and_label_names_sanitized(self):
        r = MetricsRegistry()
        r.counter("stage.seconds-total", **{"work load": "a/b"}).inc()
        text = r.to_prometheus()
        assert 'stage_seconds_total{work_load="a/b"} 1' in text

    def test_digit_first_name_prefixed(self):
        r = MetricsRegistry()
        r.counter("2fast").inc()
        assert "_2fast 1" in r.to_prometheus()

    def test_label_values_escaped(self):
        r = MetricsRegistry()
        r.counter("c", path='dir\\x', note='say "hi"\nbye').inc()
        line = next(ln for ln in r.to_prometheus().splitlines()
                    if ln.startswith("c{"))
        assert '\\\\x' in line          # backslash doubled
        assert '\\"hi\\"' in line       # quotes escaped
        assert '\\nbye' in line         # literal newline escaped
        assert "\n" not in line

    def test_help_text_escaped(self):
        from repro.telemetry.registry import _prom_escape_help

        assert _prom_escape_help("a\\b\nc") == "a\\\\b\\nc"
        assert _prom_escape_help('say "hi"') == 'say "hi"'  # quotes kept

    def test_histogram_always_ends_with_inf_bucket(self):
        r = MetricsRegistry()
        r.histogram("lat", bounds=(0.5,)).observe(99.0)
        text = r.to_prometheus()
        assert 'lat_bucket{le="0.5"} 0' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        # +Inf bucket always equals the count (cumulative contract)
        assert "lat_count 1" in text

    def test_labelled_histogram_le_composes_with_labels(self):
        r = MetricsRegistry()
        r.histogram("lat", bounds=(1.0,), stage="parse").observe(0.5)
        text = r.to_prometheus()
        assert 'lat_bucket{le="1.0",stage="parse"} 1' in text
        assert 'lat_bucket{le="+Inf",stage="parse"} 1' in text
        assert 'lat_sum{stage="parse"}' in text
