"""The ``python -m repro.telemetry`` CLI: report, validate, merge."""

import json

from repro import telemetry
from repro.telemetry.__main__ import main


def _session(tmp_path, cells=2):
    telemetry.configure(tmp_path)
    for i in range(cells):
        with telemetry.cell_span(i, f"validate w{i}"):
            with telemetry.span("parse"):
                pass
            with telemetry.span("execute"):
                pass
    telemetry.flush()
    telemetry.shutdown(flush_shard=False)
    return tmp_path


class TestMerge:
    def test_merge_folds_shards(self, tmp_path, capsys):
        _session(tmp_path)
        assert main(["merge", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 cell(s)" in out
        assert (tmp_path / "metrics.json").exists()
        assert not list(tmp_path.glob("spans-*.jsonl"))


class TestValidate:
    def test_valid_artifact_passes(self, tmp_path, capsys):
        _session(tmp_path)
        assert main(["validate", str(tmp_path)]) == 0
        assert "conform to repro-metrics/1" in capsys.readouterr().out

    def test_corrupt_artifact_fails(self, tmp_path, capsys):
        _session(tmp_path)
        main(["merge", str(tmp_path)])
        capsys.readouterr()
        doc = json.loads((tmp_path / "metrics.json").read_text())
        doc["summary"]["cells"] = 99
        (tmp_path / "metrics.json").write_text(json.dumps(doc))
        assert main(["validate", str(tmp_path)]) == 1
        assert "violation" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main(["validate", str(tmp_path / "nope")]) == 2


class TestReport:
    def test_report_renders_sections(self, tmp_path, capsys):
        _session(tmp_path)
        assert main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry report — trace" in out
        assert "cell latency: p50" in out
        assert "per-stage time breakdown" in out
        assert "parse" in out and "execute" in out
        assert "slowest cell(s)" in out
        assert "worker utilization" in out

    def test_report_accepts_metrics_json_file(self, tmp_path, capsys):
        _session(tmp_path)
        main(["merge", str(tmp_path)])
        capsys.readouterr()
        assert main(["report", str(tmp_path / "metrics.json"),
                     "--top", "1"]) == 0
        assert "top 1 slowest cell(s)" in capsys.readouterr().out
