"""Span recording, shard I/O, and the no-op-when-disabled contract."""

import json

import pytest

from repro import telemetry
from repro.telemetry import spans as spanmod


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        assert telemetry.span("parse") is telemetry.span("restructure")
        assert telemetry.cell_span(0, "x") is telemetry.span("parse")
        assert not telemetry.enabled()

    def test_disabled_writes_nothing(self, tmp_path):
        with telemetry.span("parse", workload="TRFD"):
            pass
        telemetry.flush()
        assert list(tmp_path.iterdir()) == []

    def test_flush_and_shutdown_are_safe_when_off(self):
        telemetry.flush()
        telemetry.shutdown()


class TestConfigure:
    def test_configure_creates_session(self, tmp_path):
        telemetry.configure(tmp_path / "t")
        assert telemetry.enabled()
        meta = json.loads((tmp_path / "t" / "meta.json").read_text())
        assert meta["trace_id"] and meta["pid"]
        import os

        assert os.environ["REPRO_TELEMETRY"] == str(tmp_path / "t")

    def test_shutdown_clears_env(self, tmp_path, monkeypatch):
        telemetry.configure(tmp_path)
        telemetry.shutdown()
        import os

        assert "REPRO_TELEMETRY" not in os.environ
        assert not telemetry.enabled()

    def test_configure_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", str(tmp_path / "s"))
        assert telemetry.configure_from_env()
        assert spanmod.current_dir() == tmp_path / "s"
        # idempotent: joining the same session again keeps the state
        state = spanmod._STATE
        assert telemetry.configure_from_env()
        assert spanmod._STATE is state

    def test_configure_from_env_without_var(self):
        assert not telemetry.configure_from_env()


class TestSpanRecording:
    def test_nesting_records_parent_linkage(self, tmp_path):
        telemetry.configure(tmp_path)
        with telemetry.span("restructure", workload="TRFD"):
            with telemetry.span("parse"):
                pass
        inner, outer = spanmod._STATE.spans
        assert inner["name"] == "parse"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert outer["attrs"] == {"workload": "TRFD"}
        assert inner["duration_s"] >= 0.0

    def test_exception_marks_error_and_propagates(self, tmp_path):
        telemetry.configure(tmp_path)
        with pytest.raises(ValueError):
            with telemetry.span("compile"):
                raise ValueError("boom")
        [rec] = spanmod._STATE.spans
        assert rec["error"] == "ValueError"

    def test_stage_latency_observed(self, tmp_path):
        telemetry.configure(tmp_path)
        with telemetry.span("execute"):
            pass
        h = telemetry.get_registry().histogram("repro_stage_seconds",
                                               stage="execute")
        assert h.count == 1

    def test_cell_span_sets_context_and_flushes(self, tmp_path):
        telemetry.configure(tmp_path)
        with telemetry.cell_span(3, "validate tridag"):
            with telemetry.span("execute"):
                assert spanmod._STATE.cell == 3
        assert spanmod._STATE.cell is None
        # the cell flushed this process's shard on exit
        import os

        shard = tmp_path / f"spans-{os.getpid()}.jsonl"
        recs = [json.loads(ln) for ln in
                shard.read_text().splitlines()]
        assert [r["name"] for r in recs] == ["execute", "cell"]
        assert all(r["cell"] == 3 for r in recs)
        assert recs[1]["attrs"] == {"label": "validate tridag"}
        assert telemetry.get_registry().histogram(
            "repro_cell_seconds").count == 1


class TestShardIO:
    def test_flush_appends_spans_and_snapshots_metrics(self, tmp_path):
        telemetry.configure(tmp_path)
        with telemetry.span("parse"):
            pass
        telemetry.flush()
        with telemetry.span("parse"):
            pass
        telemetry.flush()
        import os

        pid = os.getpid()
        lines = (tmp_path / f"spans-{pid}.jsonl").read_text().splitlines()
        assert len(lines) == 2                      # appended, not replaced
        snap = json.loads((tmp_path / f"metrics-{pid}.json").read_text())
        assert snap["pid"] == pid
        [h] = [m for m in snap["metrics"]["histograms"]
               if m["name"] == "repro_stage_seconds"
               and m["labels"] == {"stage": "parse"}]
        assert h["count"] == 2                      # snapshot, not delta

    def test_unwritable_dir_never_raises(self, tmp_path):
        d = tmp_path / "ro"
        d.mkdir()
        telemetry.configure(d)
        d.chmod(0o500)
        try:
            with telemetry.cell_span(0, "x"):
                pass                                # flush swallows OSError
        finally:
            d.chmod(0o700)


class TestMergeDir:
    def _session(self, tmp_path, cells=3):
        telemetry.configure(tmp_path)
        for i in range(cells):
            with telemetry.cell_span(i, f"cell {i}"):
                with telemetry.span("execute"):
                    pass
        telemetry.flush()

    def test_merge_builds_artifact_and_removes_shards(self, tmp_path):
        self._session(tmp_path)
        payload = telemetry.merge_dir(tmp_path, harness="test")
        assert payload["schema"] == telemetry.SCHEMA_TAG
        assert payload["summary"]["cells"] == 3
        assert payload["summary"]["stages"]["execute"]["count"] == 3
        assert not list(tmp_path.glob("spans-*.jsonl"))
        assert not list(tmp_path.glob("metrics-*.json"))
        for name in ("metrics.json", "spans.jsonl", "metrics.prom"):
            assert (tmp_path / name).exists()
        assert telemetry.validate_metrics(payload) == []

    def test_remerge_is_idempotent(self, tmp_path):
        self._session(tmp_path)
        first = telemetry.merge_dir(tmp_path, harness="test")
        again = telemetry.merge_dir(tmp_path, harness="test")
        assert again["spans"] == first["spans"]
        assert again["summary"] == first["summary"]

    def test_spans_jsonl_sorted_by_cell(self, tmp_path):
        self._session(tmp_path)
        telemetry.merge_dir(tmp_path)
        cells = [json.loads(ln)["cell"] for ln in
                 (tmp_path / "spans.jsonl").read_text().splitlines()]
        assert cells == sorted(cells)

    def test_finalize_echoes_and_ends_session(self, tmp_path):
        self._session(tmp_path, cells=1)
        echoed = []
        payload = telemetry.finalize(harness="t", echo=echoed.append)
        assert payload["summary"]["cells"] == 1
        assert "metrics.json" in echoed[0]
        assert not telemetry.enabled()
        # nothing left behind but the merged artifact + meta
        leftovers = {p.name for p in tmp_path.iterdir()}
        assert leftovers == {"meta.json", "metrics.json", "spans.jsonl",
                             "metrics.prom"}

    def test_finalize_is_noop_when_off(self):
        assert telemetry.finalize(harness="t") is None


class TestValidatorCatchesCorruption:
    def test_doctored_artifact_fails_validation(self, tmp_path):
        telemetry.configure(tmp_path)
        with telemetry.cell_span(0, "x"):
            pass
        telemetry.flush()
        payload = telemetry.merge_dir(tmp_path)
        assert telemetry.validate_metrics(payload) == []
        payload["summary"]["cells"] += 1
        assert any("recount" in p for p in
                   telemetry.validate_metrics(payload))
        payload["spans"][0]["parent"] = "nope-1"
        assert any("does not resolve" in p for p in
                   telemetry.validate_metrics(payload))


class TestShardTolerance:
    """merge_dir survives damaged worker shards: a worker killed
    mid-write must cost its torn tail, not the whole sweep's artifact."""

    def _session(self, tmp_path, cells=3):
        telemetry.configure(tmp_path)
        for i in range(cells):
            with telemetry.cell_span(i, f"cell {i}"):
                with telemetry.span("execute"):
                    pass
        telemetry.flush()

    def test_truncated_spans_shard_keeps_the_rest(self, tmp_path,
                                                  capsys):
        self._session(tmp_path)
        [shard] = tmp_path.glob("spans-*.jsonl")
        lines = shard.read_text().splitlines(keepends=True)
        # a worker died mid-write: the last record is half a line
        shard.write_text("".join(lines[:-1]) + lines[-1][:10])
        payload = telemetry.merge_dir(tmp_path, harness="test")
        err = capsys.readouterr().err
        assert "truncated" in err and "torn line" in err
        # everything before the tear survived
        assert len(payload["spans"]) == len(lines) - 1
        assert (tmp_path / "metrics.json").exists()
        assert not list(tmp_path.glob("spans-*.jsonl"))

    def test_corrupt_metrics_shard_is_skipped_with_warning(
            self, tmp_path, capsys):
        self._session(tmp_path)
        [shard] = tmp_path.glob("metrics-*.json")
        shard.write_text('{"counters": {"x')   # killed mid-dump
        payload = telemetry.merge_dir(tmp_path, harness="test")
        err = capsys.readouterr().err
        assert "warning" in err
        assert payload["summary"]["cells"] == 3
        # the damaged shard is still cleaned up after the merge
        assert not list(tmp_path.glob("metrics-*.json"))

    def test_undamaged_merge_warns_nothing(self, tmp_path, capsys):
        self._session(tmp_path)
        telemetry.merge_dir(tmp_path, harness="test")
        assert "warning" not in capsys.readouterr().err
