"""Telemetry tests mutate process-global state (the active session and
the process-wide registry); every test starts and ends with both clean."""

import pytest


@pytest.fixture(autouse=True)
def _clean_telemetry(monkeypatch):
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    from repro import telemetry

    telemetry.shutdown()
    telemetry.get_registry().reset()
    yield
    telemetry.shutdown()
    telemetry.get_registry().reset()
