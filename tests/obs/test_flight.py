"""repro.obs.flight: the crash-context ring buffer."""

from repro.obs import flight, log


class TestRing:
    def test_disabled_by_default(self):
        assert not flight.enabled()
        flight.record({"event": "dropped"})      # no-op, no error
        assert flight.tail() == []

    def test_bounded_capacity_keeps_newest(self):
        flight.enable(capacity=4)
        for i in range(10):
            flight.record({"i": i})
        events = flight.tail(100)
        assert [e["i"] for e in events] == [6, 7, 8, 9]

    def test_tail_returns_oldest_first(self):
        flight.enable()
        for i in range(5):
            flight.record({"i": i})
        assert [e["i"] for e in flight.tail(3)] == [2, 3, 4]

    def test_reenable_same_capacity_keeps_events(self):
        flight.enable()
        flight.record({"i": 1})
        flight.enable()
        assert [e["i"] for e in flight.tail()] == [1]

    def test_clear(self):
        flight.enable()
        flight.record({"i": 1})
        flight.clear()
        assert flight.tail() == []


class TestSpanObserver:
    def test_completed_spans_are_summarized(self, tmp_path):
        from repro import telemetry

        telemetry.configure(tmp_path / "telem")
        flight.enable()
        with telemetry.cell_span(2, "validate tridag"):
            with telemetry.span("parse"):
                pass
        events = flight.tail()
        names = [e.get("name") for e in events if e.get("kind") == "span"]
        assert "parse" in names and "cell" in names
        cell_ev = next(e for e in events if e.get("name") == "cell")
        assert cell_ev["cell"] == 2
        assert cell_ev["label"] == "validate tridag"
        assert isinstance(cell_ev["duration_s"], float)
        telemetry.shutdown()

    def test_observer_removed_on_disable(self, tmp_path):
        from repro import telemetry
        from repro.telemetry import spans as spanmod

        flight.enable()
        assert spanmod._OBSERVER is not None
        flight.disable()
        assert spanmod._OBSERVER is None
        # spans still work with no observer installed
        telemetry.configure(tmp_path / "telem")
        with telemetry.span("parse"):
            pass
        telemetry.shutdown()


class TestCrashContext:
    def test_fault_report_carries_flight_tail(self, tmp_path):
        from repro.faults.harness import run_isolated

        log.configure("debug", path=tmp_path / "log.jsonl")
        log.get_logger("t").info("before_the_crash")

        def boom():
            raise RuntimeError("kaput")

        _, report = run_isolated(boom, label="doomed")
        assert report is not None
        events = report.detail["flight_recorder"]
        assert any(e.get("event") == "before_the_crash" for e in events)

    def test_fault_report_clean_without_recorder(self):
        from repro.faults.harness import run_isolated

        def boom():
            raise RuntimeError("kaput")

        _, report = run_isolated(boom, label="doomed")
        assert "flight_recorder" not in report.detail
