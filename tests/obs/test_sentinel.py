"""repro.obs.sentinel: gates, statistics, and the check verdicts."""

import math

import pytest

from repro.obs import history as hist
from repro.obs import sentinel


def entry(metrics, fp="aaaaaaaaaaaa", now=1.0, sha="cafe" * 10):
    """A minimal history entry without shelling out to git."""
    return {
        "schema": hist.SCHEMA_TAG,
        "recorded_unix": now,
        "git": {"sha": sha, "dirty": False},
        "host": {"cpu_count": 4},
        "fingerprint": fp,
        "sources": ["repro-bench-host/2"],
        "metrics": metrics,
    }


class TestGates:
    @pytest.mark.parametrize("metric,direction,threshold", [
        ("host_seconds/warm", "higher_worse", 0.30),
        ("stage_seconds/parse", "higher_worse", 0.35),
        ("latency/warm/p95_s", "higher_worse", 0.35),
        ("cell_seconds/p99", "higher_worse", 0.35),
        ("cache_hit_rate/parse", "lower_worse", 0.10),
        ("warm_speedup", "lower_worse", 0.25),
        ("parallel_speedup", "lower_worse", 0.25),
    ])
    def test_default_gates(self, metric, direction, threshold):
        assert sentinel.gate_for(metric) == (direction, threshold)

    def test_unknown_metric_is_ungated(self):
        assert sentinel.gate_for("made_up_counter") is None

    def test_override_keeps_default_direction(self):
        d, t = sentinel.gate_for("warm_speedup",
                                 {"warm_speedup": 0.5})
        assert (d, t) == ("lower_worse", 0.5)

    def test_override_gates_unknown_metric_higher_worse(self):
        assert sentinel.gate_for("made_up_counter",
                                 {"made_up*": 0.2}) \
            == ("higher_worse", 0.2)

    def test_parse_threshold_overrides(self):
        assert sentinel.parse_threshold_overrides(
            ["host_seconds/*=0.5", "latency/*=1.0"]) \
            == {"host_seconds/*": 0.5, "latency/*": 1.0}

    @pytest.mark.parametrize("bad", ["nosep", "=0.5", "x=fast", "x=-1"])
    def test_parse_threshold_rejects(self, bad):
        with pytest.raises(ValueError, match="bad --threshold"):
            sentinel.parse_threshold_overrides([bad])


class TestStatistics:
    def test_median(self):
        assert sentinel.median([3.0, 1.0, 2.0]) == 2.0
        assert sentinel.median([4.0, 1.0, 2.0, 3.0]) == 2.5
        assert math.isnan(sentinel.median([]))

    def test_mann_whitney_detects_clear_shift(self):
        base = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02]
        worse = [2.0, 2.1, 1.9, 2.05, 1.95, 2.02]
        p = sentinel.mann_whitney_p(base, worse, worse_is_greater=True)
        assert p < 0.01
        # the same shift in the non-worse direction is not significant
        p = sentinel.mann_whitney_p(worse, base, worse_is_greater=True)
        assert p > 0.5

    def test_mann_whitney_same_distribution(self):
        xs = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02]
        p = sentinel.mann_whitney_p(xs, xs, worse_is_greater=True)
        assert p > 0.05

    def test_mann_whitney_degenerate(self):
        assert sentinel.mann_whitney_p([], [1.0], True) == 1.0
        assert sentinel.mann_whitney_p([1.0, 1.0], [1.0, 1.0], True) == 1.0

    def test_bootstrap_ci_is_deterministic_and_sane(self):
        xs = [1.0, 1.1, 0.9, 1.05, 0.95]
        lo, hi = sentinel.bootstrap_ci(xs)
        assert (lo, hi) == sentinel.bootstrap_ci(xs)
        assert lo <= sentinel.median(xs) <= hi
        assert sentinel.bootstrap_ci([2.0]) == (2.0, 2.0)


class TestCheckMetric:
    def test_ok_inside_threshold(self):
        v = sentinel.check_metric("host_seconds/warm", [1.0], [1.1],
                                  "higher_worse", 0.30)
        assert v["status"] == "ok" and v["method"] == "ratio"

    def test_improved(self):
        v = sentinel.check_metric("host_seconds/warm", [1.0], [0.5],
                                  "higher_worse", 0.30)
        assert v["status"] == "improved"

    def test_confirmed_regression_mann_whitney(self):
        base = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02]
        v = sentinel.check_metric("host_seconds/warm", base,
                                  [2.0, 2.1, 1.9, 2.05],
                                  "higher_worse", 0.30)
        assert v["status"] == "regression"
        assert v["method"] == "mann_whitney"
        assert v["p_value"] < 0.05

    def test_noisy_trip_is_suspect_not_regression(self):
        # ratio gate trips (medians 1.0 vs 1.5) but the distributions
        # overlap so heavily the test cannot confirm the shift
        base = [0.5, 1.0, 1.5, 0.6, 1.4, 1.1]
        cand = [1.5, 0.5, 1.6, 1.7]
        v = sentinel.check_metric("host_seconds/warm", base, cand,
                                  "higher_worse", 0.30)
        assert v["status"] == "suspect"

    def test_small_candidate_uses_bootstrap(self):
        base = [1.0, 1.05, 0.95, 1.02, 0.98]
        v = sentinel.check_metric("host_seconds/warm", base, [2.0],
                                  "higher_worse", 0.30)
        assert v["status"] == "regression"
        assert v["method"] == "bootstrap_ci"
        assert v["ci"][0] <= v["ci"][1] < 2.0

    def test_tiny_baseline_ratio_decides(self):
        v = sentinel.check_metric("host_seconds/warm", [1.0], [2.0],
                                  "higher_worse", 0.30)
        assert v["status"] == "regression" and v["method"] == "ratio"

    def test_lower_worse_direction(self):
        v = sentinel.check_metric("warm_speedup", [4.0], [2.0],
                                  "lower_worse", 0.25)
        assert v["status"] == "regression"
        assert v["degradation"] == pytest.approx(0.5)

    def test_missing_sides(self):
        assert sentinel.check_metric("m", [], [1.0], "higher_worse",
                                     0.3)["status"] == "no_baseline"
        assert sentinel.check_metric("m", [1.0], [], "higher_worse",
                                     0.3)["status"] == "no_candidate"

    def test_unknown_direction_raises(self):
        with pytest.raises(ValueError, match="unknown direction"):
            sentinel.check_metric("m", [1.0], [1.0], "sideways", 0.3)


class TestCheckHistory:
    def test_stable_history_passes(self):
        entries = [entry({"host_seconds/warm": [1.0, 1.02]}, now=i)
                   for i in range(4)]
        report = sentinel.check_history(entries)
        assert report["ok"]
        assert report["baseline_entries"] == 3
        assert report["regressions"] == 0

    def test_degraded_candidate_fails(self):
        entries = [entry({"host_seconds/warm": [1.0, 1.05, 0.95]},
                         now=i) for i in range(3)]
        entries.append(entry({"host_seconds/warm": [3.0, 3.1]}, now=9))
        report = sentinel.check_history(entries)
        assert not report["ok"]
        [v] = [v for v in report["verdicts"]
               if v["status"] == "regression"]
        assert v["metric"] == "host_seconds/warm"

    def test_other_host_baseline_excluded(self):
        entries = [entry({"host_seconds/warm": [0.1]}, fp="fast-box-00",
                         now=1.0),
                   entry({"host_seconds/warm": [1.0]}, fp="slow-box-00",
                         now=2.0)]
        report = sentinel.check_history(entries)
        assert report["ok"]
        assert report["baseline_entries"] == 0
        report = sentinel.check_history(entries, all_hosts=True)
        assert not report["ok"]

    def test_explicit_current_and_last(self):
        entries = [entry({"host_seconds/warm": [1.0]}, now=i)
                   for i in range(5)]
        cur = entry({"host_seconds/warm": [1.0]}, now=9.0)
        report = sentinel.check_history(entries, cur, last=2)
        assert report["baseline_entries"] == 2

    def test_metric_filter(self):
        entries = [entry({"host_seconds/warm": [1.0],
                          "warm_speedup": [4.0]}, now=i)
                   for i in range(2)]
        report = sentinel.check_history(entries,
                                        metrics=["*_speedup"])
        assert [v["metric"] for v in report["verdicts"]] \
            == ["warm_speedup"]

    def test_threshold_override_loosens_gate(self):
        entries = [entry({"host_seconds/warm": [1.0]}, now=1.0),
                   entry({"host_seconds/warm": [2.0]}, now=2.0)]
        assert not sentinel.check_history(entries)["ok"]
        assert sentinel.check_history(
            entries, thresholds={"host_seconds/*": 2.0})["ok"]

    def test_empty_history(self):
        report = sentinel.check_history([])
        assert report["ok"] and "empty history" in report["note"]

    def test_render_check_mentions_verdicts(self):
        entries = [entry({"host_seconds/warm": [1.0]}, now=1.0),
                   entry({"host_seconds/warm": [2.0]}, now=2.0)]
        text = sentinel.render_check(sentinel.check_history(entries))
        assert "REGRESSION" in text and "FAIL" in text
        assert "host_seconds/warm" in text
        assert "cafecafe" in text     # short sha in the header
