"""repro.obs.history: entries, stamps, extraction, the JSONL file."""

import json

import pytest

from repro.obs import history as hist


def bench_payload(warm=1.0, cold=5.0):
    return {
        "schema": "repro-bench-host/2",
        "runs": {"cold": {"seconds": cold}, "warm": {"seconds": warm}},
        "cache": {"warm_speedup": cold / warm, "compile_speedup": 1.4},
        "parallel": {"parallel_speedup": 1.8},
        "baseline": {"end_to_end_speedup": 2.0},
        "latency": {"warm": {"p50_s": 0.1, "p95_s": 0.2, "p99_s": 0.3}},
    }


def metrics_payload():
    return {
        "schema": "repro-metrics/1",
        "summary": {
            "stages": {"parse": {"total_s": 0.5},
                       "restructure": {"total_s": 1.5}},
            "cache": {"parse": {"hit_rate": 0.9}},
        },
        "metrics": {"histograms": [
            {"name": "repro_cell_seconds", "labels": {},
             "p50": 0.01, "p95": 0.05, "p99": 0.09},
        ]},
    }


class TestStamps:
    def test_git_stamp_in_repo(self):
        g = hist.git_stamp()
        assert isinstance(g["sha"], str) and len(g["sha"]) == 40
        assert isinstance(g["dirty"], bool)

    def test_git_stamp_outside_repo(self, tmp_path):
        g = hist.git_stamp(tmp_path)
        assert g == {"sha": None, "dirty": None}

    def test_host_stamp_and_fingerprint(self):
        h = hist.host_stamp()
        for key in ("python", "implementation", "platform", "machine",
                    "cpu_count"):
            assert key in h
        fp = hist.fingerprint(h)
        assert len(fp) == 12
        assert fp == hist.fingerprint(dict(h))     # stable
        assert fp != hist.fingerprint({**h, "cpu_count": 999})


class TestExtraction:
    def test_bench_host_metrics(self):
        m = hist.extract_metrics(bench_payload())
        assert m["host_seconds/warm"] == 1.0
        assert m["warm_speedup"] == 5.0
        assert m["latency/warm/p95_s"] == 0.2
        assert m["parallel_speedup"] == 1.8

    def test_metrics_artifact(self):
        m = hist.extract_metrics(metrics_payload())
        assert m["stage_seconds/restructure"] == 1.5
        assert m["cache_hit_rate/parse"] == 0.9
        assert m["cell_seconds/p99"] == 0.09

    def test_unknown_schema_contributes_nothing(self):
        assert hist.extract_metrics({"schema": "whatever/9"}) == {}

    def test_repeated_payloads_accumulate_samples(self):
        m = {}
        hist.extract_metrics(bench_payload(warm=1.0), m)
        hist.extract_metrics(bench_payload(warm=1.2), m)
        assert m["host_seconds/warm"] == [1.0, 1.2]

    def test_non_numbers_rejected(self):
        m = {}
        hist._put(m, "x", "fast")
        hist._put(m, "y", True)
        assert m == {}


class TestEntries:
    def test_build_entry_shape(self):
        e = hist.build_entry([bench_payload(), metrics_payload()],
                             note="smoke")
        assert e["schema"] == hist.SCHEMA_TAG
        assert e["sources"] == ["repro-bench-host/2", "repro-metrics/1"]
        assert e["fingerprint"] == hist.fingerprint(e["host"])
        assert e["note"] == "smoke"
        assert hist.validate_entry(e) == []

    def test_build_entry_no_metrics_raises(self):
        with pytest.raises(ValueError, match="no recordable metrics"):
            hist.build_entry([{"schema": "garbage/1"}])

    def test_validate_entry_catches_fingerprint_mismatch(self):
        e = hist.build_entry([bench_payload()])
        e["fingerprint"] = "000000000000"
        assert any("fingerprint" in v for v in hist.validate_entry(e))

    def test_validate_entry_catches_bad_metrics(self):
        e = hist.build_entry([bench_payload()])
        e["metrics"]["bad"] = "fast"
        assert any("metrics.bad" in v for v in hist.validate_entry(e))

    def test_samples(self):
        e = hist.build_entry([bench_payload()])
        assert hist.samples(e, "warm_speedup") == [5.0]
        assert hist.samples(e, "missing") == []


class TestFile:
    def test_append_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "deep" / "history.jsonl"
        e1 = hist.build_entry([bench_payload(1.0)], now=1.0)
        e2 = hist.build_entry([bench_payload(1.1)], now=2.0)
        hist.append_entry(path, e1)
        hist.append_entry(path, e2)
        loaded = hist.load_history(path)
        assert loaded == [e1, e2]

    def test_load_skips_torn_and_foreign_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        e = hist.build_entry([bench_payload()], now=1.0)
        path.write_text(
            json.dumps(e) + "\n"
            + '{"schema": "other/1"}\n'
            + json.dumps(e)[: len(json.dumps(e)) // 2])  # torn tail
        assert hist.load_history(path) == [e]

    def test_load_missing_file(self, tmp_path):
        assert hist.load_history(tmp_path / "nope.jsonl") == []

    def test_metric_names(self):
        e1 = hist.build_entry([bench_payload()], now=1.0)
        e2 = hist.build_entry([metrics_payload()], now=2.0)
        names = hist.metric_names([e1, e2])
        assert "warm_speedup" in names and "cell_seconds/p99" in names
        assert names == sorted(names)
