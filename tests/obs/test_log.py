"""repro.obs.log: the structured JSONL logger."""

import json
import os

import pytest

from repro.obs import flight, log


class TestConfigure:
    def test_disabled_by_default(self):
        assert not log.enabled()
        assert log.level() is None

    def test_configure_and_shutdown(self, tmp_path):
        sink = tmp_path / "log.jsonl"
        log.configure("debug", path=sink)
        assert log.enabled()
        assert log.level() == "debug"
        assert os.environ["REPRO_LOG"] == "debug"
        assert flight.enabled()     # one feature, enabled together
        log.shutdown()
        assert not log.enabled()
        assert "REPRO_LOG" not in os.environ
        assert not flight.enabled()

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            log.configure("verbose")

    def test_configure_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "warning")
        monkeypatch.setenv("REPRO_LOG_FILE", str(tmp_path / "l.jsonl"))
        assert log.configure_from_env()
        assert log.level() == "warning"

    def test_configure_from_env_unset_is_noop(self):
        assert not log.configure_from_env()
        assert not log.enabled()

    def test_unknown_env_level_degrades_to_info(self, tmp_path,
                                                monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG", "chatty")
        monkeypatch.setenv("REPRO_LOG_FILE", str(tmp_path / "l.jsonl"))
        assert log.configure_from_env()
        assert log.level() == "info"
        assert "chatty" in capsys.readouterr().err


class TestEmission:
    def _lines(self, sink):
        return [json.loads(raw) for raw in
                sink.read_text().splitlines() if raw.strip()]

    def test_record_shape(self, tmp_path):
        sink = tmp_path / "log.jsonl"
        log.configure("info", path=sink)
        log.get_logger("testsys").info("it_happened", n=3, name="x")
        [rec] = self._lines(sink)
        assert rec["level"] == "info"
        assert rec["subsystem"] == "testsys"
        assert rec["event"] == "it_happened"
        assert rec["pid"] == os.getpid()
        assert rec["fields"] == {"n": 3, "name": "x"}
        assert isinstance(rec["t"], float)

    def test_level_threshold_filters_writes(self, tmp_path):
        sink = tmp_path / "log.jsonl"
        log.configure("warning", path=sink)
        lg = log.get_logger("t")
        lg.debug("quiet")
        lg.info("quiet")
        lg.warning("loud")
        lg.error("loud")
        assert [r["level"] for r in self._lines(sink)] \
            == ["warning", "error"]

    def test_below_threshold_still_reaches_flight_ring(self, tmp_path):
        log.configure("error", path=tmp_path / "log.jsonl")
        log.get_logger("t").debug("invisible_but_recorded")
        events = flight.tail()
        assert any(e.get("event") == "invisible_but_recorded"
                   for e in events)

    def test_noop_when_disabled(self, tmp_path):
        # must not raise, allocate a session, or create any file
        log.get_logger("t").error("nobody_home", x=1)
        assert not log.enabled()
        assert list(tmp_path.iterdir()) == []

    def test_correlation_with_telemetry_session(self, tmp_path):
        from repro import telemetry

        sink = tmp_path / "log.jsonl"
        telemetry.configure(tmp_path / "telem")
        log.configure("debug", path=sink)
        with telemetry.cell_span(7, "validate x"):
            with telemetry.span("parse"):
                log.get_logger("t").info("inside")
        rec = next(r for r in self._lines(sink)
                   if r["event"] == "inside")
        assert rec["cell"] == 7
        assert rec["trace_id"]
        assert rec["span"]          # the innermost open span's id
        telemetry.shutdown()

    def test_unserializable_fields_stringified(self, tmp_path):
        sink = tmp_path / "log.jsonl"
        log.configure("info", path=sink)
        log.get_logger("t").info("odd", obj=object())
        [rec] = self._lines(sink)
        assert "object object" in rec["fields"]["obj"]

    def test_get_logger_is_cached(self):
        assert log.get_logger("same") is log.get_logger("same")
