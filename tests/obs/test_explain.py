"""repro.obs.explain: the cross-layer "why was this cell slow" join."""

import json

import pytest

from repro.obs import explain


def cell_span(cell, label, duration=1.0, queue=None, cache=None,
              error=None, pid=100):
    s = {"name": "cell", "cell": cell, "attrs": {"label": label},
         "pid": pid, "duration_s": duration}
    if queue is not None:
        s["queue_delay_s"] = queue
    if cache is not None:
        s["cache"] = cache
    if error is not None:
        s["error"] = error
    return s


def stage_span(cell, name, duration):
    return {"name": name, "cell": cell, "pid": 100,
            "duration_s": duration}


def metrics_payload(spans):
    return {"schema": "repro-metrics/1", "spans": spans}


EXPERIMENT_SWEEP = {
    "schema": "repro-experiment/1",
    "experiments": {"table1": {"meta": {"trace": {
        "tridag": {
            "speedup": 3.5, "parallel_cycles": 1000.0,
            "parallel_breakdown": {"total": 1000.0, "groups": {
                "processor": {"total": 300.0},
                "parallel_overhead": {"total": 600.0},
                "memory": {"total": 100.0},
            }},
        },
    }}}},
}

VALIDATE_SWEEP = {
    "schema": "repro-validate/1",
    "workloads": [{"workload": "tridag", "configs": [
        {"config": "restructured", "status": "ok"},
        {"config": "faulted", "status": "mismatch"},
    ]}],
}

FAULTS_SWEEP = {
    "schema": "repro-faults/1",
    "runs": [{"workload": "tridag", "scenario": "dead-ce",
              "degradation": 2.0, "bound": 2.5,
              "fault_cycles": 50.0, "ok": True}],
    "faults": [{"label": "tridag baseline", "kind": "worker_crash",
                "error_type": "RuntimeError", "message": "kaput"}],
}


class TestJoins:
    def test_experiment_join_folds_ledger_groups(self):
        sim = explain._join_sim(EXPERIMENT_SWEEP, "experiment table1")
        assert sim["kind"] == "experiment"
        assert sim["parallel_cycles"] == 1000.0
        assert sim["groups"]["parallel_overhead"] == 600.0
        assert sim["workloads"]["tridag"]["speedup"] == 3.5

    def test_validate_join(self):
        sim = explain._join_sim(VALIDATE_SWEEP, "validate tridag")
        assert sim == {"kind": "validate", "workload": "tridag",
                       "configs": {"restructured": "ok",
                                   "faulted": "mismatch"},
                       "ok": False}

    def test_faults_join(self):
        sim = explain._join_sim(FAULTS_SWEEP, "tridag baseline")
        assert sim["kind"] == "faults"
        assert sim["runs"][0]["degradation"] == 2.0

    def test_label_schema_mismatch_yields_none(self):
        # a validate label against an experiment payload must not join
        assert explain._join_sim(EXPERIMENT_SWEEP,
                                 "validate tridag") is None
        assert explain._join_sim(VALIDATE_SWEEP,
                                 "experiment table1") is None
        assert explain._join_sim(None, "validate tridag") is None

    def test_cell_faults_matched_by_label(self):
        assert explain._cell_faults(FAULTS_SWEEP, "tridag baseline") \
            == [{"kind": "worker_crash", "error_type": "RuntimeError",
                 "message": "kaput"}]
        assert explain._cell_faults(FAULTS_SWEEP, "other cell") == []


class TestCorrelate:
    def test_rows_ordered_with_stages_folded(self):
        payload = metrics_payload([
            cell_span(1, "validate b", duration=2.0),
            cell_span(0, "validate a", duration=1.0,
                      cache={"hits": 3, "misses": 1}),
            stage_span(0, "parse", 0.2),
            stage_span(0, "parse", 0.3),
            stage_span(0, "restructure", 0.4),
        ])
        rows = explain.correlate(payload)
        assert [r["cell"] for r in rows] == [0, 1]
        assert rows[0]["stages"]["parse"] \
            == {"count": 2, "total_s": 0.5}
        assert rows[0]["cache"] == {"hits": 3, "misses": 1}
        assert rows[1]["stages"] == {}

    def test_sim_and_faults_attached(self):
        payload = metrics_payload([cell_span(0, "tridag baseline")])
        [row] = explain.correlate(payload, FAULTS_SWEEP)
        assert row["sim"]["kind"] == "faults"
        assert row["faults"][0]["error_type"] == "RuntimeError"


class TestSlowReason:
    def test_crash_wins(self):
        assert explain.slow_reason(
            {"cell": 0, "error": "RuntimeError: x"}).startswith("crashed")

    def test_queue_delay(self):
        row = {"cell": 0, "host_s": 0.1, "queue_delay_s": 0.5}
        assert "queued 0.50s" in explain.slow_reason(row)

    def test_cold_cache(self):
        row = {"cell": 0, "host_s": 1.0,
               "cache": {"hits": 1.0, "misses": 4.0}}
        assert "cold cache (4 miss(es))" in explain.slow_reason(row)

    def test_stage_dominance(self):
        row = {"cell": 0, "host_s": 1.0,
               "stages": {"restructure": {"count": 1, "total_s": 0.8}}}
        assert "dominated by restructure (80%" \
            in explain.slow_reason(row)

    def test_simulated_cycle_attribution(self):
        payload = metrics_payload([cell_span(0, "experiment table1")])
        [row] = explain.correlate(payload, EXPERIMENT_SWEEP)
        assert "simulated cycles mostly parallel_overhead (60%)" \
            in explain.slow_reason(row)

    def test_fault_degradation(self):
        payload = metrics_payload([cell_span(0, "tridag baseline")])
        [row] = explain.correlate(payload, FAULTS_SWEEP)
        reason = explain.slow_reason(row)
        assert "worst fault degradation x2.00 (dead-ce)" in reason
        assert "1 harness fault(s)" in reason

    def test_quiet_cell(self):
        row = {"cell": 0, "host_s": 1.0, "queue_delay_s": 0.001,
               "cache": {"hits": 5, "misses": 0}}
        assert explain.slow_reason(row) == "nothing anomalous"


class TestRender:
    def test_table_and_detail(self):
        payload = metrics_payload([
            cell_span(0, "validate tridag", queue=0.01,
                      cache={"hits": 2.0, "misses": 0.0}),
            stage_span(0, "parse", 0.6),
        ])
        rows = explain.correlate(payload, VALIDATE_SWEEP)
        table = explain.render(rows)
        assert "validate tridag" in table and "2h/0m" in table
        detail = explain.render(rows, cell=0)
        assert "queue delay" in detail
        assert "faulted" in detail and "mismatch" in detail
        assert "verdict:" in detail

    def test_missing_cell_and_empty_session(self):
        assert "no cell 9" in explain.render(
            [{"cell": 0, "label": "x"}], cell=9)
        assert "no sweep cells" in explain.render([])


class TestLoadMetrics:
    def test_dir_resolves_to_metrics_json(self, tmp_path):
        (tmp_path / "metrics.json").write_text(
            json.dumps(metrics_payload([])))
        assert explain.load_metrics(tmp_path)["schema"] \
            == "repro-metrics/1"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no metrics.json"):
            explain.load_metrics(tmp_path)

    def test_wrong_schema_raises(self, tmp_path):
        p = tmp_path / "metrics.json"
        p.write_text(json.dumps({"schema": "other/1"}))
        with pytest.raises(ValueError, match="not a repro-metrics/1"):
            explain.load_metrics(p)


class TestEndToEnd:
    def test_jobs2_validate_sweep_explains(self, tmp_path, capsys):
        """A real --jobs 2 sweep with --telemetry joins host spans,
        queue delay, cache traffic, and per-config statuses."""
        from repro.validate.__main__ import main

        telem = tmp_path / "telem"
        out = tmp_path / "sweep.json"
        rc = main(["tridag", "gaussj", "--no-bisect", "--jobs", "2",
                   "--telemetry", str(telem), "-o", str(out)])
        assert rc == 0
        capsys.readouterr()

        payload = explain.load_metrics(telem)
        sweep = json.loads(out.read_text())
        rows = explain.correlate(payload, sweep)
        assert len(rows) == 2
        for row in rows:
            assert row["label"].startswith("validate ")
            assert row["host_s"] > 0
            assert row["queue_delay_s"] is not None
            assert row["sim"]["kind"] == "validate"
            assert row["sim"]["ok"]
            assert row["stages"], "cell has no child stage spans"
        table = explain.render(rows)
        assert "validate tridag" in table
        assert explain.render(rows, cell=0).count("cell 0") == 1
