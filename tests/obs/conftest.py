"""Obs tests mutate process-global state (the logging session, the
flight-recorder ring, the telemetry session/registry); every test starts
and ends with all of it clean."""

import pytest


@pytest.fixture(autouse=True)
def _clean_obs(monkeypatch):
    monkeypatch.delenv("REPRO_LOG", raising=False)
    monkeypatch.delenv("REPRO_LOG_FILE", raising=False)
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    from repro import telemetry
    from repro.obs import flight, log

    log.shutdown()
    flight.disable()
    telemetry.shutdown()
    telemetry.get_registry().reset()
    yield
    log.shutdown()
    flight.disable()
    telemetry.shutdown()
    telemetry.get_registry().reset()
