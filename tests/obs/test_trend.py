"""repro.obs.trend: sparklines and the ASCII trend report."""

from repro.obs import history as hist
from repro.obs import trend

from tests.obs.test_sentinel import entry


class TestSparkline:
    def test_monotone_ramp(self):
        s = trend.sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(s) == 4
        assert s[0] == trend.SPARK_RAMP[0]
        assert s[-1] == trend.SPARK_RAMP[-1]
        ranks = [trend.SPARK_RAMP.index(c) for c in s]
        assert ranks == sorted(ranks)

    def test_flat_series_renders_mid_ramp(self):
        s = trend.sparkline([2.0, 2.0, 2.0])
        mid = trend.SPARK_RAMP[len(trend.SPARK_RAMP) // 2]
        assert s == mid * 3

    def test_nan_renders_as_gap(self):
        s = trend.sparkline([1.0, float("nan"), 3.0])
        assert s[1] == " " and s[0] != " " and s[2] != " "

    def test_minimum_is_visible(self):
        # the series minimum must not look like a missing value
        assert " " not in trend.sparkline([1.0, 2.0, 3.0])

    def test_width_keeps_newest(self):
        s = trend.sparkline([9.0, 1.0, 2.0, 3.0], width=3)
        assert len(s) == 3
        ranks = [trend.SPARK_RAMP.index(c) for c in s]
        assert ranks == sorted(ranks)   # the 9.0 spike was dropped

    def test_empty_and_all_nan(self):
        assert trend.sparkline([]) == ""
        assert trend.sparkline([float("nan")] * 3) == "   "


class TestMetricSeries:
    def test_medians_with_gaps(self):
        entries = [entry({"m": [1.0, 3.0]}, now=1.0),
                   entry({"other": 5.0}, now=2.0),
                   entry({"m": 4.0}, now=3.0)]
        series = trend.metric_series(entries, "m")
        assert series[0] == 2.0
        assert series[1] != series[1]   # NaN gap
        assert series[2] == 4.0


class TestRenderTrend:
    def test_report_shape(self):
        entries = [entry({"host_seconds/warm": [1.0 + 0.1 * i],
                          "warm_speedup": 4.0}, now=86400.0 * i)
                   for i in range(5)]
        text = trend.render_trend(entries)
        assert "5 entries" in text
        assert "host_seconds/warm" in text and "warm_speedup" in text
        assert "1970-01-01 .. 1970-01-05" in text
        row = next(ln for ln in text.splitlines()
                   if "host_seconds/warm" in ln)
        assert "[" in row and "->" in row and "(+40.0%)" in row

    def test_filters_to_newest_fingerprint(self):
        entries = [entry({"m2": 1.0}, fp="other-box-000", now=1.0),
                   entry({"host_seconds/warm": 1.0}, now=2.0)]
        text = trend.render_trend(entries)
        assert "1 entry" in text and "m2" not in text
        assert "m2" in trend.render_trend(entries, all_hosts=True)

    def test_metric_patterns_and_last(self):
        entries = [entry({"host_seconds/warm": 1.0,
                          "warm_speedup": 4.0}, now=i)
                   for i in range(6)]
        text = trend.render_trend(entries, metrics=["*_speedup"],
                                  last=3)
        assert "3 entries" in text
        assert "warm_speedup" in text
        assert "host_seconds/warm" not in text

    def test_empty_history(self):
        assert "empty" in trend.render_trend([])

    def test_no_matching_metrics(self):
        text = trend.render_trend([entry({"m": 1.0})],
                                  metrics=["nope*"])
        assert "no matching metrics" in text


def test_real_entry_round_trips_through_trend():
    """A real build_entry artifact renders without error."""
    payload = {
        "schema": "repro-bench-host/2",
        "runs": {"warm": {"seconds": 1.0}},
        "cache": {"warm_speedup": 4.0},
    }
    entries = [hist.build_entry([payload], now=float(i))
               for i in range(3)]
    text = trend.render_trend(entries)
    assert "host_seconds/warm" in text and "warm_speedup" in text
