"""python -m repro.obs: record / check / report / explain round-trip."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.__main__ import main

ROOT = Path(__file__).resolve().parents[2]


def bench_payload(warm=1.0):
    return {
        "schema": "repro-bench-host/2",
        "runs": {"cold": {"seconds": 5.0}, "warm": {"seconds": warm}},
        "cache": {"warm_speedup": 5.0 / warm},
    }


@pytest.fixture()
def payload_file(tmp_path):
    def _write(name, warm=1.0):
        p = tmp_path / name
        p.write_text(json.dumps(bench_payload(warm)))
        return str(p)
    return _write


@pytest.fixture()
def history(tmp_path):
    return str(tmp_path / "history.jsonl")


class TestRecord:
    def test_record_appends_valid_entry(self, payload_file, history,
                                        capsys):
        rc = main(["record", payload_file("b.json"),
                   "--history", history, "--note", "smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recorded" in out and "[1 entry]" in out
        from repro.obs import history as hist

        [entry] = hist.load_history(history)
        assert entry["note"] == "smoke"
        assert hist.validate_entry(entry) == []

    def test_recorded_entry_passes_repo_validator(self, payload_file,
                                                  history, capsys):
        assert main(["record", payload_file("b.json"),
                     "--history", history]) == 0
        capsys.readouterr()
        from repro.obs import history as hist

        [entry] = hist.load_history(history)
        entry_file = Path(history).parent / "entry.json"
        entry_file.write_text(json.dumps(entry))
        proc = subprocess.run(
            [sys.executable,
             str(ROOT / "scripts" / "validate_experiment_json.py"),
             str(entry_file)],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "repro-bench-history/1" in proc.stdout

    def test_dry_run_prints_without_writing(self, payload_file,
                                            history, capsys):
        rc = main(["record", payload_file("b.json"),
                   "--history", history, "--dry-run"])
        assert rc == 0
        entry = json.loads(capsys.readouterr().out)
        assert entry["schema"] == "repro-bench-history/1"
        assert not Path(history).exists()

    def test_unreadable_payload_is_usage_error(self, history, capsys):
        assert main(["record", "no/such/file.json",
                     "--history", history]) == 2
        assert "error:" in capsys.readouterr().err

    def test_payload_without_metrics_is_usage_error(self, tmp_path,
                                                    history, capsys):
        p = tmp_path / "junk.json"
        p.write_text('{"schema": "garbage/1"}')
        assert main(["record", str(p), "--history", history]) == 2


class TestCheck:
    def _seed(self, payload_file, history, capsys, n=4):
        for i in range(n):
            assert main(["record", payload_file(f"b{i}.json",
                                                warm=1.0 + 0.01 * i),
                         "--history", history]) == 0
        capsys.readouterr()

    def test_stable_history_passes(self, payload_file, history, capsys):
        self._seed(payload_file, history, capsys)
        assert main(["check", "--history", history]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "0 regression(s)" in out

    def test_degraded_current_fails(self, payload_file, history,
                                    capsys):
        self._seed(payload_file, history, capsys)
        assert main(["check", "--history", history,
                     "--current", payload_file("bad.json", warm=3.0)]) \
            == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "host_seconds/warm" in out

    def test_threshold_override_loosens(self, payload_file, history,
                                        capsys):
        self._seed(payload_file, history, capsys)
        assert main(["check", "--history", history,
                     "--current", payload_file("bad.json", warm=3.0),
                     "--threshold", "host_seconds/*=5.0",
                     "--threshold", "*_speedup=5.0"]) == 0

    def test_json_output(self, payload_file, history, capsys):
        self._seed(payload_file, history, capsys)
        assert main(["check", "--history", history, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] and report["verdicts"]

    def test_bad_threshold_is_usage_error(self, history, capsys):
        assert main(["check", "--history", history,
                     "--threshold", "nonsense"]) == 2

    def test_empty_history_is_ok(self, history, capsys):
        assert main(["check", "--history", history]) == 0
        assert "empty or missing history" in capsys.readouterr().err

    def test_internal_fault_exits_3(self, payload_file, history,
                                    capsys, monkeypatch):
        self._seed(payload_file, history, capsys, n=1)
        from repro.obs import sentinel

        def boom(*a, **k):
            raise RuntimeError("sentinel on fire")

        monkeypatch.setattr(sentinel, "check_history", boom)
        assert main(["check", "--history", history]) == 3
        assert "internal fault" in capsys.readouterr().err


class TestReport:
    def test_trend_over_recorded_entries(self, payload_file, history,
                                         capsys):
        for i in range(3):
            assert main(["record",
                         payload_file(f"b{i}.json", warm=1.0 + 0.2 * i),
                         "--history", history]) == 0
        capsys.readouterr()
        assert main(["report", "--history", history]) == 0
        out = capsys.readouterr().out
        assert "3 entries" in out
        assert "host_seconds/warm" in out and "warm_speedup" in out

    def test_empty_history(self, history, capsys):
        assert main(["report", "--history", history]) == 0
        assert "empty" in capsys.readouterr().out


class TestExplain:
    def _session(self, tmp_path, spans):
        d = tmp_path / "telem"
        d.mkdir()
        (d / "metrics.json").write_text(json.dumps(
            {"schema": "repro-metrics/1", "spans": spans}))
        return str(d)

    def test_table_and_json(self, tmp_path, capsys):
        d = self._session(tmp_path, [
            {"name": "cell", "cell": 0,
             "attrs": {"label": "validate tridag"}, "pid": 1,
             "duration_s": 1.0, "queue_delay_s": 0.01}])
        assert main(["explain", d]) == 0
        assert "validate tridag" in capsys.readouterr().out
        assert main(["explain", d, "--json", "--cell", "0"]) == 0
        [row] = json.loads(capsys.readouterr().out)
        assert row["cell"] == 0

    def test_sweep_join(self, tmp_path, capsys):
        d = self._session(tmp_path, [
            {"name": "cell", "cell": 0,
             "attrs": {"label": "validate tridag"}, "pid": 1,
             "duration_s": 1.0}])
        sweep = tmp_path / "sweep.json"
        sweep.write_text(json.dumps({
            "schema": "repro-validate/1",
            "workloads": [{"workload": "tridag", "configs": [
                {"config": "restructured", "status": "ok"}]}]}))
        assert main(["explain", d, "--sweep", str(sweep),
                     "--cell", "0"]) == 0
        assert "validate tridag -> ok" in capsys.readouterr().out

    def test_missing_session_is_usage_error(self, tmp_path, capsys):
        assert main(["explain", str(tmp_path)]) == 2
        assert "no metrics.json" in capsys.readouterr().err


class TestUsage:
    def test_missing_subcommand_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2
