"""One exit-code convention across every sweep-shaped CLI.

``repro.experiments``, ``repro.validate``, ``repro.faults sweep`` and
``repro.obs check`` all promise the same map::

    0  ok
    1  regression / failed validation / failed oracle check
    2  usage error
    3  internal fault (crashed tool, watchdog, lost worker)

This test drives each tool through each outcome in-process.  The lone
hole is deliberate: ``repro.experiments`` reserves 1 for
``repro.prof diff`` and has no regression outcome of its own.
"""

import json

import pytest

from repro.faults.sweep import CHECKS, FaultRun


def _run(main, argv):
    """An argparse usage error raises SystemExit(2); normalize it."""
    try:
        return main(argv)
    except SystemExit as exc:
        return exc.code


# ---------------------------------------------------------------------------
# per-tool drivers, one per (tool, outcome) pair


def _experiments(outcome, tmp_path, monkeypatch):
    from repro.experiments.__main__ import main

    if outcome == "ok":
        return _run(main, ["table1", "--quick", "--json"])
    if outcome == "usage":
        return _run(main, ["no-such-experiment"])
    if outcome == "crash":
        return _run(main, ["table1", "--quick", "--json",
                           "--timeout", "0.000001"])
    raise AssertionError(outcome)


def _validate(outcome, tmp_path, monkeypatch):
    import repro.validate.__main__ as vmain

    out = str(tmp_path / "v.json")
    if outcome == "ok":
        return _run(vmain.main, ["tridag", "--no-bisect", "-o", out])
    if outcome == "usage":
        return _run(vmain.main, ["no-such-workload"])
    if outcome == "crash":
        return _run(vmain.main, ["tridag", "--no-bisect",
                                 "--timeout", "0.000001", "-o", out])
    # regression: a worker reporting divergent configs (no crash)
    def fake_cell(job):
        return {"workload": job["workload"], "fault": None, "dict": {
            "workload": job["workload"],
            "configs": [{"config": name, "status": "divergent",
                         "parallel_loops": 1, "loops_checked": 1,
                         "divergences": [], "races": [],
                         "culprit_pass": None, "error": None}
                        for name in job["configs"]],
        }}

    monkeypatch.setattr(vmain, "run_workload_cell", fake_cell)
    return _run(vmain.main, ["tridag", "--no-bisect", "-o", out])


def _faults(outcome, tmp_path, monkeypatch):
    from repro.faults.__main__ import main

    base = ["sweep", "--quick", "--workloads", "tridag",
            "--scenarios", "healthy", "-o", str(tmp_path / "f.json")]
    if outcome == "ok":
        return _run(main, base)
    if outcome == "usage":
        return _run(main, ["sweep", "--workloads", "no-such-workload"])
    if outcome == "crash":
        return _run(main, base + ["--timeout", "0.000001"])
    # regression: a cell whose oracle checks all fail (no crash)
    import repro.faults.worker as worker

    def fake_workload(job):
        run = FaultRun(workload=job["workload"], scenario="healthy",
                       checks={c: False for c in CHECKS}).to_dict()
        return {"workload": job["workload"], "baseline_fault": None,
                "cells": [{"scenario": "healthy", "run": run,
                           "fault": None}]}

    monkeypatch.setattr(worker, "run_fault_workload", fake_workload)
    return _run(main, base)


def _obs_check(outcome, tmp_path, monkeypatch):
    from repro.obs.__main__ import main

    hist_file = str(tmp_path / "history.jsonl")

    def payload(warm):
        p = tmp_path / f"p{warm}.json"
        p.write_text(json.dumps({
            "schema": "repro-bench-host/2",
            "runs": {"warm": {"seconds": warm}}}))
        return str(p)

    if outcome == "usage":
        return _run(main, ["check", "--history", hist_file,
                           "--threshold", "nonsense"])
    assert _run(main, ["record", payload(1.0),
                       "--history", hist_file]) == 0
    if outcome == "ok":
        return _run(main, ["check", "--history", hist_file,
                           "--current", payload(1.01)])
    if outcome == "regression":
        return _run(main, ["check", "--history", hist_file,
                           "--current", payload(9.0)])
    # crash: the sentinel itself blowing up
    from repro.obs import sentinel

    def boom(*a, **k):
        raise RuntimeError("sentinel on fire")

    monkeypatch.setattr(sentinel, "check_history", boom)
    return _run(main, ["check", "--history", hist_file])


TOOLS = {"experiments": _experiments, "validate": _validate,
         "faults": _faults, "obs-check": _obs_check}

EXPECTED = {"ok": 0, "regression": 1, "usage": 2, "crash": 3}


@pytest.mark.parametrize("tool", sorted(TOOLS))
@pytest.mark.parametrize("outcome", sorted(EXPECTED))
def test_shared_exit_code_map(tool, outcome, tmp_path, monkeypatch,
                              capsys):
    if tool == "experiments" and outcome == "regression":
        pytest.skip("repro.experiments reserves exit 1 for prof diff; "
                    "it has no regression outcome")
    rc = TOOLS[tool](outcome, tmp_path, monkeypatch)
    assert rc == EXPECTED[outcome], \
        f"{tool} {outcome}: expected {EXPECTED[outcome]}, got {rc}"
