"""Property-based tests (hypothesis) for the Fortran front end.

Random expression trees and small loop nests are generated directly as AST,
unparsed, reparsed, and compared structurally; this exercises the
parser/unparser pair far beyond the hand-written cases.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program
from repro.fortran.unparse import unparse

# -- strategies -------------------------------------------------------------

names = st.sampled_from(list("abcdefg"))
int_names = st.sampled_from(["i", "j", "k", "n", "m"])


def exprs(depth=3):
    base = st.one_of(
        st.integers(min_value=0, max_value=999).map(F.IntLit),
        names.map(F.Var),
        int_names.map(F.Var),
        st.floats(min_value=0.001, max_value=1000.0,
                  allow_nan=False, allow_infinity=False).map(F.RealLit),
    )
    if depth <= 0:
        return base
    sub = exprs(depth - 1)
    return st.one_of(
        base,
        st.builds(F.BinOp, st.sampled_from(["+", "-", "*", "/", "**"]), sub, sub),
        st.builds(lambda op, e: F.UnOp(op, e), st.sampled_from(["-", "+"]), sub),
        st.builds(lambda a, b: F.FuncCall("max", [a, b], intrinsic=True), sub, sub),
        st.builds(lambda i: F.ArrayRef("w", [i]), sub),
    )


def logical_exprs(depth=2):
    rel = st.builds(
        F.BinOp,
        st.sampled_from([".lt.", ".le.", ".eq.", ".ne.", ".gt.", ".ge."]),
        exprs(1), exprs(1),
    )
    if depth <= 0:
        return rel
    sub = logical_exprs(depth - 1)
    return st.one_of(
        rel,
        st.builds(F.BinOp, st.sampled_from([".and.", ".or."]), sub, sub),
        st.builds(lambda e: F.UnOp(".not.", e), sub),
    )


def assigns():
    target = st.one_of(
        names.map(F.Var),
        st.builds(lambda i: F.ArrayRef("w", [i]), exprs(1)),
    )
    return st.builds(lambda t, v: F.Assign(target=t, value=v), target, exprs(2))


def stmts(depth=2):
    base = assigns()
    if depth <= 0:
        return base
    sub = st.lists(stmts(depth - 1), min_size=1, max_size=3)
    return st.one_of(
        base,
        st.builds(
            lambda v, lo, hi, body: F.DoLoop(var=v, start=lo, end=hi, body=body),
            int_names, exprs(0), exprs(0), sub,
        ),
        st.builds(
            lambda c, body: F.IfBlock(arms=[(c, body)]),
            logical_exprs(1), sub,
        ),
        st.builds(
            lambda c, t, e: F.IfBlock(arms=[(c, t), (None, e)]),
            logical_exprs(1), sub, sub,
        ),
    )


def wrap(body):
    return F.SourceFile(units=[F.Subroutine(
        name="s",
        specs=[F.TypeDecl(type=F.TypeSpec("real"),
                          entities=[F.EntityDecl("w", [F.DimSpec(None, F.IntLit(100))])])],
        body=body,
    )])


def normalize(node):
    if isinstance(node, F.Node):
        fields = []
        for f in dataclasses.fields(node):
            if f.name in ("label", "line", "do_label"):
                continue
            fields.append((f.name, normalize(getattr(node, f.name))))
        return (type(node).__name__, tuple(fields))
    if isinstance(node, list):
        return tuple(normalize(x) for x in node)
    if isinstance(node, tuple):
        return tuple(normalize(x) for x in node)
    if isinstance(node, float):
        return round(node, 10)
    return node


# -- properties -------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(st.lists(stmts(2), min_size=1, max_size=5))
def test_roundtrip_random_programs(body):
    sf = wrap(body)
    text = unparse(sf)
    assert all(len(line) <= 72 for line in text.splitlines())
    sf2 = parse_program(text)
    # reparse leaves Apply nodes where we built ArrayRef/FuncCall: map them
    def canon(x):
        if isinstance(x, tuple) and x and x[0] in ("ArrayRef", "FuncCall", "Apply"):
            # unify node name and the args/subscripts field name
            kind, fields = x
            fd = dict(fields)
            args = fd.get("args", fd.get("subscripts"))
            name = fd["name"]
            return ("CallOrRef", name, canon(args))
        if isinstance(x, tuple):
            return tuple(canon(i) for i in x)
        return x
    assert canon(normalize(sf)) == canon(normalize(sf2)), text


@settings(max_examples=200, deadline=None)
@given(exprs(3))
def test_expression_roundtrip(e):
    src = unparse(F.SourceFile(units=[F.Subroutine(
        name="s", body=[F.Assign(target=F.Var("x"), value=e)])]))
    sf2 = parse_program(src)
    got = sf2.units[0].body[0].value

    def canon(x):
        x = normalize(x)
        def walk(y):
            if isinstance(y, tuple) and y and y[0] in ("ArrayRef", "FuncCall", "Apply"):
                kind, fields = y
                fd = dict(fields)
                args = fd.get("args", fd.get("subscripts"))
                return ("CallOrRef", fd["name"], walk(args))
            if isinstance(y, tuple):
                return tuple(walk(i) for i in y)
            return y
        return walk(x)
    assert canon(e) == canon(got), src


def _canon(x):
    """Normalize plus unify ArrayRef/FuncCall/Apply (reparse ambiguity)."""
    x = normalize(x)

    def walk(y):
        if isinstance(y, tuple) and y and y[0] in ("ArrayRef", "FuncCall", "Apply"):
            _, fields = y
            fd = dict(fields)
            args = fd.get("args", fd.get("subscripts"))
            return ("CallOrRef", fd["name"], walk(args))
        if isinstance(y, tuple):
            return tuple(walk(i) for i in y)
        return y

    return walk(x)


@settings(max_examples=100, deadline=None)
@given(logical_exprs(2))
def test_logical_expression_roundtrip(e):
    src = unparse(F.SourceFile(units=[F.Subroutine(
        name="s",
        body=[F.IfBlock(arms=[(e, [F.Assign(target=F.Var("x"), value=F.IntLit(1))])])],
    )]))
    sf2 = parse_program(src)
    arms = sf2.units[0].body[0].arms
    assert _canon(arms[0][0]) == _canon(e), src
