"""Symbol table and Apply-resolution tests."""

import pytest

from repro.errors import SemanticError
from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program
from repro.fortran.symtab import build_symbol_table, resolve_source_file


def unit_and_table(src):
    sf = parse_program(src)
    u = sf.units[0]
    return u, build_symbol_table(u)


def test_declared_types_and_dims():
    u, st = unit_and_table("""
      subroutine s(n, a, b)
      integer n
      real a(n), b(10, 20)
      end
""")
    assert st.lookup("n").type == "integer"
    assert st.lookup("a").rank == 1
    assert st.lookup("b").rank == 2
    assert st.lookup("a").is_dummy
    assert st.lookup("b").dims[1].upper.value == 20


def test_implicit_typing():
    u, st = unit_and_table("""
      subroutine s
      kount = 0
      value = 0.0
      end
""")
    assert st.get("kount").type == "integer"
    assert st.get("value").type == "real"
    assert st.get("idx").type == "integer"
    assert st.get("x").type == "real"


def test_implicit_none_rejects_undeclared():
    u, st = unit_and_table("""
      subroutine s
      implicit none
      integer n
      end
""")
    assert st.get("n").type == "integer"
    with pytest.raises(SemanticError):
        st.get("mystery")


def test_apply_resolution_array_vs_call():
    u, st = unit_and_table("""
      subroutine s(a, n)
      integer n
      real a(n)
      external fext
      a(1) = sqrt(a(2)) + fext(a(3)) + n
      end
""")
    stmt = u.body[0]
    assert isinstance(stmt.target, F.ArrayRef)
    exprs = list(stmt.value.walk())
    calls = {e.name: e for e in exprs if isinstance(e, F.FuncCall)}
    refs = {e.name for e in exprs if isinstance(e, F.ArrayRef)}
    assert "sqrt" in calls and calls["sqrt"].intrinsic
    assert "fext" in calls and not calls["fext"].intrinsic
    assert refs == {"a"}
    assert not any(isinstance(e, F.Apply) for e in exprs)


def test_common_block_membership():
    u, st = unit_and_table("""
      subroutine s
      common /blk/ x, y(10)
      common z
      x = 1.0
      end
""")
    assert st.lookup("x").common_block == "blk"
    assert st.lookup("y").common_block == "blk"
    assert st.lookup("y").is_array
    assert st.lookup("z").common_block == ""
    assert st.common_blocks["blk"] == ["x", "y"]


def test_parameter_constants():
    u, st = unit_and_table("""
      subroutine s
      parameter (n = 100)
      real a(n)
      a(1) = 0.0
      end
""")
    sym = st.lookup("n")
    assert sym.is_parameter
    assert isinstance(sym.param_value, F.IntLit)
    assert sym.param_value.value == 100


def test_function_result_symbol():
    sf = parse_program("""
      real function f(x)
      real x
      f = x * 2.0
      end
""")
    st = build_symbol_table(sf.units[0])
    assert st.lookup("f").is_function
    assert st.lookup("f").type == "real"


def test_dimension_statement_declares_array():
    u, st = unit_and_table("""
      subroutine s
      dimension w(100)
      w(1) = 0.0
      end
""")
    assert st.lookup("w").is_array
    assert isinstance(u.body[0].target, F.ArrayRef)


def test_double_dimension_rejected():
    with pytest.raises(SemanticError):
        unit_and_table("""
      subroutine s
      real a(10)
      dimension a(20)
      end
""")


def test_resolve_source_file_all_units():
    sf = parse_program("""
      subroutine one(a)
      real a(10)
      a(1) = 0.0
      end
      subroutine two(b)
      real b(5)
      b(1) = 0.0
      end
""")
    tables = resolve_source_file(sf)
    assert set(tables) == {"one", "two"}
    assert tables["one"].lookup("a").is_array


def test_intrinsic_shadowed_by_array_decl():
    u, st = unit_and_table("""
      subroutine s
      real sum(10)
      sum(1) = 2.0
      end
""")
    assert isinstance(u.body[0].target, F.ArrayRef)


def test_equivalence_recorded():
    u, st = unit_and_table("""
      subroutine s
      real a(10), b(10)
      equivalence (a(1), b(1))
      a(1) = 0.0
      end
""")
    assert len(st.equivalences) == 1
