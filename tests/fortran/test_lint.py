"""Tests for the linter: diagnostics, recovery, rules, CLI, ingestion."""

import json

import pytest

from repro.errors import LexError, ParseError
from repro.fortran.diagnostics import CODES, Diagnostic, DiagnosticSink
from repro.fortran.parser import parse_program
from repro.lint.engine import JSON_SCHEMA, lint_source, report_json


# -- the no-location-free invariant ----------------------------------------


def test_diagnostic_requires_location():
    """Regression: a diagnostic without a real line/col must not ship.

    The pre-linter parser raised its missing-END error with no location
    at all; Diagnostic now makes that a constructor-time failure.
    """
    with pytest.raises(ValueError):
        Diagnostic("F103", "missing end", line=0, col=7)
    with pytest.raises(ValueError):
        Diagnostic("F103", "missing end", line=3, col=0)
    with pytest.raises(ValueError):
        Diagnostic("F103", "missing end", line=None, col=7)


def test_diagnostic_code_must_be_registered():
    with pytest.raises(ValueError):
        Diagnostic("F999", "nope", line=1, col=1)
    with pytest.raises(ValueError):
        Diagnostic("F101", "nope", line=1, col=1, severity="fatal")


def test_code_registry_severity_prefixes():
    for code in CODES:
        assert code[0] in "FW" and code[1:].isdigit() and len(code) == 4


def test_missing_end_has_location():
    rep = lint_source("      program p\n      x = 1\n")
    codes = [d.code for d in rep.diagnostics]
    assert "F103" in codes
    for d in rep.diagnostics:
        assert d.line >= 1 and d.col >= 1


# -- recovery: many errors from one file -----------------------------------

BAD = """\
      program bad
      x = ((1
      y =
      goto 999
      end
"""


def test_recovery_reports_every_error():
    rep = lint_source(BAD)
    errors = [d for d in rep.diagnostics if d.severity == "error"]
    assert len(errors) >= 3
    # three distinct problems, each with its own real location
    assert len({(d.line, d.col) for d in errors}) >= 3
    assert {"F101", "F201"} <= {d.code for d in errors}
    # the partial AST still exists: the unit survived recovery
    assert len(rep.ast.units) == 1
    assert rep.ast.units[0].name == "bad"


def test_fail_fast_without_sink_unchanged():
    with pytest.raises(ParseError):
        parse_program(BAD)
    with pytest.raises(LexError):
        parse_program('      x = "unterminated\n')


def test_max_errors_cap():
    lines = ["      program p"] + ["      x = (" for _ in range(30)] \
        + ["      end"]
    rep = lint_source("\n".join(lines) + "\n", max_errors=5)
    assert rep.error_count == 5  # stored errors capped...
    assert rep.sink.suppressed_errors == 25  # ...the rest counted
    assert not rep.ok
    assert "suppressed" in rep.render()


# -- the rule pack ---------------------------------------------------------


def lint_codes(src):
    return [d.code for d in lint_source(src).diagnostics]


def test_undefined_label_f201():
    src = ("      program p\n"
           "      goto 50\n"
           "      end\n")
    assert "F201" in lint_codes(src)


def test_duplicate_label_f202():
    src = ("      program p\n"
           "   10 x = 1\n"
           "   10 y = 2\n"
           "      end\n")
    assert "F202" in lint_codes(src)


def test_unreferenced_format_w302():
    src = ("      program p\n"
           "  100 format (i6)\n"
           "      end\n")
    assert "W302" in lint_codes(src)


def test_referenced_format_clean():
    src = ("      program p\n"
           "      write (*, 100) 1\n"
           "  100 format (i6)\n"
           "      end\n")
    rep = lint_source(src)
    assert rep.ok and not rep.diagnostics


def test_do_ends_on_executable_w301():
    src = ("      program p\n"
           "      do 10 i = 1, 5\n"
           "   10 x = i\n"
           "      end\n")
    assert "W301" in lint_codes(src)


def test_labeled_do_on_continue_clean():
    src = ("      program p\n"
           "      do 10 i = 1, 5\n"
           "         x = i\n"
           "   10 continue\n"
           "      end\n")
    assert "W301" not in lint_codes(src)


# -- layout traps from the lexer -------------------------------------------


def test_dec_tab_warning_w201():
    rep = lint_source("\tprogram p\n\tx = 1\n\tend\n")
    assert "W201" in [d.code for d in rep.diagnostics]
    assert rep.error_count == 0  # the tab convention still lexes


def test_text_past_column_72_w202():
    body = "      x = 1"
    src = body + " " * (72 - len(body)) + "junk\n      end\n"
    rep = lint_source(src)
    w = [d for d in rep.diagnostics if d.code == "W202"]
    assert len(w) == 1
    assert w[0].col == 73


# -- JSON report -----------------------------------------------------------


def test_report_json_shape():
    doc = report_json([lint_source(BAD, path="bad.f"),
                       lint_source("      program p\n      end\n",
                                   path="ok.f")],
                      meta={"strict": False})
    assert doc["schema"] == JSON_SCHEMA == "repro-lint/1"
    assert doc["ok"] is False
    assert doc["error_count"] >= 3 and doc["warning_count"] >= 0
    assert [f["path"] for f in doc["files"]] == ["bad.f", "ok.f"]
    assert doc["files"][1]["ok"] is True
    assert doc["meta"]["tool"] == "repro.lint"
    for d in doc["files"][0]["diagnostics"]:
        assert d["code"] in CODES and d["slug"] == CODES[d["code"]]
        assert d["line"] >= 1 and d["col"] >= 1
    json.dumps(doc)  # must be serializable as-is


def test_report_json_validates(tmp_path):
    import subprocess
    import sys
    doc = report_json([lint_source(BAD, path="bad.f")])
    p = tmp_path / "lint.json"
    p.write_text(json.dumps(doc))
    proc = subprocess.run(
        [sys.executable, "scripts/validate_experiment_json.py", str(p)],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr


# -- CLI exit map ----------------------------------------------------------


def lint_main(argv):
    from repro.lint.__main__ import main
    return main(argv)


def test_cli_clean_exit_0(tmp_path, capsys):
    f = tmp_path / "ok.f"
    f.write_text("      program p\n      x = 1\n      end\n")
    assert lint_main([str(f)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_findings_exit_1(tmp_path, capsys):
    f = tmp_path / "bad.f"
    f.write_text(BAD)
    assert lint_main([str(f)]) == 1
    out = capsys.readouterr().out
    assert "[F101]" in out and "[F201]" in out


def test_cli_usage_exit_2(tmp_path, capsys):
    assert lint_main([]) == 2
    assert lint_main([str(tmp_path / "missing.f")]) == 2
    capsys.readouterr()


def test_cli_strict_warnings_exit_1(tmp_path, capsys):
    f = tmp_path / "warn.f"
    f.write_text("      program p\n"
                 "  100 format (i6)\n"
                 "      end\n")
    assert lint_main([str(f)]) == 0
    assert lint_main(["--strict", str(f)]) == 1
    capsys.readouterr()


def test_cli_json_output(tmp_path, capsys):
    f = tmp_path / "ok.f"
    f.write_text("      program p\n      end\n")
    assert lint_main(["--json", str(f)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro-lint/1" and doc["ok"] is True


# -- ingestion through repro.experiments -----------------------------------


def experiments_main(argv):
    from repro.experiments.__main__ import main
    return main(argv)


def test_ingest_sample_clean(capsys):
    assert experiments_main(["--source", "examples/sample.f",
                             "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Ingested source examples/sample.f" in out
    assert "smooth" in out


def test_ingest_rejects_lint_errors(tmp_path, capsys):
    f = tmp_path / "bad.f"
    f.write_text(BAD)
    assert experiments_main(["--source", str(f)]) == 1
    err = capsys.readouterr().err
    assert "[F101]" in err and "not ingested" in err


def test_ingest_usage_errors(tmp_path, capsys):
    assert experiments_main(["--source",
                             str(tmp_path / "missing.f")]) == 2
    assert experiments_main(["--source", "examples/sample.f",
                             "table1"]) == 2
    capsys.readouterr()


def test_ingest_json_is_experiment_shaped(capsys):
    assert experiments_main(["--source", "examples/sample.f",
                             "--quick", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro-experiment/1"
    table = doc["experiments"]["source"]
    assert set(table) == {"title", "columns", "rows", "notes", "meta"}
    for row in table["rows"]:
        assert set(row) == set(table["columns"])
    assert table["meta"]["lint"]["ok"] is True
