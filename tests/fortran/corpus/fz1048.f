c seeded fuzz program (surface mode, seed 1048)
      subroutine fz1048(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(37)
      real v(30)
      common /blk/ t(50)
      parameter (c1 = 3)
      save x, y
      external extsub
      equivalence (x, w), (u(1), v(1))
      data i, x /1, 2.0/
      data u /3*0.0/
  100 format (2x,i5)
  110 format ('x = ',f10.4)
  120 format (1x,2f9.2)
         if (0.25 .lt. v(i) .or. z .lt. v(i + 2)) then
            inquire (unit = 9, opened = k)
         else if (v(i + 2) .le. u(m)) then
            x = v(j) * 1.5 * u(i) * w
         end if
         if (1.5 .le. u(j)) then
            v(j) = 2.0 + 0.125 + 3.0
            j = k - m - j - j
         else
            u(j) = 2.0 - 2.0 + v(j + 3) * 1.5
c marker 389
         end if
         call extsub(v(k), u(i + 1))
         print 120, v(k + 3), x, u(i + 2)
         do 130 k = 3, 4
            open (unit = 9, file = 'scratch.dat', status = 'unknown')
  130    continue
         if (0.125 .gt. u(k)) then
            v(j) = -v(j) + u(i + 1) + v(i)
            v(i + 3) = v(m)
         else
            inquire (unit = 9, opened = m)
         end if
         do m = 3, 6
            u(m + 2) = 0.125
         end do
         assign 140 to k
         goto k (140)
         y = x + 0.5
  140 continue
      return
      end
