c seeded fuzz program (surface mode, seed 1042)
      program fz1042
      integer i, j, k, m
      real x, y, z, w
      dimension u(29)
      real v(42)
      common /blk/ t(50)
      parameter (c1 = 6)
      external extsub
      data i, x /2, 3.0/
  100 format (f8.3,1x,e12.4)
  110 format (i5)
         goto (120, 130), m
         u(k + 3) = 1.5
         v(j) = -u(j + 2)
         y = -u(j)
         assign 140 to k
         goto k (140)
         goto 140
         write (6, 100) v(k)
  120 continue
  130 continue
  140 continue
      continue
      end
