c seeded fuzz program (surface mode, seed 1028)
      subroutine fz1028(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(58)
      real v(45)
      save
      external extsub
      equivalence (x, w), (u(1), v(1))
      data i, x /0, 0.25/
  100 format (a,i3)
  110 format (i5)
  120 format (1x,2f9.2)
         v(i + 2) = z * x
         do 130 i = 2, 6
            u(k) = u(i)
  130    continue
         v(i) = w
         u(i + 1) = u(k) + 0.125 * u(k)
         y = u(i + 2)
         if (z .lt. u(k) .or. u(i + 3) .lt. 0.25) u(k) = w + 3.0 - 3.0
         call extsub(w, x)
         v(k + 1) = (v(j) - v(k) * w * 0.5)
         x = u(j) + x
c marker 883
      entry fz1028b(x)
         do 150 j = 2, 9
            do m = 3, 10
               y = v(m) * 2.0 + v(i + 3)
               call extsub(v(j + 2), 3.0)
            end do
  150    continue
         y = u(k + 3) + 1.5
  140 continue
      return
      end
