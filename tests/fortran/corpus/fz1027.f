c seeded fuzz program (surface mode, seed 1027)
      program fz1027
      integer i, j, k, m
      real x, y, z, w
      dimension u(27)
      real v(25)
      common /blk/ t(50)
      external extsub
      intrinsic sqrt
  100 format (1x,2f9.2)
  110 format (i5)
  120 format (3(i4,1x))
         do 130 k = 2, 8
            goto 140
  130    continue
         if (0.5 .ge. y) continue
         j = j
c marker 119
         do i = 1, 11
            if (.not. (z .ne. v(m + 3))) then
               y = u(j + 3)
               goto 150
            else
               close (9)
               write (6, 100) 0.125, z
            end if
c marker 713
            v(m + 3) = u(m)
         end do
         u(k) = 3.0
         u(j) = 0.25 + 0.25 * -3.0
         goto 160
         if (z .eq. 0.125) then
            open (unit = 9, file = 'scratch.dat', status = 'unknown')
         end if
         do 170 m = 2, 10
            do 180 m = 1, 5
               z = (u(m) - v(j + 1)) * y
  180       continue
            if (3.0 .ne. v(i + 1) .or. u(m + 1) .lt. v(m + 3)) then
               u(i + 2) = w * 0.5 - y
c marker 313
               j = k - 5 - 6
            else
               goto (140, 150), i
            end if
c marker 899
  170    continue
         call extsub(v(m + 1), 1.5)
         close (9)
         do k = 3, 10
            if (v(i) .gt. z) then
               u(j + 3) = v(i)
            else
               v(m) = u(k + 2) * 0.25 + (v(k + 2) + v(j))
            end if
         end do
c marker 177
         u(m) = 0.125 + u(k + 2)
c marker 591
         goto 140
  140 continue
  150 continue
  160 continue
      continue
      end
