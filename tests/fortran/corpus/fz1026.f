c seeded fuzz program (surface mode, seed 1026)
      program fz1026
      integer i, j, k, m
      real x, y, z, w
      dimension u(50)
      real v(37)
      common /blk/ t(50)
      parameter (c1 = 8)
      external extsub
      data i, x /7, 3.0/
  100 format (2x,i5)
  110 format (a,i3)
  120 format (f8.3,1x,e12.4)
         do i = 3, 11
            do m = 1, 6
               if (z .ne. z) goto 130
               assign 130 to i
               goto i (130)
            end do
            do 140 i = 1, 12
               v(i) = x
               rewind 9
  140       continue
            z = v(k)
         end do
         if (u(k) .gt. v(k + 1)) then
            if (0.5 .eq. z) then
               m = i
            else
               assign 130 to m
               goto m (130)
               inquire (unit = 9, opened = j)
            end if
         else if (.not. (z .le. 1.5 .and. z .gt. x)) then
            do k = 2, 12
               x = 0.5 * v(j + 1) - u(k)
               backspace 9
            end do
            if (0.25 .lt. x) continue
         else
            v(j + 3) = -0.25 + (x * u(j))
c marker 407
            goto 150
         end if
         goto 130
         do m = 3, 11
            print 110, w
            if (w .le. 0.5 .or. 0.125 .lt. w) then
               z = u(m + 1) * 0.125 + u(k + 3) + v(k + 1)
c marker 778
            else
               v(k + 3) = v(m + 1) * x
            end if
c marker 273
         end do
         do 160 j = 3, 6
            do 170 k = 2, 6
               if (3.0 .lt. 1.5) goto 180
               u(m + 1) = x
  170       continue
            v(j + 3) = x
  160    continue
         do j = 1, 9
            if (0.25 .gt. w .and. u(j + 2) .lt. w) then
               v(m + 1) = z * v(k) * x * 0.5
               close (9)
            else if (x .gt. u(j + 2) .and. x .gt. u(m + 3)) then
               assign 190 to k
               goto k (190)
            end if
            j = k
            x = u(i) * 0.5 + v(j)
         end do
         print 100, u(j), 3.0
         u(i) = x + 1.5 * 1.5 * 1.5
         m = j
         i = m + 2 - 2
  130 continue
  150 continue
  180 continue
  190 continue
      stop
      end
