c seeded fuzz program (surface mode, seed 1023)
      subroutine fz1023(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(48)
      real v(50)
      parameter (c1 = 2)
      external extsub
      equivalence (x, w), (u(1), v(1))
      data i, x /4, 0.25/
  100 format (f8.3,1x,e12.4)
  110 format ('x = ',f10.4)
  120 format (i5)
         z = w
         rewind 9
         j = 7 + 3 + k - 3
         y = v(k)
         write (6, fmt = 100) 3.0
c marker 23
         goto (130, 130), j
         goto (130, 130), i
         print *, z
         call extsub(0.125, 0.25)
         assign 130 to k
         goto k (130)
         u(m) = v(j) + v(k + 3) * u(k + 1)
         close (9)
         call extsub(y, y)
         call extsub(v(i), v(k + 3))
  130 continue
      return
      end
