c seeded fuzz program (executable mode, seed 1029)
      subroutine fzx1029(n, a, b, c)
      integer n
      real a(n), b(n), c(n)
      real s
      integer i
      s = 0.0
         do i = 2, n
            c(i) = c(i - 1) * 0.25 + a(i)
         end do
         do i = 2, n
            b(i) = b(i - 1) * 0.25 + c(i)
         end do
         do i = 1, n
            if (a(i) .gt. 0.0) then
               b(i) = a(i) * 3.0 + c(i)
            else
               b(i) = c(i) - 0.5
            end if
         end do
         do i = 1, n
            b(i) = a(i) * 1.5 + c(i)
         end do
      b(1) = b(1) + s
      end
