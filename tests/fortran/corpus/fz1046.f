c seeded fuzz program (surface mode, seed 1046)
      subroutine fz1046(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(58)
      real v(51)
      common /blk/ t(50)
      parameter (c1 = 5)
      save x, y
      external extsub
      equivalence (x, w), (u(1), v(1))
  100 format (f8.3,1x,e12.4)
         if (y .ge. w .and. x .lt. y) then
            call extsub(0.5, v(k))
            j = k
         else
            if (u(k) .le. y) then
               u(j) = 0.25
            end if
c marker 878
         end if
         do m = 3, 5
            do k = 1, 7
               v(m + 2) = 0.25
               read (5, 100) x
               u(j + 2) = (0.5 + v(i + 1)) * x
            end do
            do 110 i = 1, 5
               i = m
  110       continue
            w = (v(j + 1) * z)
         end do
         j = j
         z = v(j) + y
         do m = 2, 7
            if (0.125 .eq. w .or. 1.5 .lt. v(m)) goto 120
            u(j) = 3.0 * u(k + 3) + (z * 0.25)
            u(k) = z
         end do
         z = w
         call extsub(w, y)
         do i = 3, 9
            endfile 9
            goto 130
         end do
         assign 120 to j
         goto j (120)
         if (u(i + 3) .eq. 0.125) then
            v(j) = z
            i = 3 * k + 1 + 3
         end if
  120 continue
  130 continue
      return
      end
