c seeded fuzz program (surface mode, seed 1022)
      program fz1022
      integer i, j, k, m
      real x, y, z, w
      dimension u(46)
      real v(58)
      common /blk/ t(50)
      external extsub
      data i, x /0, 1.5/
  100 format (1x,2f9.2)
  110 format (a,i3)
         if (w .le. u(j)) then
            print 110, x, 0.25
         else if (v(m + 2) .eq. z .or. 0.25 .lt. 0.125) then
            inquire (unit = 9, opened = i)
         else
            if (v(j) .gt. 1.5) then
               v(m + 3) = 0.25
            else if (2.0 .ge. x) then
               if (0.5 .gt. z) goto 120
            end if
         end if
         w = x * x - u(i + 3)
         if (w .ne. y) then
            do m = 2, 8
               v(i + 1) = y
            end do
         else
            goto 130
         end if
         z = 1.5
         do 140 m = 2, 12
            rewind 9
            print *, x, 0.5, v(k + 1)
  140    continue
         goto (120, 120), m
c marker 607
         u(k + 1) = w
         goto 130
         do k = 2, 5
            v(k) = w + 0.25 * 3.0
         end do
         v(k) = u(i) - v(m) - 1.5 - 2.0
         read (5, 110) x
         if (u(j) .ne. y) goto 150
  120 continue
  130 continue
  150 continue
      continue
      end
