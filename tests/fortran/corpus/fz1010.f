c seeded fuzz program (surface mode, seed 1010)
      real function fz1010(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(58)
      real v(35)
      common /blk/ t(50)
      parameter (c1 = 8)
      save x, y
      external extsub
      data i, x /8, 3.0/
  100 format (3(i4,1x))
  110 format (a,i3)
         close (9)
         call extsub(x, 0.25)
         x = 1.5
         u(m) = x
         assign 120 to k
         goto k (120)
c marker 47
         write (6, 110) u(i + 2)
         print *, u(m), 0.5, 2.0
         if (.not. (w .le. w)) then
            goto (130, 120), i
            if (w .ne. 0.125) then
               m = m
c marker 558
               v(m) = 0.125 * y + v(i)
            end if
         else if (x .ge. 0.25) then
            u(k + 2) = w
         end if
      fz1010 = x + y
  120 continue
  130 continue
      return
      end
