c seeded fuzz program (executable mode, seed 1049)
      subroutine fzx1049(n, a, b, c)
      integer n
      real a(n), b(n), c(n)
      real s
      integer i
      s = 0.0
         do i = 1, n
            s = s + b(i) * 0.5
         end do
         do i = 2, n
            c(i) = c(i - 1) * 0.25 + b(i)
         end do
         do i = 2, n
            c(i) = c(i - 1) * 0.25 + b(i)
         end do
         do i = 1, n - 1
            a(i) = c(i + 1) * 0.5 + c(i)
         end do
      b(1) = b(1) + s
      end
