c seeded fuzz program (surface mode, seed 1000)
      subroutine fz1000(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(26)
      real v(45)
      common /blk/ t(50)
      parameter (c1 = 8)
      save x, y
      external extsub
      equivalence (x, w), (u(1), v(1))
      data i, x /3, 3.0/
  100 format (1x,2f9.2)
         if (v(j) .ne. v(j)) then
            y = 0.25
         else if (u(j + 2) .eq. 3.0 .or. u(k) .gt. z) then
            do m = 3, 5
               u(k + 2) = v(j + 2)
            end do
         end if
         goto (110, 110), i
         m = i
         do j = 1, 5
            do 120 j = 3, 8
               u(k + 1) = 0.5
               write (6, 100) v(j)
  120       continue
         end do
         goto 110
c marker 717
         x = 0.5 - u(i + 2)
         goto 130
         if (v(i) .eq. z) then
            if (v(k) .gt. 0.5) then
               z = u(j + 2) + z + -y
            end if
         else if (z .ne. y .and. 1.5 .lt. u(i)) then
            read (5, 100) z
            do j = 2, 11
               u(j) = x * y + -w
            end do
c marker 866
         else
            j = 6
            m = 9 * j
         end if
         u(k + 2) = v(j) - 0.125 * 2.0
         z = z * x - y + y
         if (0.5 .ne. 2.0 .and. w .gt. v(m + 2)) continue
         do i = 2, 9
            inquire (unit = 9, opened = i)
            do 140 m = 2, 7
               u(j + 1) = z
               u(m) = w + u(i) + u(i)
  140       continue
         end do
c marker 358
         k = k + 5
      entry fz1000b(x)
         call extsub(0.25, 2.0)
         if (x .lt. z .or. v(k + 1) .lt. u(i)) then
            read (5, 100) x
            call extsub(u(i + 3), y)
         else if (u(k) .ge. x) then
            do i = 2, 11
               read (5, 100) z
               print *, u(m), x
               goto 130
            end do
c marker 684
            u(j + 1) = (2.0 + z) - v(k) * y
         else
            call extsub(v(m + 1), y)
            do 150 j = 2, 11
               x = u(i + 2) + w + y * u(m + 2)
               i = i * 8 * j + k
c marker 603
  150       continue
         end if
  110 continue
  130 continue
      return
      end
