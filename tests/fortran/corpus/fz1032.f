c seeded fuzz program (surface mode, seed 1032)
      subroutine fz1032(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(54)
      real v(47)
      parameter (c1 = 9)
      save x, y
      external extsub
      intrinsic sqrt
      data i, x /4, 2.0/
  100 format (f8.3,1x,e12.4)
  110 format (f8.3,1x,e12.4)
  120 format (3(i4,1x))
         z = 0.25
         v(m + 3) = 0.125
         w = x
         j = k - m + 1
         v(j + 2) = v(k)
         goto 130
  130 continue
      return
      end
