c seeded fuzz program (surface mode, seed 1001)
      program fz1001
      integer i, j, k, m
      real x, y, z, w
      dimension u(32)
      real v(25)
      common /blk/ t(50)
      parameter (c1 = 4)
      external extsub
      data i, x /9, 0.25/
      data u /5*0.0/
  100 format (a,i3)
  110 format (a,i3)
  120 format (3(i4,1x))
         goto 130
         do 140 i = 3, 10
            w = 2.0
c marker 894
  140    continue
         if (z .ge. 0.5) then
            i = j + i * 3
         end if
         assign 130 to i
         goto i (130)
         write (6, 110) 1.5
         if (z .gt. z) then
            do 150 j = 1, 7
               call extsub(0.25, 0.25)
               goto 160
c marker 524
  150       continue
            inquire (unit = 9, opened = j)
         else if (1.5 .eq. v(m + 1)) then
            if (v(i + 2) .ge. v(k + 3)) then
               if (u(i + 3) .ge. z) y = 0.25
               j = 3
            end if
            do 180 i = 3, 10
               j = 8
               backspace 9
  180       continue
         end if
         do k = 3, 5
            if (v(j + 2) .lt. w) then
               call extsub(y, y)
               k = 1 * i * 4 + k
            else if (y .eq. v(i + 2)) then
               k = j - i * j
               if (0.125 .ne. v(m)) m = j
            else
               u(j) = (y * 0.5 * v(i + 1))
               j = 5
            end if
         end do
         goto (190, 190), j
         if (1.5 .le. x .or. 0.25 .gt. x) then
            rewind 9
            x = y * z - z
         else if (y .le. w) then
            v(m) = 0.125
c marker 632
         else
            goto (200, 130), m
            goto 210
         end if
  130 continue
  160 continue
  170 continue
  190 continue
  200 continue
  210 continue
      stop
      end
