c seeded fuzz program (surface mode, seed 1020)
      program fz1020
      integer i, j, k, m
      real x, y, z, w
      dimension u(21)
      real v(49)
      save x, y
      external extsub
      intrinsic sqrt
      equivalence (x, w), (u(1), v(1))
      data i, x /8, 1.5/
  100 format (i5)
  110 format ('x = ',f10.4)
         do 120 m = 1, 10
            do m = 2, 12
               u(j + 2) = x
               y = -0.125
            end do
  120    continue
         do 130 k = 1, 9
            do 140 i = 3, 12
               v(j + 3) = u(m)
               w = 2.0
  140       continue
  130    continue
         if (z .eq. v(i)) then
            if (v(k) .eq. w .or. x .gt. w) then
               assign 150 to i
               goto i (150)
            else
               goto (150, 160), m
            end if
            do k = 1, 5
               call extsub(u(k), 0.5)
            end do
         else
            goto 170
         end if
         rewind 9
         if (v(k + 1) .gt. v(j)) then
            v(m) = u(i) + z * u(m + 1)
         else if (u(j) .lt. z .and. y .gt. 2.0) then
            do 180 k = 1, 4
               goto 190
  180       continue
            v(m + 3) = 0.125
         end if
         z = u(j + 2)
         do 200 j = 1, 9
            do 210 i = 1, 7
               u(j) = 3.0
  210       continue
            if (z .le. 0.125 .and. 0.125 .gt. 0.125) then
               w = -x
            else if (.not. (u(i) .lt. x .and. 3.0 .lt. y)) then
               i = 2
               read (5, 110) z
            end if
  200    continue
         goto (150, 150), m
c marker 702
  150 continue
  160 continue
  170 continue
  190 continue
      stop 2
      end
