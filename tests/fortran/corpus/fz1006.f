c seeded fuzz program (surface mode, seed 1006)
      subroutine fz1006(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(23)
      real v(34)
      common /blk/ t(50)
      parameter (c1 = 7)
      external extsub
  100 format (i5)
  110 format ('x = ',f10.4)
  120 format (1x,2f9.2)
         if (1.5 .gt. u(i)) then
            do m = 1, 11
               j = 9 - i - 3
               z = 2.0 + y * v(m)
            end do
         else if (1.5 .ge. y) then
            do 130 k = 1, 5
               if (3.0 .ne. z) continue
  130       continue
c marker 763
            do m = 1, 9
               v(i + 3) = x - v(i) + u(i + 2)
               inquire (unit = 9, opened = k)
            end do
         end if
         v(m + 3) = w - u(k + 3) + 0.25
         v(i) = u(i + 3)
         y = v(i + 3) * x * y
         call extsub(3.0, 0.25)
         w = (v(i + 3) - u(j + 3) + 3.0)
  140 continue
      return
      end
