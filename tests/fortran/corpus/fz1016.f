c seeded fuzz program (surface mode, seed 1016)
      subroutine fz1016(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(44)
      real v(54)
      common /blk/ t(50)
      external extsub
      data i, x /7, 0.125/
  100 format (2x,i5)
  110 format (3(i4,1x))
  120 format ('x = ',f10.4)
         do k = 2, 9
            v(i + 1) = 1.5
            v(i + 3) = 0.25 * 2.0 - w - 3.0
         end do
         do m = 3, 10
            do m = 2, 11
               goto 130
               assign 140 to j
               goto j (140)
               goto 150
            end do
            if (1.5 .lt. w .or. v(k + 3) .gt. 0.125) continue
            u(i) = -v(j + 1)
         end do
c marker 371
         w = 0.25
         do 160 j = 1, 12
            do j = 1, 11
               endfile 9
            end do
  160    continue
         rewind 9
         if (.not. (x .gt. 0.25 .and. u(k + 2) .lt. u(j + 1))) then
            u(i) = 0.25
         end if
         v(i + 3) = u(j + 2) - u(i) + -x
c marker 487
         open (unit = 9, file = 'scratch.dat', status = 'unknown')
      entry fz1016b(x)
         if (2.0 .le. x) continue
         do k = 3, 5
            rewind 9
         end do
  130 continue
  140 continue
  150 continue
  170 continue
      return
      end
