c seeded fuzz program (surface mode, seed 1040)
      subroutine fz1040(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(31)
      real v(56)
      external extsub
      intrinsic sqrt
      equivalence (x, w), (u(1), v(1))
      data i, x /9, 0.5/
  100 format ('x = ',f10.4)
  110 format (a,i3)
  120 format (2x,i5)
         goto (130, 130), m
         close (9)
         goto 140
         do i = 3, 11
            do 150 j = 1, 10
               write (6, fmt = 120) z
  150       continue
            if (w .gt. 1.5) then
               assign 160 to m
               goto m (160)
            end if
         end do
         open (unit = 9, file = 'scratch.dat', status = 'unknown')
         goto 170
         assign 160 to j
         goto j (160)
         rewind 9
         goto 180
  130 continue
  140 continue
  160 continue
  170 continue
  180 continue
      return
      end
