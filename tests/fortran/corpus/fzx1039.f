c seeded fuzz program (executable mode, seed 1039)
      subroutine fzx1039(n, a, b, c)
      integer n
      real a(n), b(n), c(n)
      real s
      integer i
      s = 0.0
         do i = 1, n
            s = s + a(i) * 0.5
         end do
         do i = 1, n
            a(i) = b(i) * 1.5 + c(i)
         end do
         do i = 1, n
            s = s + b(i) * 1.5
         end do
      b(1) = b(1) + s
      end
