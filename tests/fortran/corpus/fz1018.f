c seeded fuzz program (surface mode, seed 1018)
      subroutine fz1018(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(45)
      real v(26)
      save x, y
      external extsub
      equivalence (x, w), (u(1), v(1))
      data i, x /6, 0.5/
  100 format (a,i3)
         goto 110
         print 100, w
c marker 636
         endfile 9
         if (u(j) .lt. 1.5) then
            do j = 3, 11
               if (.not. (0.125 .gt. 0.25 .and. 2.0 .gt. u(i))) m = k
            end do
         else
            if (3.0 .ne. z) then
               if (u(j) .le. v(i + 3)) goto 120
            end if
            do 130 j = 1, 7
               v(m + 1) = v(k) + x + 3.0
  130       continue
         end if
         goto 120
c marker 975
         u(i + 3) = (u(j) * u(m)) * v(m + 2) * z
         backspace 9
         open (unit = 9, file = 'scratch.dat', status = 'unknown')
         v(j) = x - y + u(j) + 2.0
         j = j + j - 4
         w = z
         assign 140 to i
         goto i (140)
  110 continue
  120 continue
  140 continue
      return
      end
