c seeded fuzz program (surface mode, seed 1013)
      subroutine fz1013(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(36)
      real v(31)
      common /blk/ t(50)
      parameter (c1 = 2)
      save x, y
      external extsub
      equivalence (x, w), (u(1), v(1))
      data i, x /9, 2.0/
  100 format (2x,i5)
         if (1.5 .ne. 3.0) then
            y = z
         end if
         inquire (unit = 9, opened = i)
         do k = 1, 9
            k = 2
            call extsub(u(k + 1), y)
            x = 2.0 - 0.125 * 2.0
         end do
c marker 163
         do 110 m = 2, 4
            rewind 9
            close (9)
  110    continue
         do 120 j = 3, 10
            goto 130
  120    continue
         open (unit = 9, file = 'scratch.dat', status = 'unknown')
c marker 464
         goto (140, 130), k
c marker 703
         do 150 k = 2, 7
            m = j
  150    continue
         v(k) = x
         do 160 j = 2, 12
            if (v(m) .le. 3.0 .or. 2.0 .lt. 3.0) v(m) = 1.5 * 0.25 - y
     & + z
            goto (170, 170), m
  160    continue
  130 continue
  140 continue
  170 continue
      return
      end
