c seeded fuzz program (surface mode, seed 1047)
      program fz1047
      integer i, j, k, m
      real x, y, z, w
      dimension u(36)
      real v(44)
      common /blk/ t(50)
      parameter (c1 = 4)
      save x, y
      external extsub
      intrinsic sqrt
      data i, x /8, 0.25/
  100 format ('x = ',f10.4)
  110 format (3(i4,1x))
         do 120 i = 1, 11
            if (.not. (v(j) .gt. 0.5)) then
               v(j) = z
            else if (u(j) .ne. 2.0) then
               assign 130 to i
               goto i (130)
            end if
            v(i) = 0.25 * (x - x)
  120    continue
         if (u(k) .lt. 1.5) then
            goto 130
            print 100, x, 0.5
         end if
         assign 130 to i
         goto i (130)
         if (.not. (2.0 .le. z .and. z .lt. 3.0)) then
            do 140 j = 1, 6
               assign 130 to m
               goto m (130)
  140       continue
            goto 150
         else
            assign 130 to i
            goto i (130)
            u(m + 1) = -u(m + 1) * y - u(i + 3)
         end if
         z = -3.0
         m = 3 - j + 2 + j
         goto 130
         assign 150 to m
         goto m (150)
         do 160 i = 1, 9
            call extsub(v(i + 3), 0.5)
            x = v(i)
  160    continue
         goto 130
  130 continue
  150 continue
      stop
      end
