c seeded fuzz program (surface mode, seed 1031)
      real function fz1031(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(56)
      real v(55)
      common /blk/ t(50)
      parameter (c1 = 7)
      save x, y
      external extsub
  100 format (1x,2f9.2)
  110 format ('x = ',f10.4)
         if (y .lt. 0.5 .and. z .lt. 0.5) then
            print 100, v(j + 2), x
            assign 120 to j
            goto j (120)
         else
            if (v(m) .ge. u(j)) then
               u(j) = 2.0
               goto (120, 120), i
            else
               goto (130, 140), i
               goto 140
            end if
         end if
         goto (150, 150), m
         goto 160
         z = (1.5 + y) + 0.25
         if (.not. (3.0 .ne. v(k))) then
            do 170 k = 2, 6
               goto 160
               goto (120, 180), m
  170       continue
            do k = 3, 9
               x = u(k)
            end do
         else if (x .gt. u(k + 2)) then
            w = y + u(j + 1) + u(k)
            print *, u(k + 3), 0.5, x
         else
            w = v(m + 2)
         end if
         if (0.5 .eq. z) then
            if (z .ge. v(j + 3)) continue
         else if (x .ne. x) then
            do 200 i = 3, 10
               inquire (unit = 9, opened = i)
               read (5, 100) w
  200       continue
         else
            if (z .le. z) then
               goto 140
            else if (w .le. z) then
               assign 120 to j
               goto j (120)
            else
               read (5, 110) z
               u(i) = x
            end if
         end if
         call extsub(2.0, 0.5)
c marker 361
         w = -0.25 + 0.5 * 0.5
         x = v(m)
         v(j) = (w + u(j + 1) * x)
c marker 524
         call extsub(w, 0.5)
         x = w + -z
         do 210 k = 3, 7
            goto 120
  210    continue
      fz1031 = x + y
  120 continue
  130 continue
  140 continue
  150 continue
  160 continue
  180 continue
  190 continue
      return
      end
