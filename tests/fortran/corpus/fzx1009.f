c seeded fuzz program (executable mode, seed 1009)
      subroutine fzx1009(n, a, b, c)
      integer n
      real a(n), b(n), c(n)
      real s
      integer i
      s = 0.0
         do i = 1, n
            s = s + b(i) * 0.5
         end do
         do i = 1, n
            if (b(i) .gt. 0.0) then
               a(i) = b(i) * 0.25 + c(i)
            else
               a(i) = c(i) - 2.0
            end if
         end do
         do i = 2, n
            b(i) = b(i - 1) * 0.25 + a(i)
         end do
         do i = 1, n
            s = s + c(i) * 0.25
         end do
      b(1) = b(1) + s
      end
