c seeded fuzz program (surface mode, seed 1030)
      program fz1030
      integer i, j, k, m
      real x, y, z, w
      dimension u(47)
      real v(58)
      common /blk/ t(50)
      external extsub
      data i, x /1, 2.0/
  100 format (i5)
         do 110 k = 2, 10
            do k = 2, 7
               y = 1.5 + 0.125 + 0.25
            end do
            if (w .ne. u(m)) then
               open (unit = 9, file = 'scratch.dat', status = 'unknown')
               goto 120
            else
               print 100, 0.125
               call extsub(3.0, v(k))
            end if
  110    continue
         goto 130
         m = 5
         if (v(k) .gt. y) then
            u(j) = u(k) - 0.5 - -0.125
            if (2.0 .gt. 0.25) continue
         end if
         u(m) = -0.5
c marker 586
         j = j - j - m
         if (0.5 .ne. u(m + 3)) then
            inquire (unit = 9, opened = i)
            do 150 k = 1, 10
               goto (160, 170), k
               u(k) = u(j + 2) * v(k + 1) - x * u(j)
c marker 902
  150       continue
c marker 29
         else if (y .le. x) then
            assign 180 to j
            goto j (180)
            goto (180, 130), j
         end if
c marker 176
         m = 7
  120 continue
  130 continue
  140 continue
  160 continue
  170 continue
  180 continue
      continue
      end
