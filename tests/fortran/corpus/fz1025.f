c seeded fuzz program (surface mode, seed 1025)
      program fz1025
      integer i, j, k, m
      real x, y, z, w
      dimension u(23)
      real v(22)
      common /blk/ t(50)
      save
      external extsub
      data i, x /4, 3.0/
      data u /2*0.0/
  100 format (3(i4,1x))
  110 format (a,i3)
         goto 120
         do 130 i = 3, 8
            goto 120
  130    continue
         x = u(i + 3)
         if (u(k + 1) .gt. 0.125) then
            if (v(m + 2) .le. y) then
               call extsub(x, x)
               x = x + 2.0
            else if (v(k + 3) .eq. v(j + 2)) then
               goto 120
               goto (120, 120), j
            else
               rewind 9
               rewind 9
c marker 735
            end if
         end if
c marker 643
         goto 120
         w = (3.0 * w) * (2.0 * v(m + 3))
         write (6, 110) 2.0
         if (w .ge. z) then
            if (w .lt. y) then
               assign 140 to m
               goto m (140)
            else if (w .gt. x) then
               z = 1.5 * u(m)
               goto 140
            else
               v(j) = u(i + 3) * v(k) * z
               assign 120 to i
               goto i (120)
            end if
            goto (150, 160), i
         else if (.not. (0.5 .le. 3.0)) then
            if (.not. (v(i + 2) .ne. v(i))) then
               k = i - 5
            else if (w .eq. u(k + 1)) then
               assign 170 to m
               goto m (170)
               if (u(j) .ge. 0.5 .and. 2.0 .lt. x) continue
            else
               x = z
            end if
         else
            goto 190
            if (x .eq. x) then
               z = u(k + 1) * y
               call extsub(1.5, 3.0)
            end if
         end if
c marker 965
         if (3.0 .ge. u(i)) then
            do 200 m = 3, 12
               y = -v(m + 1)
               write (6, 100) u(k)
  200       continue
c marker 126
            v(j) = (u(k + 2) + v(m) - u(j + 1))
         else
            goto 160
            if (1.5 .lt. u(m + 3)) then
               goto 170
            else
               read (5, 100) x
               if (2.0 .eq. z) goto 190
            end if
         end if
  120 continue
  140 continue
  150 continue
  160 continue
  170 continue
  180 continue
  190 continue
      stop
      end
