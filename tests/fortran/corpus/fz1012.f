c seeded fuzz program (surface mode, seed 1012)
      subroutine fz1012(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(30)
      real v(29)
      common /blk/ t(50)
      save x, y
      external extsub
      data i, x /2, 2.0/
  100 format ('x = ',f10.4)
  110 format (i5)
         v(j) = u(m + 3)
         do 120 j = 1, 8
            y = u(j + 3)
  120    continue
         if (v(m + 2) .eq. u(k + 3) .and. u(i + 1) .lt. 1.5) then
            goto 130
            open (unit = 9, file = 'scratch.dat', status = 'unknown')
         else if (u(j + 2) .le. y) then
            u(k) = v(k + 3) + w - 0.25
         end if
         u(i + 3) = y + z - x + v(j)
         do 140 m = 1, 12
            do i = 2, 7
               goto (130, 130), m
               if (u(k) .gt. w .or. x .gt. v(i)) continue
               read (5, 110) y
            end do
            do 150 m = 3, 8
               goto 160
  150       continue
  140    continue
         if (u(m + 1) .ge. v(i + 1) .or. u(j + 1) .lt. 0.125) u(j) = x
         if (z .gt. v(j + 1)) then
            if (1.5 .ge. x) then
               assign 160 to m
               goto m (160)
               x = (u(m) * 3.0 - 0.5)
            else if (0.125 .gt. v(m) .and. u(j + 2) .gt. 0.5) then
               z = z + z + 3.0 + 0.5
               z = z
            end if
         end if
         goto (130, 180), i
         if (0.25 .gt. u(k + 1)) goto 160
         i = 3
         do 190 j = 1, 6
            u(k) = v(i + 1) + -u(m)
            do 200 j = 2, 4
               z = v(i + 2)
  200       continue
  190    continue
         j = k - k - i
c marker 382
         do 210 j = 2, 11
            if (v(m + 3) .ne. 3.0) then
               backspace 9
            end if
            read (5, 110) x
  210    continue
      entry fz1012b(x)
         u(i) = 1.5 + z - (0.25 - u(m))
         if (y .gt. 2.0) then
            if (.not. (z .ne. 2.0 .or. u(m + 3) .gt. 0.25)) continue
            if (v(m) .gt. w) then
               assign 130 to k
               goto k (130)
               assign 180 to k
               goto k (180)
            else if (z .ge. x) then
               v(m + 2) = 0.25
               z = -v(i)
            else
               rewind 9
               print 100, 1.5, z, z
            end if
         else if (w .ne. x) then
            do 230 j = 1, 9
               print 110, y
  230       continue
         else
            if (0.5 .ge. 0.25) continue
            if (0.5 .lt. x .or. u(k + 3) .gt. 3.0) then
               open (unit = 9, file = 'scratch.dat', status = 'unknown')
               backspace 9
            else
               goto (250, 260), i
            end if
         end if
  130 continue
  160 continue
  170 continue
  180 continue
  220 continue
  240 continue
  250 continue
  260 continue
      return
      end
