c seeded fuzz program (surface mode, seed 1041)
      subroutine fz1041(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(30)
      real v(49)
      common /blk/ t(50)
      parameter (c1 = 3)
      save x, y
      external extsub
      intrinsic sqrt
      equivalence (x, w), (u(1), v(1))
  100 format (1x,2f9.2)
  110 format (2x,i5)
  120 format (1x,2f9.2)
         i = 9
         v(k + 2) = v(i + 2) + 1.5
         v(k + 2) = 0.125
         open (unit = 9, file = 'scratch.dat', status = 'unknown')
         assign 130 to j
         goto j (130)
         goto 130
         assign 140 to j
         goto j (140)
         call extsub(z, z)
      entry fz1041b(x)
         if (z .ne. 1.5) then
            goto 140
            assign 150 to m
            goto m (150)
         else if (w .gt. y .and. 0.25 .gt. y) then
            goto 160
            z = (0.5 * y) * (v(m + 3) + w)
         else
            if (v(k + 2) .le. w) then
               write (6, fmt = 110) v(k)
            else if (1.5 .ne. 1.5 .and. 2.0 .gt. w) then
               print *, 1.5
            else
               z = v(j)
               goto 140
            end if
         end if
         x = z + w * x
  130 continue
  140 continue
  150 continue
  160 continue
      return
      end
