c seeded fuzz program (surface mode, seed 1011)
      subroutine fz1011(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(36)
      real v(21)
      common /blk/ t(50)
      save x, y
      external extsub
      data i, x /1, 2.0/
  100 format ('x = ',f10.4)
  110 format (3(i4,1x))
  120 format (i5)
         if (v(m + 2) .ge. u(i + 3)) then
            if (2.0 .ge. u(m + 1) .or. 0.25 .lt. w) then
               u(i) = v(m + 1) - 0.5
            else
               x = w + 0.125 + 1.5
            end if
         else
            v(j + 1) = z
            do m = 3, 12
               u(m) = -u(k) + 3.0 * 0.5
c marker 690
            end do
c marker 782
         end if
         goto (130, 130), k
         if (u(k + 2) .gt. 2.0) continue
         do 140 k = 3, 9
            assign 130 to i
            goto i (130)
            goto 150
c marker 284
  140    continue
         do 160 i = 1, 10
            x = x
  160    continue
         do j = 2, 7
            y = v(i + 3) * v(k + 1) - u(i)
            if (w .eq. 2.0) then
               w = -v(k) * 0.5
               k = i * 5 + 6
            end if
            if (.not. (u(j) .le. 0.25)) then
               if (.not. (z .eq. z)) goto 130
               u(j + 1) = (x + u(k + 1) + w)
            else if (0.5 .lt. y) then
               goto 130
               u(m + 2) = u(i + 1)
            else
               y = u(j + 2) * 3.0 - x - y
            end if
         end do
         goto (170, 180), j
         write (6, 110) x
c marker 377
         if (y .gt. 3.0 .or. v(i + 3) .lt. 0.125) u(k + 2) = v(k + 1) -
     & 0.5 + w
         if (0.5 .eq. u(i)) then
            if (v(i + 3) .eq. u(i)) goto 180
            goto (170, 190), k
         end if
         m = 1 - 7 * 9
  130 continue
  150 continue
  170 continue
  180 continue
  190 continue
      return
      end
