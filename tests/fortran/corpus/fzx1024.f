c seeded fuzz program (executable mode, seed 1024)
      subroutine fzx1024(n, a, b, c)
      integer n
      real a(n), b(n), c(n)
      real s
      integer i
      s = 0.0
         do i = 2, n
            c(i) = c(i - 1) * 0.25 + a(i)
         end do
         do i = 1, n
            s = s + b(i) * 2.0
         end do
      b(1) = b(1) + s
      end
