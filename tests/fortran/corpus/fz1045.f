c seeded fuzz program (surface mode, seed 1045)
      real function fz1045(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(22)
      real v(47)
      common /blk/ t(50)
      save x, y
      external extsub
      intrinsic sqrt
      data i, x /7, 3.0/
      data u /3*0.0/
  100 format (i5)
  110 format (2x,i5)
  120 format (i5)
         i = 5
         u(m) = (v(i + 1) + w)
         inquire (unit = 9, opened = i)
         goto 130
         v(m) = u(m) * x * u(k) * y
         v(i) = w
         i = k * 4 - 8 * 8
         assign 140 to m
         goto m (140)
         goto 130
c marker 55
         u(i) = 3.0 * 1.5
         do 150 j = 3, 6
            do i = 1, 12
               goto 160
               v(i) = z * 0.125
            end do
            v(k) = 3.0
  150    continue
      fz1045 = x + y
  130 continue
  140 continue
  160 continue
      return
      end
