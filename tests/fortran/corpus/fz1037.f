c seeded fuzz program (surface mode, seed 1037)
      program fz1037
      integer i, j, k, m
      real x, y, z, w
      dimension u(48)
      real v(51)
      parameter (c1 = 7)
      external extsub
  100 format (f8.3,1x,e12.4)
  110 format (i5)
  120 format (3(i4,1x))
         assign 130 to i
         goto i (130)
         if (v(j) .lt. y) then
            y = v(k + 2)
         end if
         if (w .le. 2.0) then
            w = u(m + 3)
            goto 130
         else if (x .gt. w) then
            call extsub(0.5, v(k + 2))
c marker 851
         else
            if (0.5 .ge. 3.0 .and. x .lt. 1.5) then
               goto 130
            else if (.not. (x .eq. v(k))) then
               u(k + 2) = 0.25
               w = u(j + 2)
c marker 845
            else
               u(j) = w - x * 0.25 + u(k)
               i = 1 + m
            end if
            inquire (unit = 9, opened = i)
         end if
c marker 466
         backspace 9
         goto 130
         write (6, 120) z, z
         z = x
c marker 283
  130 continue
      stop
      end
