c seeded fuzz program (surface mode, seed 1003)
      subroutine fz1003(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(55)
      real v(43)
      common /blk/ t(50)
      parameter (c1 = 9)
      external extsub
      intrinsic sqrt
      data i, x /4, 1.5/
  100 format (a,i3)
  110 format (a,i3)
  120 format (a,i3)
         goto 130
         if (x .ne. 1.5 .or. 2.0 .lt. v(m)) then
            goto (140, 130), k
            v(j + 2) = 3.0
         end if
c marker 442
         open (unit = 9, file = 'scratch.dat', status = 'unknown')
         m = k * j
c marker 593
         backspace 9
         do i = 2, 12
            if (w .lt. 1.5 .and. v(i + 3) .gt. v(i)) then
               w = 0.5 * 1.5 - -u(m)
               read (5, 120) w
            end if
            v(j) = 0.125 + u(k + 2) + v(m + 2)
         end do
      entry fz1003b(x)
         backspace 9
         k = j * m * 1
  130 continue
  140 continue
      return
      end
