c seeded fuzz program (surface mode, seed 1002)
      real function fz1002(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(58)
      real v(46)
      parameter (c1 = 6)
      external extsub
      data i, x /0, 0.5/
      data u /2*0.0/
  100 format (i5)
  110 format (3(i4,1x))
         goto (120, 120), k
c marker 877
         endfile 9
         y = -1.5 + -0.25
         do 130 j = 1, 7
            u(k + 2) = -3.0 * 2.0
  130    continue
         do k = 3, 10
            k = m
         end do
         goto 120
         goto (140, 150), m
         if (v(k) .ne. u(k + 1)) then
            if (x .le. 2.0) then
               goto (150, 160), j
            else if (u(k + 2) .le. z) then
               x = (w - u(j)) * -1.5
               w = 0.5
            end if
         else if (v(i + 3) .lt. w) then
            y = 0.125 - 0.125 - 0.125
c marker 379
            if (y .ne. 0.125) then
               write (6, fmt = 100) 1.5, x, 0.25
               print 100, u(m + 1), u(i)
            end if
         else
            j = 2 + j + k * 3
            do 170 i = 3, 6
               write (6, fmt = 100) 3.0, v(k), v(j + 2)
               write (6, 110) 0.5, z
c marker 507
  170       continue
         end if
         if (x .gt. 0.25 .and. w .gt. w) goto 180
         k = j
c marker 123
         open (unit = 9, file = 'scratch.dat', status = 'unknown')
         if (u(k + 2) .ne. v(m)) then
            goto 150
         end if
         if (v(j + 3) .le. v(k)) k = m - j
         do 190 i = 1, 6
            call extsub(1.5, z)
  190    continue
      fz1002 = x + y
  120 continue
  140 continue
  150 continue
  160 continue
  180 continue
      return
      end
