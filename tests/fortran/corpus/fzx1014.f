c seeded fuzz program (executable mode, seed 1014)
      subroutine fzx1014(n, a, b, c)
      integer n
      real a(n), b(n), c(n)
      real s
      integer i
      s = 0.0
         do i = 1, n
            if (b(i) .gt. 0.0) then
               a(i) = b(i) * 0.25 + c(i)
            else
               a(i) = c(i) - 0.5
            end if
         end do
         do i = 1, n
            c(i) = a(i) * 2.0 + b(i)
         end do
         do i = 1, n - 1
            b(i) = c(i + 1) * 0.5 + c(i)
         end do
         do i = 1, n
            a(i) = b(i) * 0.5 + c(i)
         end do
      b(1) = b(1) + s
      end
