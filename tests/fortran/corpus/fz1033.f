c seeded fuzz program (surface mode, seed 1033)
      real function fz1033(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(33)
      real v(37)
      common /blk/ t(50)
      external extsub
      equivalence (x, w), (u(1), v(1))
      data u /3*0.0/
  100 format (1x,2f9.2)
         w = 1.5 + w + -0.25
         z = z
         assign 110 to k
         goto k (110)
         x = (y * 0.5) - v(i + 3)
         do j = 1, 7
            if (x .le. x) goto 110
            open (unit = 9, file = 'scratch.dat', status = 'unknown')
            v(j + 2) = (v(i) + z) * v(i + 2)
         end do
         y = 0.125
         write (6, fmt = 100) v(i + 1)
         if (x .ne. w) then
            if (0.5 .ne. v(m + 3)) then
               inquire (unit = 9, opened = k)
c marker 734
               j = 2
c marker 129
            end if
         else if (u(j + 3) .le. u(k)) then
            assign 120 to j
            goto j (120)
            goto 120
         else
            v(j) = u(j)
c marker 173
         end if
      fz1033 = x + y
  110 continue
  120 continue
      return
      end
