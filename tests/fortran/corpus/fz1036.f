c seeded fuzz program (surface mode, seed 1036)
      subroutine fz1036(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(25)
      real v(24)
      common /blk/ t(50)
      parameter (c1 = 4)
      save x, y
      external extsub
      data i, x /4, 2.0/
      data u /3*0.0/
  100 format (3(i4,1x))
  110 format (2x,i5)
  120 format (1x,2f9.2)
         do k = 3, 9
            u(k) = u(j) + x * 0.5 * z
            if (v(m + 2) .gt. x) then
               y = 1.5
               v(k) = u(i)
            end if
         end do
         if (x .eq. 2.0) then
            j = k - i
            u(m + 2) = -3.0 * x + y
         else
            rewind 9
c marker 603
         end if
         read (5, 120) y
         do 130 i = 3, 6
            write (6, fmt = 100) u(k + 1), w
  130    continue
         write (6, fmt = 120) v(m + 2), u(m + 2), x
         do j = 2, 6
            if (v(j) .ne. 0.25) then
               u(k) = 0.125 + z * 0.25
            else
               i = 2
               z = v(i)
            end if
         end do
      return
      end
