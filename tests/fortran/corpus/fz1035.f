c seeded fuzz program (surface mode, seed 1035)
      real function fz1035(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(48)
      real v(28)
      common /blk/ t(50)
      parameter (c1 = 8)
      save x, y
      external extsub
      equivalence (x, w), (u(1), v(1))
      data i, x /6, 1.5/
  100 format (2x,i5)
  110 format (a,i3)
         goto (120, 120), j
         u(i + 3) = y * y + v(i)
         y = 1.5 - v(k) * x
         inquire (unit = 9, opened = j)
         do 130 k = 2, 5
            write (6, 100) v(j + 2)
  130    continue
         v(m + 2) = 0.25 * z * x
         z = z * z * 0.125
         do 140 k = 1, 7
            print 110, 0.125
  140    continue
      fz1035 = x + y
  120 continue
      return
      end
