c seeded fuzz program (executable mode, seed 1034)
      subroutine fzx1034(n, a, b, c)
      integer n
      real a(n), b(n), c(n)
      real s
      integer i
      s = 0.0
         do i = 2, n
            a(i) = a(i - 1) * 0.25 + c(i)
         end do
         do i = 2, n
            a(i) = a(i - 1) * 0.25 + c(i)
         end do
         do i = 1, n
            c(i) = a(i) * 3.0 + b(i)
         end do
      b(1) = b(1) + s
      end
