c seeded fuzz program (surface mode, seed 1038)
      program fz1038
      integer i, j, k, m
      real x, y, z, w
      dimension u(24)
      real v(36)
      common /blk/ t(50)
      parameter (c1 = 2)
      external extsub
      intrinsic sqrt
      equivalence (x, w), (u(1), v(1))
      data u /2*0.0/
  100 format (i5)
  110 format ('x = ',f10.4)
  120 format (a,i3)
         if (0.5 .ne. z .or. v(k) .lt. v(j + 1)) goto 130
         if (0.25 .lt. u(m + 2)) then
            v(m) = x
         end if
         goto 140
         v(m) = u(j + 2) * z * -0.125
         do i = 1, 6
            backspace 9
            do 150 i = 2, 10
               goto 140
  150       continue
         end do
         write (6, 110) u(k + 1)
         if (w .lt. v(k)) continue
         call extsub(u(i), w)
         assign 160 to i
         goto i (160)
         close (9)
         do m = 2, 5
            w = v(m) + u(j) * x + y
         end do
         if (u(m + 2) .ne. y .and. y .gt. v(k)) then
            print *, u(k)
         else if (y .ge. 0.5) then
            if (w .ne. 1.5) then
               i = 6 * 7 + 6
               if (w .ge. u(j)) goto 130
c marker 89
            else if (2.0 .le. 1.5) then
               y = v(m + 2)
               goto 130
            end if
            do 170 k = 2, 7
               u(k) = 3.0
  170       continue
         end if
         x = x - 3.0
         assign 130 to i
         goto i (130)
  130 continue
  140 continue
  160 continue
      continue
      end
