c seeded fuzz program (surface mode, seed 1007)
      program fz1007
      integer i, j, k, m
      real x, y, z, w
      dimension u(58)
      real v(31)
      save
      external extsub
      data i, x /7, 0.125/
      data u /2*0.0/
  100 format ('x = ',f10.4)
         if (u(i + 3) .ne. z) then
            w = w
            do 110 k = 2, 6
               read (5, 100) z
  110       continue
         else if (u(k + 3) .eq. 0.5 .or. u(m) .lt. w) then
            if (y .ne. u(m)) then
               write (6, fmt = 100) 3.0
               w = y
            else
               u(i + 3) = w * 1.5 * 0.25
c marker 247
            end if
         end if
         if (0.5 .ge. z) then
            assign 120 to k
            goto k (120)
            do i = 1, 11
               if (u(k) .ne. 3.0 .or. 2.0 .lt. y) v(m + 1) = v(i + 1)
               z = 0.125
            end do
         else
            if (u(k + 2) .ne. w) then
               goto 130
            else
               print 100, v(i), 1.5
            end if
            do k = 2, 11
               goto (120, 130), m
               assign 120 to j
               goto j (120)
            end do
         end if
         print 100, y, v(k + 2), u(j + 2)
         k = 7
         call extsub(z, u(j + 3))
         if (w .eq. y) then
            u(i + 2) = u(m + 3) - w * 2.0
         else if (u(k + 3) .eq. 1.5) then
            k = 8 * 7 - 9
            goto 120
         end if
         do k = 2, 10
            inquire (unit = 9, opened = i)
            do i = 3, 8
               write (6, 100) v(j), u(k), v(j)
               print *, x
               assign 120 to i
               goto i (120)
            end do
c marker 131
            u(k + 1) = u(j) + v(i) * u(m)
         end do
         if (z .eq. v(m + 3)) then
            v(j + 2) = u(k + 2)
c marker 238
         else if (x .eq. v(k + 2)) then
            assign 140 to i
            goto i (140)
            goto (140, 120), i
         end if
         do m = 2, 6
            y = x + y
            backspace 9
            goto 130
         end do
  120 continue
  130 continue
  140 continue
      continue
      end
