c seeded fuzz program (surface mode, seed 1017)
      subroutine fz1017(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(60)
      real v(47)
      common /blk/ t(50)
      parameter (c1 = 6)
      save x, y
      external extsub
      intrinsic sqrt
  100 format (1x,2f9.2)
  110 format (1x,2f9.2)
         backspace 9
         do m = 1, 8
            do m = 2, 8
               u(j + 1) = w
               w = x
               goto 120
            end do
         end do
         if (2.0 .eq. z) then
            goto (120, 120), k
         end if
         rewind 9
         do j = 3, 7
            v(i + 1) = 1.5 + u(j + 3) - v(m)
         end do
         print *, v(m + 1)
         v(k) = 1.5
         assign 120 to j
         goto j (120)
         call extsub(u(m + 1), x)
         k = 3 - j - 3
         do j = 3, 12
            if (.not. (0.125 .eq. w)) then
               y = (v(k + 1) - y)
c marker 853
            else if (z .ne. u(m + 1) .or. y .lt. x) then
               u(i + 2) = 3.0
            end if
         end do
         i = 7 - k + 6
         v(k + 2) = u(i + 2) + 1.5 * v(m)
         m = 6 + 5 + i * 1
  120 continue
      return
      end
