c seeded fuzz program (executable mode, seed 1004)
      subroutine fzx1004(n, a, b, c)
      integer n
      real a(n), b(n), c(n)
      real s
      integer i
      s = 0.0
         do i = 2, n
            c(i) = c(i - 1) * 0.5 + a(i)
         end do
         do i = 1, n
            b(i) = a(i) * 3.0 + c(i)
         end do
         do i = 2, n
            b(i) = b(i - 1) * 0.5 + a(i)
         end do
      b(1) = b(1) + s
      end
