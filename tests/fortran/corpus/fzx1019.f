c seeded fuzz program (executable mode, seed 1019)
      subroutine fzx1019(n, a, b, c)
      integer n
      real a(n), b(n), c(n)
      real s
      integer i
      s = 0.0
         do i = 1, n
            c(i) = a(i) * 0.125 + b(i)
         end do
         do i = 1, n
            a(i) = b(i) * 0.125 + c(i)
         end do
      b(1) = b(1) + s
      end
