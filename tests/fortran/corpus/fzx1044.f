c seeded fuzz program (executable mode, seed 1044)
      subroutine fzx1044(n, a, b, c)
      integer n
      real a(n), b(n), c(n)
      real s
      integer i
      s = 0.0
         do i = 2, n
            b(i) = b(i - 1) * 0.5 + a(i)
         end do
         do i = 1, n
            s = s + c(i) * 0.5
         end do
         do i = 1, n - 1
            b(i) = a(i + 1) * 0.5 + a(i)
         end do
         do i = 1, n - 1
            c(i) = b(i + 1) * 0.25 + b(i)
         end do
      b(1) = b(1) + s
      end
