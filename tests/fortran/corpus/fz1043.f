c seeded fuzz program (surface mode, seed 1043)
      real function fz1043(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(43)
      real v(40)
      common /blk/ t(50)
      external extsub
      data u /4*0.0/
  100 format (1x,2f9.2)
  110 format (i5)
         v(k + 3) = -0.25
         j = j + 5 + 2
         x = y * 2.0 * 2.0
         assign 120 to m
         goto m (120)
         assign 130 to m
         goto m (130)
         write (6, 110) v(k + 2)
c marker 523
         endfile 9
c marker 999
         write (6, 110) u(k), v(i)
         u(j + 3) = x * u(j) + (z - 1.5)
         open (unit = 9, file = 'scratch.dat', status = 'unknown')
         goto 120
         inquire (unit = 9, opened = i)
      fz1043 = x + y
  120 continue
  130 continue
      return
      end
