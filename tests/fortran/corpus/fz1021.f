c seeded fuzz program (surface mode, seed 1021)
      real function fz1021(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(52)
      real v(31)
      common /blk/ t(50)
      external extsub
      equivalence (x, w), (u(1), v(1))
      data i, x /7, 1.5/
      data u /2*0.0/
  100 format (a,i3)
  110 format (i5)
         rewind 9
         do 120 j = 2, 12
            do 130 k = 2, 9
               goto 140
  130       continue
c marker 443
  120    continue
         write (6, 110) 0.25, 0.5, 0.125
         goto (140, 150), i
         do k = 1, 12
            do 160 j = 3, 9
               goto 170
  160       continue
            goto 140
            goto 140
         end do
         do i = 1, 4
            do 180 k = 2, 6
               goto 140
  180       continue
            if (z .eq. u(m + 2)) then
               goto 190
               assign 200 to m
               goto m (200)
            else if (0.25 .ge. y .or. u(j) .gt. 0.125) then
               x = (u(i) - u(k)) * z
               goto (210, 140), i
            else
               call extsub(0.125, x)
            end if
         end do
         x = y * x * x * 1.5
         inquire (unit = 9, opened = m)
         y = w
      fz1021 = x + y
  140 continue
  150 continue
  170 continue
  190 continue
  200 continue
  210 continue
      return
      end
