c seeded fuzz program (surface mode, seed 1015)
      program fz1015
      integer i, j, k, m
      real x, y, z, w
      dimension u(39)
      real v(51)
      common /blk/ t(50)
      save
      external extsub
      data i, x /9, 0.25/
  100 format (i5)
  110 format (1x,2f9.2)
  120 format ('x = ',f10.4)
         print *, u(k), w, x
         print 110, 0.5, 0.5, u(m)
         goto (130, 140), i
         w = -v(j + 1)
         do m = 2, 4
            do k = 1, 12
               assign 150 to j
               goto j (150)
               goto (160, 170), m
               call extsub(1.5, 0.125)
            end do
         end do
         if (1.5 .gt. w .and. z .lt. 0.25) z = (u(k + 3) + 1.5) + w *
     & u(j + 1)
         call extsub(0.125, w)
         do 180 m = 3, 9
            rewind 9
            if (u(m) .le. u(k + 3)) then
               call extsub(1.5, v(k + 2))
            else if (0.25 .gt. 0.125 .and. v(m + 2) .lt. 0.125) then
               m = i - k + 9 * m
            end if
  180    continue
         open (unit = 9, file = 'scratch.dat', status = 'unknown')
         j = m
         do m = 2, 5
            backspace 9
            if (u(k + 1) .ne. u(j)) then
               u(m) = 1.5 * (w * 0.25)
               i = 5
            else if (0.25 .ne. 0.25) then
               inquire (unit = 9, opened = i)
               backspace 9
            else
               w = w
               k = i + m - 9
            end if
         end do
         goto (190, 200), m
         do m = 2, 6
            if (u(j) .ne. u(i + 3)) z = w
         end do
  130 continue
  140 continue
  150 continue
  160 continue
  170 continue
  190 continue
  200 continue
      continue
      end
