c seeded fuzz program (surface mode, seed 1008)
      real function fz1008(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(48)
      real v(41)
      common /blk/ t(50)
      save x, y
      external extsub
      data i, x /9, 0.25/
  100 format (i5)
  110 format (3(i4,1x))
  120 format (1x,2f9.2)
         if (0.25 .ge. 3.0 .or. 0.25 .lt. 0.5) then
            y = z * 0.125 * 0.5
         end if
         if (u(i + 2) .ne. 0.25 .or. z .lt. 0.125) then
            do k = 1, 10
               goto 130
               v(m + 3) = 0.5 * y + v(i)
            end do
         else if (w .ne. u(i) .and. u(i + 1) .gt. v(k)) then
            if (u(j) .lt. 1.5) then
               goto (130, 130), m
               m = 9
            else if (0.25 .gt. 0.5) then
               call extsub(3.0, u(j + 2))
               if (3.0 .ne. 0.5 .or. 2.0 .gt. z) goto 130
            end if
            goto 140
         end if
c marker 890
         u(j) = 1.5 * 3.0 + 3.0 - z
         j = 5 * j + m
         do j = 1, 6
            if (y .eq. z) v(i) = v(m + 3)
            do 150 k = 2, 5
               goto 160
  150       continue
         end do
         y = (3.0 * 1.5) * y
         u(j + 1) = 3.0
         if (u(k + 3) .ne. 1.5 .or. 0.25 .lt. 1.5) then
            z = z
         else
            call extsub(x, u(m))
         end if
         write (6, 110) v(m), 2.0
         goto 130
         m = m - m
      fz1008 = x + y
  130 continue
  140 continue
  160 continue
      return
      end
