c seeded fuzz program (surface mode, seed 1005)
      subroutine fz1005(x, y)
      integer i, j, k, m
      real x, y, z, w
      dimension u(45)
      real v(54)
      common /blk/ t(50)
      external extsub
      equivalence (x, w), (u(1), v(1))
      data i, x /5, 1.5/
  100 format (a,i3)
         if (0.25 .lt. 0.25) then
            if (v(i) .eq. v(k)) then
               call extsub(u(k + 2), z)
               if (0.25 .le. 2.0) goto 110
            else if (w .gt. x) then
               u(m + 3) = (w + u(k)) - 2.0 * y
            else
               goto 120
               call extsub(x, u(j + 2))
            end if
            do k = 2, 7
               u(m) = (0.125 * 3.0) - 2.0
               k = i
            end do
         else if (u(k + 2) .eq. y) then
            rewind 9
            rewind 9
         else
            goto 130
            call extsub(u(j + 3), 0.25)
c marker 553
         end if
         write (6, fmt = 100) x, u(j)
c marker 541
         do 140 k = 2, 6
            call extsub(z, w)
  140    continue
         if (.not. (z .le. v(i) .or. v(m + 1) .lt. y)) then
            goto 130
            if (v(j) .ge. 3.0) then
               u(j) = 0.5 + x + 0.25 + 2.0
            end if
c marker 611
         end if
         y = 0.5 * x + z * u(k)
         u(j) = (u(k) * x + (z - 1.5))
  110 continue
  120 continue
  130 continue
      return
      end
