"""Tests for the seeded F77 fuzzer and its oracles.

The committed corpus under ``tests/fortran/corpus/`` pins the generator:
every file must round-trip (parse → unparse → re-parse to an identical
AST), and regenerating with the committed seed must reproduce the corpus
byte-for-byte — the generator draws randomness only from
``random.Random(seed)``, never from the wall clock.
"""

import pathlib

import pytest

from repro.fortran.fuzz import (FuzzProgram, differential_check, generate,
                                make_case, round_trip_check)

CORPUS = pathlib.Path(__file__).parent / "corpus"
CORPUS_SEED = 1000
CORPUS_COUNT = 50


def corpus_files():
    return sorted(CORPUS.glob("*.f"))


def test_corpus_is_complete():
    assert len(corpus_files()) == CORPUS_COUNT


@pytest.mark.parametrize("path", corpus_files(),
                         ids=lambda p: p.name)
def test_corpus_round_trips(path):
    failure = round_trip_check(path.read_text())
    assert failure is None, f"{path.name}: {failure}"


def test_corpus_regenerates_byte_for_byte():
    """Determinism: the committed corpus is exactly what the committed
    seed produces (mixed mode: every fifth program is executable)."""
    for k in range(CORPUS_COUNT):
        seed = CORPUS_SEED + k
        mode = "executable" if k % 5 == 4 else "surface"
        prog = generate(seed, mode)
        path = CORPUS / f"{prog.name}.f"
        assert path.exists(), f"corpus missing {prog.name}.f"
        assert path.read_text() == prog.source, \
            f"{path.name} drifted from generator output"


def test_generate_is_deterministic():
    a = generate(42, "surface")
    b = generate(42, "surface")
    assert a.source == b.source and a.name == b.name
    assert generate(43, "surface").source != a.source


def test_fresh_seeds_round_trip():
    """Oracle smoke beyond the committed corpus (CI runs 200)."""
    for seed in range(2000, 2040):
        prog = generate(seed, "surface")
        failure = round_trip_check(prog.source)
        assert failure is None, f"seed {seed}: {failure}"


def test_executable_programs_round_trip():
    for seed in range(300, 305):
        prog = generate(seed, "executable")
        assert prog.entry == prog.name
        failure = round_trip_check(prog.source)
        assert failure is None, f"seed {seed}: {failure}"


def test_round_trip_check_flags_breakage():
    # a source that cannot re-parse must produce a failure string
    assert round_trip_check("      program p\n      x = ((1\n") is not None


def test_make_case_shape():
    import numpy as np
    prog = generate(301, "executable")
    case = make_case(prog, n=8)
    assert case.entry == prog.entry
    args, _ = case.make_args(8, np.random.default_rng(0))
    n, a, b, c = args
    assert n == 8 and a.shape == (8,) and b.shape == (8,) \
        and c.shape == (8,)


def test_differential_oracle():
    """Executable fuzz programs agree between the reference interpreter
    and the restructured pipeline (repro.validate differential run)."""
    for seed in (301, 307):
        prog = generate(seed, "executable")
        failure = differential_check(prog, n=16)
        assert failure is None, f"seed {seed}: {failure}"


def test_fuzz_program_is_frozen():
    prog = generate(1, "surface")
    assert isinstance(prog, FuzzProgram)
    with pytest.raises(Exception):
        prog.seed = 2
