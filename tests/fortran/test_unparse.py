"""Unparser tests, including parse→unparse→parse round-trips."""

import dataclasses

import pytest

from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program
from repro.fortran.unparse import unparse


def normalize(node):
    """Structural fingerprint ignoring labels/line numbers/loop label form."""
    if isinstance(node, F.Node):
        fields = []
        for f in dataclasses.fields(node):
            if f.name in ("label", "line", "do_label"):
                continue
            fields.append((f.name, normalize(getattr(node, f.name))))
        return (type(node).__name__, tuple(fields))
    if isinstance(node, list):
        items = [normalize(x) for x in node]
        # terminal CONTINUE of a labeled DO is syntax, not semantics
        items = [x for x in items if x != ("ContinueStmt", ())]
        return tuple(items)
    if isinstance(node, tuple):
        return tuple(normalize(x) for x in node)
    return node


def roundtrip(src):
    ast1 = parse_program(src)
    text = unparse(ast1)
    ast2 = parse_program(text)
    assert normalize(ast1) == normalize(ast2), text
    return text


def test_roundtrip_saxpy():
    roundtrip("""
      subroutine saxpy(n, a, x, y)
      integer n
      real a, x(n), y(n)
      do 10 i = 1, n
         y(i) = y(i) + a * x(i)
   10 continue
      end
""")


def test_roundtrip_control_flow():
    roundtrip("""
      subroutine s(a, b, n)
      integer n
      real a(n), b(n)
      do i = 1, n
         if (a(i) .gt. 0.0) then
            b(i) = sqrt(a(i))
         else if (a(i) .lt. 0.0) then
            b(i) = -a(i)
         else
            b(i) = 0.0
         end if
      end do
      if (n .gt. 100) call other(a, n)
      return
      end
""")


def test_roundtrip_declarations():
    roundtrip("""
      program main
      implicit none
      integer n, m
      parameter (n = 100, m = 50)
      real a(n, m), work(2*n)
      double precision acc
      common /shared/ a
      save acc
      data acc /0.0/
      acc = 0.0d0
      end
""")


def test_roundtrip_goto():
    roundtrip("""
      subroutine conv(x, n)
      integer n
      real x(n)
   10 continue
      if (x(1) .gt. 1.0) goto 20
      x(1) = x(1) * 2.0
      goto 10
   20 continue
      end
""")


def test_parenthesization_preserved():
    src = """
      subroutine s
      x = (a + b) * c
      y = a + b * c
      z = -(a + b)
      w = a - (b - c)
      v = a / (b * c)
      u = (a ** b) ** c
      end
"""
    ast1 = parse_program(src)
    text = unparse(ast1)
    ast2 = parse_program(text)
    from tests.fortran.test_unparse import normalize as _n
    assert _n(ast1) == _n(ast2), text


def test_long_line_continuation():
    terms = " + ".join(f"aa{i}" for i in range(30))
    src = f"      subroutine s\n      x = {terms}\n      end\n"
    ast1 = parse_program(src)
    text = unparse(ast1)
    assert all(len(line) <= 72 for line in text.splitlines())
    assert any(line.startswith("     &") for line in text.splitlines())
    ast2 = parse_program(text)
    assert normalize(ast1) == normalize(ast2)


def test_real_literal_formats():
    text = roundtrip("""
      subroutine s
      x = 1.5
      y = 1.0e-6
      z = 2.5d0
      end
""")
    assert "d" in text  # double-precision spelling survives


def test_array_sections_unparse():
    text = roundtrip("""
      subroutine s(a, b, n)
      real a(n), b(n)
      a(1:n) = b(1:n) * 2.0
      a(1:n:2) = 0.0
      end
""")
    assert "1:n" in text


def test_unparse_statement_directly():
    stmt = F.Assign(target=F.Var("x"), value=F.IntLit(3))
    assert unparse(stmt).strip() == "x = 3"


def test_computed_goto_roundtrip():
    roundtrip("""
      subroutine s(k)
      integer k
      goto (10, 20), k
   10 continue
   20 continue
      end
""")


def test_new_statement_surface_roundtrip():
    roundtrip("""
      subroutine s(n)
      integer n
      real a(10), b(10)
      common /blk/ a
      save b
      external helper
      intrinsic sqrt
      data a /10*0.0/
      open (unit=7, file='x.dat', err=90)
      read (7, 10, end=90) a(1)
      write (7, fmt=10) a(1)
      rewind 7
      backspace (7)
      close (7)
      assign 20 to lbl
      goto lbl, (20)
   20 continue
   90 continue
   10 format (f8.2)
      end
""")


def test_labeled_do_roundtrip_exact():
    """A labeled DO must unparse back as a labeled DO (do_label kept)."""
    src = ("      subroutine s(n, a)\n"
           "      integer n\n"
           "      real a(n)\n"
           "      do 10 i = 1, n\n"
           "         a(i) = 0.0\n"
           "   10 continue\n"
           "      end\n")
    from repro.fortran.ast_nodes import ast_equal
    ast1 = parse_program(src)
    text = unparse(ast1)
    assert "do 10 i" in text and "end do" not in text
    assert ast_equal(ast1, parse_program(text))


def test_continuation_split_never_glues_tokens():
    """Splitting a long card must not delete the space between tokens
    (the lexer joins continuation bodies verbatim)."""
    long_names = [f"verylongvariablename{i:02d}" for i in range(8)]
    expr = long_names[0]
    for nm in long_names[1:]:
        expr = F.BinOp("+", expr, F.Var(nm)) if isinstance(expr, F.Expr) \
            else F.BinOp("+", F.Var(expr), F.Var(nm))
    sf = F.SourceFile(units=[F.Subroutine(
        name="s", args=[],
        body=[F.Assign(target=F.Var("result"), value=expr)])])
    text = unparse(sf)
    assert any(len(line) > 72 for line in text.splitlines()) is False
    ast2 = parse_program(text)
    names = {n.name for n in ast2.units[0].body[0].walk()
             if isinstance(n, F.Var)}
    assert set(long_names) <= names


def test_continuation_split_respects_quotes():
    """A long quoted literal must never be cut at an inner space in a
    way that alters its characters."""
    msg = "a long message with many words " * 4
    sf = F.SourceFile(units=[F.Subroutine(
        name="s", args=[],
        body=[F.StopStmt(message=msg)])])
    text = unparse(sf)
    assert all(len(line) <= 72 for line in text.splitlines())
    ast2 = parse_program(text)
    assert ast2.units[0].body[0].message == msg


def test_roundtrip_all_workloads():
    """Property: every in-repo workload survives parse→unparse→reparse
    with an identical AST (modulo line numbers)."""
    from repro.fortran.ast_nodes import ast_diff
    from repro.workloads import validation_cases
    for name, case in sorted(validation_cases().items()):
        ast1 = parse_program(case.source)
        text = unparse(ast1)
        ast2 = parse_program(text)
        diff = ast_diff(ast1, ast2)
        assert diff is None, f"{name}: {diff}"
