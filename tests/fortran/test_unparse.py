"""Unparser tests, including parse→unparse→parse round-trips."""

import dataclasses

import pytest

from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program
from repro.fortran.unparse import unparse


def normalize(node):
    """Structural fingerprint ignoring labels/line numbers/loop label form."""
    if isinstance(node, F.Node):
        fields = []
        for f in dataclasses.fields(node):
            if f.name in ("label", "line", "do_label"):
                continue
            fields.append((f.name, normalize(getattr(node, f.name))))
        return (type(node).__name__, tuple(fields))
    if isinstance(node, list):
        items = [normalize(x) for x in node]
        # terminal CONTINUE of a labeled DO is syntax, not semantics
        items = [x for x in items if x != ("ContinueStmt", ())]
        return tuple(items)
    if isinstance(node, tuple):
        return tuple(normalize(x) for x in node)
    return node


def roundtrip(src):
    ast1 = parse_program(src)
    text = unparse(ast1)
    ast2 = parse_program(text)
    assert normalize(ast1) == normalize(ast2), text
    return text


def test_roundtrip_saxpy():
    roundtrip("""
      subroutine saxpy(n, a, x, y)
      integer n
      real a, x(n), y(n)
      do 10 i = 1, n
         y(i) = y(i) + a * x(i)
   10 continue
      end
""")


def test_roundtrip_control_flow():
    roundtrip("""
      subroutine s(a, b, n)
      integer n
      real a(n), b(n)
      do i = 1, n
         if (a(i) .gt. 0.0) then
            b(i) = sqrt(a(i))
         else if (a(i) .lt. 0.0) then
            b(i) = -a(i)
         else
            b(i) = 0.0
         end if
      end do
      if (n .gt. 100) call other(a, n)
      return
      end
""")


def test_roundtrip_declarations():
    roundtrip("""
      program main
      implicit none
      integer n, m
      parameter (n = 100, m = 50)
      real a(n, m), work(2*n)
      double precision acc
      common /shared/ a
      save acc
      data acc /0.0/
      acc = 0.0d0
      end
""")


def test_roundtrip_goto():
    roundtrip("""
      subroutine conv(x, n)
      integer n
      real x(n)
   10 continue
      if (x(1) .gt. 1.0) goto 20
      x(1) = x(1) * 2.0
      goto 10
   20 continue
      end
""")


def test_parenthesization_preserved():
    src = """
      subroutine s
      x = (a + b) * c
      y = a + b * c
      z = -(a + b)
      w = a - (b - c)
      v = a / (b * c)
      u = (a ** b) ** c
      end
"""
    ast1 = parse_program(src)
    text = unparse(ast1)
    ast2 = parse_program(text)
    from tests.fortran.test_unparse import normalize as _n
    assert _n(ast1) == _n(ast2), text


def test_long_line_continuation():
    terms = " + ".join(f"aa{i}" for i in range(30))
    src = f"      subroutine s\n      x = {terms}\n      end\n"
    ast1 = parse_program(src)
    text = unparse(ast1)
    assert all(len(line) <= 72 for line in text.splitlines())
    assert any(line.startswith("     &") for line in text.splitlines())
    ast2 = parse_program(text)
    assert normalize(ast1) == normalize(ast2)


def test_real_literal_formats():
    text = roundtrip("""
      subroutine s
      x = 1.5
      y = 1.0e-6
      z = 2.5d0
      end
""")
    assert "d" in text  # double-precision spelling survives


def test_array_sections_unparse():
    text = roundtrip("""
      subroutine s(a, b, n)
      real a(n), b(n)
      a(1:n) = b(1:n) * 2.0
      a(1:n:2) = 0.0
      end
""")
    assert "1:n" in text


def test_unparse_statement_directly():
    stmt = F.Assign(target=F.Var("x"), value=F.IntLit(3))
    assert unparse(stmt).strip() == "x = 3"


def test_computed_goto_roundtrip():
    roundtrip("""
      subroutine s(k)
      integer k
      goto (10, 20), k
   10 continue
   20 continue
      end
""")
