"""Unit tests for the fixed-form lexer."""

import pytest

from repro.errors import LexError
from repro.fortran.lexer import lex_source
from repro.fortran.tokens import TokenKind


def kinds(src):
    return [t.kind for t in lex_source(src) if t.kind is not TokenKind.EOF]


def values(src):
    return [t.value for t in lex_source(src)
            if t.kind not in (TokenKind.EOF, TokenKind.NEWLINE)]


def test_simple_statement():
    toks = lex_source("      x = 1")
    assert [t.kind for t in toks] == [
        TokenKind.IDENT, TokenKind.EQUALS, TokenKind.INT,
        TokenKind.NEWLINE, TokenKind.EOF,
    ]


def test_comment_cards_skipped():
    src = "c a comment\nC another\n* starred\n\n      x = 1\n"
    assert values(src) == ["x", "=", "1"]


def test_inline_bang_comment():
    assert values("      x = 1 ! trailing") == ["x", "=", "1"]


def test_label_token():
    toks = lex_source("   10 continue")
    assert toks[0].kind is TokenKind.LABEL
    assert toks[0].value == "10"
    assert toks[1].value == "continue"


def test_continuation_card():
    src = "      x = 1 +\n     &    2\n"
    assert values(src) == ["x", "=", "1", "+", "2"]
    # single logical line → single NEWLINE
    assert kinds(src).count(TokenKind.NEWLINE) == 1


def test_continuation_requires_statement():
    with pytest.raises(LexError):
        lex_source("     & 2\n")


def test_columns_past_72_ignored():
    body = "      x = 1"
    src = body + " " * (72 - len(body)) + "garbage"
    assert values(src) == ["x", "=", "1"]


def test_identifiers_lowercased():
    assert values("      CaMeL = Xyz") == ["camel", "=", "xyz"]


def test_integer_and_real_literals():
    vals = values("      x = 1 + 2.5 + 3. + .5 + 1.e-3 + 2e6")
    assert "2.5" in vals and "3." in vals and ".5" in vals
    assert "1.e-3" in vals and "2e6" in vals


def test_double_literal():
    toks = [t for t in lex_source("      x = 1.5d0")
            if t.kind is TokenKind.DOUBLE]
    assert len(toks) == 1 and toks[0].value == "1.5d0"


def test_real_vs_dot_operator():
    # "1.eq.2" must lex as INT OP INT, not REAL
    vals = [(t.kind, t.value) for t in lex_source("      l = 1.eq.2")
            if t.kind in (TokenKind.INT, TokenKind.OP, TokenKind.REAL)]
    assert vals == [(TokenKind.INT, "1"), (TokenKind.OP, ".eq."),
                    (TokenKind.INT, "2")]


def test_dot_operators():
    vals = values("      l = a .and. b .or. .not. c .eqv. d")
    assert ".and." in vals and ".or." in vals
    assert ".not." in vals and ".eqv." in vals


def test_logical_constants():
    toks = [t for t in lex_source("      l = .true. .or. .false.")
            if t.kind is TokenKind.LOGICAL]
    assert [t.value for t in toks] == [".true.", ".false."]


def test_string_literal_with_escape():
    toks = [t for t in lex_source("      s = 'don''t'")
            if t.kind is TokenKind.STRING]
    assert toks[0].value == "don't"


def test_unterminated_string():
    with pytest.raises(LexError):
        lex_source("      s = 'oops")


def test_power_and_concat_operators():
    assert "**" in values("      x = a ** 2")
    assert "//" in values("      s = a // b")


def test_colon_for_sections():
    vals = values("      a(1:n) = b(1:n:2)")
    assert vals.count(":") == 3


def test_bad_label():
    with pytest.raises(LexError):
        lex_source("  1x3 continue")


def test_line_and_column_positions():
    toks = lex_source("      x = 1\n      y = 2\n")
    xs = [t for t in toks if t.value == "y"]
    assert xs[0].line == 2
    assert xs[0].col == 7


def test_blank_lines_are_comments():
    assert values("\n\n      x = 1\n\n") == ["x", "=", "1"]


def test_dec_tab_convention_warns():
    from repro.fortran.diagnostics import DiagnosticSink
    src = "\tx = 1\n"
    sink = DiagnosticSink(src)
    toks = lex_source(src, sink)
    assert [t.value for t in toks
            if t.kind not in (TokenKind.EOF, TokenKind.NEWLINE)] \
        == ["x", "=", "1"]
    assert [d.code for d in sink.warnings] == ["W201"]


def test_text_past_column_72_warns():
    from repro.fortran.diagnostics import DiagnosticSink
    body = "      x = 1"
    src = body + " " * (72 - len(body)) + "junk\n"
    sink = DiagnosticSink(src)
    lex_source(src, sink)
    w = [d for d in sink.warnings if d.code == "W202"]
    assert len(w) == 1 and w[0].col == 73


def test_lexer_recovery_collects_multiple_errors():
    from repro.fortran.diagnostics import DiagnosticSink
    src = "      x = 1 @ 2\n      y = 'open\n"
    sink = DiagnosticSink(src)
    lex_source(src, sink)
    codes = [d.code for d in sink.errors]
    assert "F001" in codes and "F002" in codes
    for d in sink.errors:
        assert d.line >= 1 and d.col >= 1
