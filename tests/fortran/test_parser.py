"""Unit tests for the Fortran 77 parser."""

import pytest

from repro.errors import ParseError
from repro.fortran import ast_nodes as F
from repro.fortran.parser import parse_program


def sub_body(body_lines, specs=""):
    """Wrap statements into a minimal subroutine and parse it."""
    text = "      subroutine s\n"
    for line in specs.splitlines():
        if line.strip():
            text += "      " + line.strip() + "\n"
    for line in body_lines.splitlines():
        if line.strip():
            stripped = line.strip()
            if stripped[0].isdigit():
                lbl, rest = stripped.split(None, 1)
                text += f"{lbl:>5} {rest}\n"
            else:
                text += "      " + stripped + "\n"
    text += "      end\n"
    sf = parse_program(text)
    return sf.units[0]


def test_program_unit_kinds():
    sf = parse_program(
        "      program main\n      end\n"
        "      subroutine foo(a, b)\n      end\n"
        "      real function bar(x)\n      end\n"
        "      function baz()\n      end\n"
    )
    kinds = [(u.kind, u.name, u.args) for u in sf.units]
    assert kinds == [
        ("program", "main", []),
        ("subroutine", "foo", ["a", "b"]),
        ("function", "bar", ["x"]),
        ("function", "baz", []),
    ]
    assert sf.units[2].result_type.base == "real"


def test_missing_end():
    with pytest.raises(ParseError):
        parse_program("      program main\n      x = 1\n")


def test_assignment_and_expression_tree():
    u = sub_body("x = a + b * c ** 2")
    (stmt,) = u.body
    assert isinstance(stmt, F.Assign)
    add = stmt.value
    assert isinstance(add, F.BinOp) and add.op == "+"
    mul = add.right
    assert isinstance(mul, F.BinOp) and mul.op == "*"
    pw = mul.right
    assert isinstance(pw, F.BinOp) and pw.op == "**"


def test_power_right_associative():
    u = sub_body("x = a ** b ** c")
    pw = u.body[0].value
    assert pw.op == "**"
    assert isinstance(pw.right, F.BinOp) and pw.right.op == "**"


def test_unary_minus():
    u = sub_body("x = -a + b")
    add = u.body[0].value
    assert isinstance(add.left, F.UnOp) and add.left.op == "-"


def test_relational_and_logical():
    u = sub_body("l = a .lt. b .and. .not. c")
    land = u.body[0].value
    assert land.op == ".and."
    assert land.left.op == ".lt."
    assert isinstance(land.right, F.UnOp) and land.right.op == ".not."


def test_apply_is_unresolved():
    u = sub_body("x = f(1, 2) + a(i)")
    add = u.body[0].value
    assert isinstance(add.left, F.Apply) and add.left.name == "f"
    assert isinstance(add.right, F.Apply) and add.right.name == "a"


def test_labeled_do_with_continue():
    u = sub_body("""
        do 10 i = 1, n
        x = x + 1
10      continue
    """)
    (loop,) = u.body
    assert isinstance(loop, F.DoLoop)
    assert loop.var == "i" and loop.do_label == 10
    assert isinstance(loop.body[0], F.Assign)
    assert isinstance(loop.body[1], F.ContinueStmt)
    assert loop.body[1].label == 10


def test_shared_do_termination():
    u = sub_body("""
        do 100 i = 1, n
        do 100 j = 1, m
        x = x + 1
100     continue
    """)
    (outer,) = u.body
    assert isinstance(outer, F.DoLoop) and outer.var == "i"
    inner = outer.body[0]
    assert isinstance(inner, F.DoLoop) and inner.var == "j"
    assert isinstance(inner.body[0], F.Assign)


def test_enddo_form():
    u = sub_body("""
        do i = 1, n, 2
          x = x + i
        end do
    """)
    (loop,) = u.body
    assert isinstance(loop, F.DoLoop)
    assert loop.step is not None and loop.step.value == 2


def test_nested_enddo():
    u = sub_body("""
        do i = 1, n
          do j = 1, m
            a = a + 1
          enddo
        end do
    """)
    outer = u.body[0]
    inner = outer.body[0]
    assert isinstance(inner, F.DoLoop) and inner.var == "j"


def test_block_if_with_arms():
    u = sub_body("""
        if (a .gt. 0) then
          x = 1
        else if (a .lt. 0) then
          x = -1
        else
          x = 0
        end if
    """)
    (blk,) = u.body
    assert isinstance(blk, F.IfBlock)
    assert len(blk.arms) == 3
    assert blk.arms[0][0] is not None
    assert blk.arms[1][0] is not None
    assert blk.arms[2][0] is None


def test_logical_if():
    u = sub_body("if (a .gt. b) a = b")
    (stmt,) = u.body
    assert isinstance(stmt, F.LogicalIf)
    assert isinstance(stmt.stmt, F.Assign)


def test_logical_if_goto():
    u = sub_body("if (x .eq. 0) goto 99\n99 continue")
    assert isinstance(u.body[0], F.LogicalIf)
    assert isinstance(u.body[0].stmt, F.Goto)
    assert u.body[0].stmt.target == 99


def test_goto_and_computed_goto():
    u = sub_body("""
        goto 10
10      continue
        goto (10, 20, 30), k
20      continue
30      continue
    """)
    assert isinstance(u.body[0], F.Goto)
    cg = u.body[2]
    assert isinstance(cg, F.ComputedGoto)
    assert cg.targets == [10, 20, 30]


def test_call_statement():
    u = sub_body("call work(a, b(i), 3)")
    (c,) = u.body
    assert isinstance(c, F.CallStmt) and c.name == "work"
    assert len(c.args) == 3


def test_call_no_args():
    u = sub_body("call init")
    assert isinstance(u.body[0], F.CallStmt)
    assert u.body[0].args == []


def test_return_stop_print():
    u = sub_body("""
        print *, x, y
        stop
        return
    """)
    assert isinstance(u.body[0], F.PrintStmt)
    assert len(u.body[0].items) == 2
    assert isinstance(u.body[1], F.StopStmt)
    assert isinstance(u.body[2], F.ReturnStmt)


def test_declarations():
    u = sub_body("x = 1", specs="""
        implicit none
        integer n, m
        real a(10), b(n, m)
        double precision d
        dimension c(5)
        common /blk/ p, q(4)
        parameter (k = 3)
        save a
    """)
    specs = {type(s).__name__ for s in u.specs}
    assert specs >= {"ImplicitStmt", "TypeDecl", "DimensionStmt",
                     "CommonStmt", "ParameterStmt", "SaveStmt"}
    decl = [s for s in u.specs if isinstance(s, F.TypeDecl)
            and s.type.base == "real"][0]
    assert decl.entities[0].name == "a"
    assert len(decl.entities[0].dims) == 1
    assert decl.entities[1].name == "b"
    assert len(decl.entities[1].dims) == 2


def test_dimension_with_bounds():
    u = sub_body("x = 1", specs="real a(0:10, -1:5)")
    decl = u.specs[0]
    dims = decl.entities[0].dims
    assert dims[0].lower.value == 0
    assert dims[1].lower is not None


def test_array_section_args():
    u = sub_body("a(1:n) = b(1:n) + c(i, 1:n:2)")
    stmt = u.body[0]
    sec = stmt.target.args[0]
    assert isinstance(sec, F.RangeExpr)
    c = stmt.value.right
    assert isinstance(c.args[1], F.RangeExpr)
    assert c.args[1].stride is not None


def test_data_statement():
    u = sub_body("x = 1", specs="data a, b /1.0, 2.0/")
    data = [s for s in u.specs if isinstance(s, F.DataStmt)][0]
    assert len(data.names) == 2 and len(data.values) == 2


def test_equivalence_statement():
    u = sub_body("x = 1", specs="equivalence (a, b), (c(1), d)")
    eq = [s for s in u.specs if isinstance(s, F.EquivalenceStmt)][0]
    assert len(eq.groups) == 2


def test_clone_is_deep():
    u = sub_body("do i = 1, n\n a(i) = 0\n end do")
    loop = u.body[0]
    copy = loop.clone()
    copy.body[0].target.name = "zz"
    assert loop.body[0].target.name == "a"


def test_walk_visits_all():
    u = sub_body("a(i) = b(i) + 1")
    names = [n.name for n in u.body[0].walk() if isinstance(n, F.Apply)]
    assert set(names) == {"a", "b"}


# -- expanded statement surface --------------------------------------------


def test_common_statement():
    u = sub_body("x = 1", specs="common /blk/ a, b(10)\ncommon c")
    commons = [s for s in u.specs if isinstance(s, F.CommonStmt)]
    assert len(commons) == 2
    assert commons[0].block == "blk"
    assert commons[1].block == ""  # blank common
    assert commons[0].entities[1].dims[0].upper.value == 10


def test_save_statement_forms():
    u = sub_body("x = 1", specs="save a, /blk/\nsave")
    saves = [s for s in u.specs if isinstance(s, F.SaveStmt)]
    assert saves[0].names == ["a", "/blk/"]
    assert saves[1].names == []


def test_external_intrinsic():
    u = sub_body("x = f(1)", specs="external f, g\nintrinsic sqrt")
    ext = [s for s in u.specs if isinstance(s, F.ExternalStmt)][0]
    intr = [s for s in u.specs if isinstance(s, F.IntrinsicStmt)][0]
    assert ext.names == ["f", "g"]
    assert intr.names == ["sqrt"]


def test_entry_statement():
    u = sub_body("x = 1\nentry other(a, b)\nx = 2")
    entries = [s for s in u.body if isinstance(s, F.EntryStmt)]
    assert entries[0].name == "other"
    assert entries[0].args == ["a", "b"]


def test_data_repeat_counts():
    u = sub_body("x = 1", specs="data a /3*0.0/, i /2/")
    d = [s for s in u.specs if isinstance(s, F.DataStmt)][0]
    assert [v.name for v in d.names] == ["a", "i"]
    rep = d.values[0]  # 3*0.0 repeat count
    assert isinstance(rep, F.BinOp) and rep.op == "*"
    assert rep.left.value == 3
    assert d.values[1].value == 2


def test_format_statement_raw_spec():
    u = sub_body("write (*, 10) x\n10 format (i6, 2x, f8.3)")
    fmts = [s for s in u.body if isinstance(s, F.FormatStmt)]
    assert len(fmts) == 1
    assert fmts[0].label == 10
    assert "i6" in fmts[0].spec


def test_assigned_goto():
    u = sub_body("assign 10 to lbl\ngoto lbl, (10, 20)\n"
                 "10 continue\n20 continue")
    asg = [s for s in u.body if isinstance(s, F.AssignLabelStmt)][0]
    agt = [s for s in u.body if isinstance(s, F.AssignedGoto)][0]
    assert (asg.target, asg.var) == (10, "lbl")
    assert (agt.var, agt.targets) == ("lbl", [10, 20])


def test_io_statements_full_set():
    u = sub_body(
        "open (unit=7, file='x.dat', err=90)\n"
        "read (7, 10, end=90) a, b\n"
        "write (7, fmt=10) a\n"
        "rewind 7\n"
        "backspace (7)\n"
        "inquire (file='x.dat', exist=ok)\n"
        "close (7)\n"
        "10 format (2f8.2)\n"
        "90 continue")
    kinds = [s.kind for s in u.body if isinstance(s, F.IoStmt)]
    assert kinds == ["open", "read", "write", "rewind", "backspace",
                     "inquire", "close"]
    rd = [s for s in u.body if isinstance(s, F.IoStmt)][1]
    assert [c.keyword for c in rd.controls] == [None, None, "end"]
    assert [v.name for v in rd.items] == ["a", "b"]


def test_print_and_write_star_stay_legacy():
    u = sub_body("print *, x\nwrite (*, *) y\nread *, z")
    assert isinstance(u.body[0], F.PrintStmt)
    assert isinstance(u.body[1], F.PrintStmt)
    assert isinstance(u.body[2], F.ReadStmt)


def test_print_with_format_label_is_iostmt():
    u = sub_body("print 10, x\n10 format (i6)")
    io = [s for s in u.body if isinstance(s, F.IoStmt)][0]
    assert io.kind == "print"
    assert io.controls[0].value.value == 10


def test_write_vs_assignment_disambiguation():
    # write(i) = ... is an assignment to an array named write
    u = sub_body("write(i) = 1.0", specs="real write(10)")
    assert isinstance(u.body[0], F.Assign)


# -- recovery with a sink ---------------------------------------------------


def test_recovery_continues_after_bad_statement():
    from repro.fortran.diagnostics import DiagnosticSink
    src = ("      subroutine s\n"
           "      x = ((1\n"
           "      y = 2\n"
           "      end\n")
    sink = DiagnosticSink(src)
    sf = parse_program(src, sink)
    assert sink.error_count == 1
    # the statement after the bad one still parsed
    assert any(isinstance(s, F.Assign) and s.target.name == "y"
               for s in sf.units[0].body)


def test_recovery_missing_end_f103():
    from repro.fortran.diagnostics import DiagnosticSink
    src = "      program p\n      x = 1\n"
    sink = DiagnosticSink(src)
    sf = parse_program(src, sink)
    assert [d.code for d in sink.errors] == ["F103"]
    assert sink.errors[0].line >= 1
    assert len(sf.units) == 1


def test_recovery_unbalanced_block_f104():
    from repro.fortran.diagnostics import DiagnosticSink
    src = ("      program p\n"
           "      do i = 1, 5\n"
           "      x = i\n"
           "      end\n")
    sink = DiagnosticSink(src)
    sf = parse_program(src, sink)
    assert "F104" in [d.code for d in sink.errors]
    # the loop body was still attached
    assert isinstance(sf.units[0].body[0], F.DoLoop)
