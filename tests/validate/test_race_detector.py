"""Dynamic race detector tests.

The detector must flag exactly the accesses the planner failed to
discharge: a deliberately un-privatized scalar races, while privatized
scalars, recognized reductions and lock-protected critical sections all
stay quiet.
"""

import numpy as np

from repro.api import restructure
from repro.cedar.nodes import ParallelDo
from repro.execmodel.interp import Interpreter
from repro.execmodel.shadow import ShadowRecorder
from repro.execmodel.values import Scope
from repro.fortran.parser import parse_program
from repro.restructurer.options import RestructurerOptions
from repro.validate.configs import options_for_stages
from repro.workloads import validation_cases


def find_pdos(sf):
    return [node for u in sf.units for s in u.body
            for node in s.walk() if isinstance(node, ParallelDo)]


def run_with_shadow(cedar, entry, *args, processors=4):
    sh = ShadowRecorder()
    Interpreter(cedar, processors=processors, shadow=sh).call(entry, *args)
    return sh


PRIVATE_SCALAR_SRC = """
      subroutine s(n, a, b)
      integer n
      real a(n), b(n)
      real t
      integer i
      do i = 1, n
         t = a(i) * 2.0
         b(i) = t + 1.0
      end do
      end
"""


class TestPrivatization:
    def _restructured(self):
        # privatization only: the loop stays element-wise (the full
        # manual pipeline would vectorize and scalar-expand t instead)
        opts = options_for_stages(["scalar-privatization"])
        cedar, _ = restructure(parse_program(PRIVATE_SCALAR_SRC), opts)
        pdos = find_pdos(cedar)
        assert pdos, "the test loop must parallelize"
        assert pdos[0].locals_, "t must be privatized"
        return cedar, pdos[0]

    def test_privatized_scalar_is_quiet(self):
        cedar, _ = self._restructured()
        sh = run_with_shadow(cedar, "s", 16, np.ones(16), np.zeros(16))
        assert sh.loops_checked == 1
        assert sh.conflicts == []

    def test_unprivatized_scalar_is_flagged(self):
        # Deliberately strip the privatization the planner proved
        # necessary: t becomes shared and every iteration writes it.
        cedar, pdo = self._restructured()
        pdo.locals_.clear()
        sh = run_with_shadow(cedar, "s", 16, np.ones(16), np.zeros(16))
        assert sh.conflicts, "shared t must race"
        c = sh.conflicts[0]
        assert c.var == "t"
        assert c.kind in ("write-write", "read-write")
        assert c.iterations[0] != c.iterations[1]

    def test_conflict_survives_into_report_dict(self):
        cedar, pdo = self._restructured()
        pdo.locals_.clear()
        sh = run_with_shadow(cedar, "s", 16, np.ones(16), np.zeros(16))
        d = sh.to_dict()
        assert d["loops_checked"] == 1
        assert d["conflicts"][0]["var"] == "t"


REDUCTION_SRC = """
      subroutine s(n, a, b, total)
      integer n
      real a(n), b(n), total
      integer i
      total = 0.0
      do i = 1, n
         b(i) = a(i) * a(i)
         total = total + b(i)
      end do
      end
"""


class TestReduction:
    def test_recognized_reduction_is_quiet(self):
        # The partials live in worker-local storage; the lock-protected
        # combine runs in the synchronized postamble.  Neither may be
        # reported.  (A bare sum loop would become a library call, so
        # the reduction rides along with independent per-element work.)
        cedar, _ = restructure(parse_program(REDUCTION_SRC),
                               RestructurerOptions.manual())
        assert find_pdos(cedar), "the reduction loop must parallelize"
        sh = run_with_shadow(cedar, "s", 64, np.ones(64), np.zeros(64), 0.0)
        assert sh.loops_checked >= 1
        assert sh.conflicts == []


class TestCriticalSection:
    def test_track_critical_section_is_quiet(self):
        # TRACK's hits-list append runs under lock(crit): the counter
        # updates conflict textually but share the lock.
        case = validation_cases()["TRACK"]
        cedar, _ = restructure(parse_program(case.source),
                               RestructurerOptions.manual())
        args, _ = case.make_args(256, np.random.default_rng(7))
        sh = ShadowRecorder()
        Interpreter(cedar, processors=4, shadow=sh).call(case.entry, *args)
        assert sh.loops_checked >= 1
        assert sh.conflicts == []


class TestShadowRecorderUnit:
    """Direct API tests pinning the cell-keying semantics."""

    def _loop(self):
        sh = ShadowRecorder()
        root = Scope()
        root.declare("m", 64)
        root.declare("nhit", 0)
        ctx = sh.open_loop("do i @ test")
        sh.begin_worker(ctx, Scope(parent=root))
        return sh, ctx, root

    def test_scalars_in_one_scope_get_distinct_cells(self):
        # Regression: cells used to be keyed by the containing scope
        # alone, so a read-only loop bound (m) collapsed into the same
        # cell as a lock-protected counter (nhit) and "raced" with it.
        sh, ctx, root = self._loop()
        for it in (1, 2):
            sh.begin_iteration(ctx, it)
            sh.record_scalar(root, "m", "r")       # unlocked read
            sh.acquire("crit")
            sh.record_scalar(root, "nhit", "w")    # locked write
            sh.release("crit")
        sh.close_loop(ctx)
        assert sh.conflicts == []

    def test_unlocked_scalar_write_still_races(self):
        sh, ctx, root = self._loop()
        for it in (1, 2):
            sh.begin_iteration(ctx, it)
            sh.record_scalar(root, "m", "r")
            sh.record_scalar(root, "nhit", "w")    # no lock this time
        sh.close_loop(ctx)
        assert [c.var for c in sh.conflicts] == ["nhit"]
        assert sh.conflicts[0].kind == "write-write"

    def test_distinct_locks_do_not_serialize(self):
        sh, ctx, root = self._loop()
        for it, lock in ((1, "crit_a"), (2, "crit_b")):
            sh.begin_iteration(ctx, it)
            sh.acquire(lock)
            sh.record_scalar(root, "nhit", "w")
            sh.release(lock)
        sh.close_loop(ctx)
        assert [c.var for c in sh.conflicts] == ["nhit"]

    def test_same_iteration_never_conflicts(self):
        sh, ctx, root = self._loop()
        sh.begin_iteration(ctx, 5)
        sh.record_scalar(root, "nhit", "w")
        sh.record_scalar(root, "nhit", "w")
        sh.record_scalar(root, "nhit", "r")
        sh.close_loop(ctx)
        assert sh.conflicts == []

    def test_worker_local_scalar_is_private(self):
        sh, ctx, root = self._loop()
        wscope = ctx.wscope
        wscope.declare("t", 0.0)
        for it in (1, 2):
            sh.begin_iteration(ctx, it)
            sh.record_scalar(wscope, "t", "w")
        sh.close_loop(ctx)
        assert sh.conflicts == []

    def test_suspended_accesses_are_skipped(self):
        sh, ctx, root = self._loop()
        sh.begin_iteration(ctx, 1)
        sh.suspend(ctx)
        sh.record_scalar(root, "nhit", "w")
        sh.resume(ctx)
        sh.begin_iteration(ctx, 2)
        sh.record_scalar(root, "nhit", "w")
        sh.close_loop(ctx)
        assert sh.conflicts == []


class TestArrayCells:
    def _arr(self, n=8):
        from repro.execmodel.values import FArray
        return FArray(data=np.zeros(n), lowers=(1,))

    def _loop(self):
        sh = ShadowRecorder()
        ctx = sh.open_loop("do i @ test")
        sh.begin_worker(ctx, Scope(parent=Scope()))
        return sh, ctx

    def test_same_element_different_iterations_race(self):
        sh, ctx = self._loop()
        a = self._arr()
        sh.begin_iteration(ctx, 1)
        sh.record_array(a, "a", "w", idx=(3,))
        sh.begin_iteration(ctx, 2)
        sh.record_array(a, "a", "w", idx=(3,))
        sh.close_loop(ctx)
        assert sh.conflicts and sh.conflicts[0].var == "a"
        assert sh.conflicts[0].element == (3,)

    def test_disjoint_elements_do_not_race(self):
        sh, ctx = self._loop()
        a = self._arr()
        sh.begin_iteration(ctx, 1)
        sh.record_array(a, "a", "w", idx=(1,))
        sh.begin_iteration(ctx, 2)
        sh.record_array(a, "a", "w", idx=(2,))
        sh.close_loop(ctx)
        assert sh.conflicts == []

    def test_aliased_names_share_cells(self):
        # two FArray views over the same storage must collide even when
        # accessed under different names (argument aliasing)
        from repro.execmodel.values import FArray
        sh, ctx = self._loop()
        data = np.zeros(8)
        a = FArray(data=data, lowers=(1,))
        b = FArray(data=data, lowers=(1,))
        sh.begin_iteration(ctx, 1)
        sh.record_array(a, "a", "w", idx=(3,))
        sh.begin_iteration(ctx, 2)
        sh.record_array(b, "b", "w", idx=(3,))
        sh.close_loop(ctx)
        assert len(sh.conflicts) == 1

    def test_section_overlap_races(self):
        sh, ctx = self._loop()
        a = self._arr()
        sh.begin_iteration(ctx, 1)
        sh.record_array(a, "a", "w", specs=[(1, 4, None)])
        sh.begin_iteration(ctx, 2)
        sh.record_array(a, "a", "w", specs=[(4, 8, None)])
        sh.close_loop(ctx)
        assert sh.conflicts and sh.conflicts[0].element == (4,)

    def test_wide_section_coarsens_to_supercell(self):
        sh, ctx = self._loop()
        from repro.execmodel.values import FArray
        big = FArray(data=np.zeros(ShadowRecorder.expand_cap + 1),
                     lowers=(1,))
        sh.begin_iteration(ctx, 1)
        sh.record_array(big, "big", "w")          # whole array, coarse
        sh.begin_iteration(ctx, 2)
        sh.record_array(big, "big", "w", idx=(5,))
        sh.close_loop(ctx)
        assert sh.conflicts, "a supercell write conflicts with any element"


class TestDoacrossExcluded:
    def test_doacross_loops_are_not_checked(self):
        # ordered loops synchronize their carried dependences with
        # await/advance; the detector must not second-guess them
        src = """
      subroutine s(n, a, b, c)
      integer n
      real a(n), b(n), c(n)
      integer i
      do i = 2, n
         b(i) = sqrt(abs(a(i))) + a(i) * a(i) + exp(a(i) * 0.01)
         c(i) = c(i - 1) + b(i)
      end do
      end
"""
        cedar, _ = restructure(parse_program(src),
                               options_for_stages(["doacross"]))
        pdos = find_pdos(cedar)
        assert [p.order for p in pdos] == ["doacross"]
        sh = run_with_shadow(cedar, "s", 32, np.ones(32), np.zeros(32),
                             np.zeros(32))
        assert sh.loops_checked == 0
        assert sh.conflicts == []
