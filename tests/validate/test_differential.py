"""Differential validation: comparison, bisection, reports, CLI."""

import json
import sys

import numpy as np
import pytest

from repro.restructurer.pipeline import PASS_STAGES, stages_for
from repro.restructurer.options import RestructurerOptions
from repro.validate import (
    PIPELINE_CONFIGS,
    baseline_options,
    bisect_stages,
    build_report,
    compare_outputs,
    options_for_stages,
    validate_workload,
)
from repro.validate import differential
from repro.workloads import validation_cases


def _script_validator():
    sys.path.insert(0, "scripts")
    try:
        import validate_experiment_json as v
    finally:
        sys.path.pop(0)
    return v


class TestCompareOutputs:
    def test_identical_results_are_clean(self):
        base = {"x": np.arange(5.0), "n": 5}
        assert compare_outputs(base, dict(base)) == []

    def test_float_within_tolerance_is_clean(self):
        base = {"x": np.ones(4)}
        cand = {"x": np.ones(4) + 1e-6}
        assert compare_outputs(base, cand) == []

    def test_float_divergence_reported(self):
        base = {"x": np.ones(4)}
        cand = {"x": np.array([1.0, 1.0, 2.0, 1.0])}
        divs = compare_outputs(base, cand, processors=4, seed=9)
        assert len(divs) == 1
        d = divs[0]
        assert d.key == "x" and d.mismatches == 1
        assert d.max_abs == pytest.approx(1.0)
        assert d.processors == 4 and d.seed == 9

    def test_integers_compared_exactly(self):
        base = {"k": np.array([1, 2, 3])}
        cand = {"k": np.array([1, 2, 4])}
        divs = compare_outputs(base, cand)
        assert divs and divs[0].mismatches == 1
        # even a tiny integer delta is a divergence, no tolerance
        assert compare_outputs(base, {"k": np.array([1, 2, 3])}) == []

    def test_permutation_ok_sorts_before_comparing(self):
        base = {"hits": np.array([3, 1, 2])}
        cand = {"hits": np.array([2, 3, 1])}
        assert compare_outputs(base, cand) != []
        assert compare_outputs(base, cand, permutation_ok=True) == []

    def test_shape_mismatch_is_divergent(self):
        base = {"x": np.ones(4)}
        cand = {"x": np.ones(3)}
        divs = compare_outputs(base, cand)
        assert divs and divs[0].max_abs == float("inf")

    def test_scalar_results_compared(self):
        assert compare_outputs({"s": 2.0}, {"s": 2.0}) == []
        assert compare_outputs({"s": 2.0}, {"s": 3.0}) != []


class TestConfigs:
    def test_baseline_disables_every_stage(self):
        assert stages_for(baseline_options()) == []

    def test_options_for_stages_round_trips(self):
        labels = [label for label, _ in PASS_STAGES]
        assert stages_for(options_for_stages(labels)) == labels
        some = ["reduction-recognition", "scalar-privatization"]
        assert stages_for(options_for_stages(some)) == some

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            options_for_stages(["no-such-pass"])

    def test_pipeline_configs_cover_auto_and_manual(self):
        assert set(PIPELINE_CONFIGS) == {"automatic", "manual"}
        for factory in PIPELINE_CONFIGS.values():
            assert isinstance(factory(), RestructurerOptions)


class TestBisection:
    def test_clean_workload_bisects_to_none(self):
        case = validation_cases()["tridag"]
        stages = stages_for(RestructurerOptions.manual())
        assert bisect_stages(case, stages, seed=3, processors=2) is None

    def test_bisection_names_the_guilty_stage(self, monkeypatch):
        # fake a pipeline where enabling loop-fusion corrupts x: the
        # bisector must name it without knowing anything else
        case = validation_cases()["tridag"]
        stages = stages_for(RestructurerOptions.manual())
        guilty = "loop-fusion"
        assert guilty in stages

        monkeypatch.setattr(differential, "run_baseline",
                            lambda case, seed, **kw: {"x": np.ones(4)})

        def fake_variant(case, options, seed, processors, shadow=None,
                         **kw):
            bad = options.loop_fusion
            out = {"x": np.full(4, 2.0) if bad else np.ones(4)}
            return out, None

        monkeypatch.setattr(differential, "run_variant", fake_variant)
        got = bisect_stages(case, stages, seed=3, processors=2)
        assert got == guilty

    def test_divergent_base_parallelization_named(self, monkeypatch):
        case = validation_cases()["tridag"]
        stages = stages_for(RestructurerOptions.manual())
        monkeypatch.setattr(differential, "run_baseline",
                            lambda case, seed, **kw: {"x": np.ones(4)})
        monkeypatch.setattr(
            differential, "run_variant",
            lambda case, options, seed, processors, shadow=None, **kw:
            ({"x": np.zeros(4)}, None))
        got = bisect_stages(case, stages, seed=3, processors=2)
        assert got == "base-parallelization"


class TestValidateWorkload:
    @pytest.fixture(scope="class")
    def result(self):
        case = validation_cases()["tridag"]
        return validate_workload(
            case, {n: PIPELINE_CONFIGS[n] for n in ("automatic", "manual")},
            seeds=(3,), processors=(2,))

    def test_small_workload_validates_clean(self, result):
        assert result.ok
        for c in result.configs:
            assert c.status == "ok"
            assert c.divergences == [] and c.races == []
            assert c.compared_keys, "must compare at least one result key"

    def test_report_conforms_to_schema_checker(self, result):
        payload = build_report([result], configs=["automatic", "manual"])
        payload = json.loads(json.dumps(payload))  # as CI would read it
        v = _script_validator()
        assert v.validate(payload) == []

    def test_checker_rejects_inconsistent_status(self, result):
        payload = json.loads(json.dumps(
            build_report([result], configs=["automatic", "manual"])))
        v = _script_validator()
        broken = json.loads(json.dumps(payload))
        broken["workloads"][0]["configs"][0]["status"] = "race"
        problems = v.validate(broken)
        assert any("without any conflict" in p for p in problems)
        broken = json.loads(json.dumps(payload))
        broken["summary"]["ok"] += 1
        problems = v.validate(broken)
        assert any("recount" in p for p in problems)


class TestCli:
    def test_cli_runs_one_workload_clean(self, capsys, tmp_path):
        from repro.validate.__main__ import main
        out = tmp_path / "v.json"
        rc = main(["tridag", "--processors", "2", "-o", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-validate/1"
        assert payload["summary"]["ok"] == payload["summary"]["configs_run"]
        v = _script_validator()
        assert v.validate(payload) == []

    def test_cli_rejects_unknown_workload(self):
        from repro.validate.__main__ import main
        with pytest.raises(SystemExit):
            main(["no-such-workload"])
