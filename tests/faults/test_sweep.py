"""Degradation oracle: payload shape, invariants, schema conformance."""

import importlib.util
import pathlib

import pytest

from repro.errors import ReproError
from repro.faults.harness import SweepJournal
from repro.faults.sweep import CHECKS, SCHEMA_TAG, run_sweep

_REPO = pathlib.Path(__file__).resolve().parents[2]


def _load_validator():
    spec = importlib.util.spec_from_file_location(
        "validate_experiment_json",
        _REPO / "scripts" / "validate_experiment_json.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def payload():
    return run_sweep(["cg", "cascade"],
                     ["healthy", "dead-ce", "lost-sync", "chaos"],
                     quick=True, timeout=120.0)


class TestPayload:
    def test_all_cells_pass(self, payload):
        s = payload["summary"]
        assert s["cells_run"] == s["cells_expected"] == 8
        assert s["failed"] == 0 and s["harness_faults"] == 0
        assert all(r["ok"] for r in payload["runs"])

    def test_schema_tag_and_shape(self, payload):
        assert payload["schema"] == SCHEMA_TAG
        assert set(payload["scenarios"]) == {"healthy", "dead-ce",
                                             "lost-sync", "chaos"}
        for r in payload["runs"]:
            assert set(r["checks"]) == set(CHECKS)

    def test_conforms_to_validator(self, payload):
        validator = _load_validator()
        assert validator.validate(payload) == []

    def test_lost_sync_fires_on_cascade(self, payload):
        cell = next(r for r in payload["runs"]
                    if (r["workload"], r["scenario"]) == ("cascade",
                                                          "lost-sync"))
        assert cell["sync_retries"] > 0
        assert cell["degradation"] > 1.0

    def test_healthy_cells_are_bit_identical(self, payload):
        for r in payload["runs"]:
            if r["scenario"] == "healthy":
                assert r["faulted_cycles"] == r["healthy_cycles"]
                assert r["fault_cycles"] == 0.0
                assert r["injected_faults"] == 0

    def test_chaos_degrades_every_workload(self, payload):
        # chaos includes memory degradation, which inflates every
        # workload's memory traffic — no workload escapes it
        for r in payload["runs"]:
            if r["scenario"] == "chaos":
                assert r["faulted_cycles"] > r["healthy_cycles"]
                assert r["fault_cycles"] > 0.0
                assert r["injected_faults"] > 0

    def test_dead_ce_degrades_selfscheduled_doalls(self, payload):
        # cg's multi-worker DOALLs redistribute over the survivors at a
        # cost; cascade's DOACROSS is serial-chain bound, so losing one
        # CE legitimately costs nothing there
        cell = next(r for r in payload["runs"]
                    if (r["workload"], r["scenario"]) == ("cg", "dead-ce"))
        assert cell["faulted_cycles"] > cell["healthy_cycles"]
        assert cell["fault_cycles"] > 0.0
        assert cell["survivors"] == 7


class TestSweepHarness:
    def test_unknown_workload_raises(self):
        with pytest.raises(ReproError, match="unknown workload"):
            run_sweep(["not-a-workload"], ["healthy"], quick=True)

    def test_journal_resume_skips_completed(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        first = run_sweep(["tridag"], ["healthy", "dead-ce"], quick=True,
                          journal=journal)
        assert first["summary"]["cells_run"] == 2
        resumed: list[str] = []
        second = run_sweep(["tridag"], ["healthy", "dead-ce"], quick=True,
                           journal=SweepJournal(tmp_path / "j.jsonl"),
                           progress=resumed.append)
        assert second["summary"]["cells_run"] == 2
        assert second["runs"] == first["runs"]
        assert any("resumed from journal" in m for m in resumed)
