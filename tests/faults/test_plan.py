"""FaultPlan: validation, determinism, no-deadlock, (de)serialization."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults.plan import (FaultPlan, QUICK_SCENARIOS, SCENARIO_SPECS,
                               all_scenarios, scenario)


class TestValidation:
    def test_defaults_are_inactive(self):
        p = FaultPlan()
        assert not p.active
        assert not p.degrades_workers
        assert not p.degrades_scheduling

    @pytest.mark.parametrize("kwargs", [
        {"cluster_slowdown": 0.5},
        {"memory_degradation": 0.9},
        {"bandwidth_factor": 0.0},
        {"bandwidth_factor": 1.5},
        {"lost_sync_rate": -0.1},
        {"lost_sync_rate": 1.1},
        {"death_cycle": -1.0},
        {"helper_delay": -5.0},
        {"dead_ces": (-1,)},
        {"ce_slowdown": ((0, 0.5),)},
        {"ce_slowdown": ((-2, 2.0),)},
    ])
    def test_malformed_plans_rejected(self, kwargs):
        with pytest.raises(FaultInjectionError):
            FaultPlan(**kwargs)

    def test_every_knob_activates(self):
        for kwargs in [{"dead_ces": (1,)}, {"ce_slowdown": ((0, 2.0),)},
                       {"cluster_slowdown": 1.5},
                       {"memory_degradation": 2.0},
                       {"bandwidth_factor": 0.5},
                       {"prefetch_disabled": True},
                       {"lost_sync_rate": 0.1}, {"helper_delay": 10.0}]:
            assert FaultPlan(**kwargs).active, kwargs


class TestSurvivors:
    def test_no_deadlock_even_if_all_die(self):
        p = FaultPlan(dead_ces=tuple(range(8)))
        assert len(p.survivors(8)) >= 1
        for n in range(1, 12):
            assert len(FaultPlan(dead_ces=tuple(range(16))).survivors(n)) >= 1

    def test_survivors_excludes_dead(self):
        p = FaultPlan(dead_ces=(1, 3))
        assert p.survivors(4) == [0, 2]
        # dead index beyond p is irrelevant
        assert FaultPlan(dead_ces=(9,)).survivors(4) == [0, 1, 2, 3]

    def test_speed_factor_composes(self):
        p = FaultPlan(cluster_slowdown=2.0, ce_slowdown=((1, 3.0),))
        assert p.speed_factor(0) == 2.0
        assert p.speed_factor(1) == 6.0
        assert p.max_speed_factor(2) == 6.0


class TestDeterminism:
    def test_sync_lost_is_stateless_and_stable(self):
        p = FaultPlan(lost_sync_rate=0.3, seed=42)
        draws = [p.sync_lost(i) for i in range(200)]
        assert draws == [p.sync_lost(i) for i in range(200)]
        assert any(draws) and not all(draws)

    def test_sync_lost_rate_extremes(self):
        assert not any(FaultPlan(lost_sync_rate=0.0).sync_lost(i)
                       for i in range(50))
        assert all(FaultPlan(lost_sync_rate=1.0).sync_lost(i)
                   for i in range(50))

    def test_different_seeds_differ(self):
        a = [FaultPlan(lost_sync_rate=0.5, seed=1).sync_lost(i)
             for i in range(100)]
        b = [FaultPlan(lost_sync_rate=0.5, seed=2).sync_lost(i)
             for i in range(100)]
        assert a != b

    def test_sample_is_deterministic_and_valid(self):
        for seed in range(20):
            p = FaultPlan.sample(seed)
            assert p == FaultPlan.sample(seed)
            assert len(p.survivors(8)) >= 1
            assert p.degradation_bound(8) >= 1.0


class TestSerialization:
    def test_round_trip(self):
        for name in SCENARIO_SPECS:
            p = scenario(name)
            assert FaultPlan.from_dict(p.to_dict()) == p

    def test_unknown_field_rejected(self):
        d = FaultPlan().to_dict()
        d["cosmic_rays"] = True
        with pytest.raises(FaultInjectionError, match="cosmic_rays"):
            FaultPlan.from_dict(d)

    def test_renamed(self):
        p = scenario("chaos").renamed("chaos-2")
        assert p.name == "chaos-2"
        assert p.dead_ces == scenario("chaos").dead_ces


class TestScenarios:
    def test_unknown_scenario(self):
        with pytest.raises(FaultInjectionError, match="unknown fault"):
            scenario("meteor-strike")

    def test_quick_is_a_subset(self):
        assert set(QUICK_SCENARIOS) <= set(SCENARIO_SPECS)
        assert "healthy" in QUICK_SCENARIOS

    def test_all_scenarios_shapes(self):
        full = all_scenarios()
        quick = all_scenarios(quick=True)
        assert set(full) == set(SCENARIO_SPECS)
        assert set(quick) == set(QUICK_SCENARIOS)
        assert not full["healthy"].active
        for name, plan in full.items():
            if name != "healthy":
                assert plan.active, name


class TestBound:
    def test_healthy_bound_is_slack_only(self):
        assert FaultPlan().degradation_bound(8) == pytest.approx(1.25)

    def test_bound_covers_each_knob(self):
        base = FaultPlan().degradation_bound(8)
        for kwargs in [{"dead_ces": (1, 2)}, {"cluster_slowdown": 2.0},
                       {"memory_degradation": 3.0},
                       {"bandwidth_factor": 0.5},
                       {"prefetch_disabled": True},
                       {"lost_sync_rate": 0.5}, {"helper_delay": 400.0}]:
            assert FaultPlan(**kwargs).degradation_bound(8) > base, kwargs
