"""Property tests: LoopScheduler reconciliation invariants under faults.

The profiler/tracer contracts must survive *every* fault plan, not just
the healthy machine: for any sampled :class:`FaultPlan` and loop shape,

- the critical-path decomposition still sums to ``total_time`` exactly
  (``startup + dispatch + sync + body + pre_post + fault``),
- timeline busy-span durations still sum to ``busy_time`` and no span
  leaks outside the loop's ``[0, total]`` window,
- the ledger's ``fault`` category equals the timing's ``fault_cycles``,
- degradation is monotone (a faulted loop is never faster than healthy),
- and an *inactive* plan is bit-identical to running with no injector.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan
from repro.machine.config import cedar_config1, cedar_config2
from repro.machine.scheduler import LoopScheduler
from repro.prof.timeline import TimelineRecorder
from repro.trace.ledger import CycleLedger

REL = 1e-9


def run_with_plan(plan, cfg, level, order, trips, iter_cost, chunk=1,
                  preamble=0.0, postamble=0.0):
    """One scheduler call under ``plan`` with ledger + timeline attached."""
    ledger = CycleLedger()
    tl = TimelineRecorder()
    injector = FaultInjector(plan) if plan is not None else None
    sched = LoopScheduler(cfg, faults=injector)
    timing = sched.run(level, order, trips, iter_cost, chunk=chunk,
                       preamble=preamble, postamble=postamble,
                       ledger=ledger, timeline=tl, label="prop")
    return timing, ledger, tl.loops[0], injector


def check_reconciliation(timing, ledger, rec):
    # category sums == totals: the decomposition identity survives faults
    parts = (timing.startup_cycles + timing.dispatch_cycles
             + timing.sync_cycles + timing.body_cycles
             + timing.pre_post_cycles + timing.fault_cycles)
    scale = max(abs(timing.total_time), 1.0)
    assert abs(parts - timing.total_time) <= REL * scale, (
        f"decomposition {parts} != total {timing.total_time}")
    # busy sums == busy_time: span accounting survives faults
    assert rec.total == timing.total_time
    assert rec.busy_span_sum() == pytest.approx(timing.busy_time, rel=REL)
    for s in rec.spans:
        assert s.start >= -1e-9 and s.end <= rec.total + 1e-9
    # fault attribution lands in the ledger, and only there
    assert ledger.fault == pytest.approx(timing.fault_cycles, rel=REL)


loop_shapes = dict(
    trips=st.integers(min_value=1, max_value=200),
    per=st.floats(min_value=0.5, max_value=200.0,
                  allow_nan=False, allow_infinity=False),
    chunk=st.integers(min_value=1, max_value=8),
    preamble=st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
    postamble=st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
    level=st.sampled_from(["C", "S", "X"]),
    config=st.sampled_from(["cedar1", "cedar2"]),
    plan_seed=st.integers(min_value=0, max_value=10_000),
)


@given(**loop_shapes)
@settings(max_examples=150, deadline=None)
def test_homogeneous_doall_invariants(trips, per, chunk, preamble,
                                      postamble, level, config, plan_seed):
    cfg = cedar_config1() if config == "cedar1" else cedar_config2()
    plan = FaultPlan.sample(plan_seed)
    timing, ledger, rec, inj = run_with_plan(
        plan, cfg, level, "doall", trips, per, chunk, preamble, postamble)
    check_reconciliation(timing, ledger, rec)
    healthy, _, _, _ = run_with_plan(
        None, cfg, level, "doall", trips, per, chunk, preamble, postamble)
    assert timing.total_time >= healthy.total_time * (1.0 - REL)
    assert timing.busy_time == healthy.busy_time  # faults are timing-only


@given(**loop_shapes)
@settings(max_examples=100, deadline=None)
def test_heterogeneous_simulation_invariants(trips, per, chunk, preamble,
                                             postamble, level, config,
                                             plan_seed):
    cfg = cedar_config1() if config == "cedar1" else cedar_config2()
    plan = FaultPlan.sample(plan_seed)
    costs = [per * (1.0 + (i % 5) / 3.0) for i in range(trips)]
    timing, ledger, rec, inj = run_with_plan(
        plan, cfg, level, "doall", trips, costs, chunk, preamble, postamble)
    check_reconciliation(timing, ledger, rec)
    healthy, _, _, _ = run_with_plan(
        None, cfg, level, "doall", trips, costs, chunk, preamble, postamble)
    assert timing.total_time >= healthy.total_time * (1.0 - REL)


@given(**loop_shapes)
@settings(max_examples=100, deadline=None)
def test_doacross_invariants(trips, per, chunk, preamble, postamble, level,
                             config, plan_seed):
    cfg = cedar_config1() if config == "cedar1" else cedar_config2()
    plan = FaultPlan.sample(plan_seed)
    timing, ledger, rec, inj = run_with_plan(
        plan, cfg, level, "doacross", trips, per,
        preamble=preamble, postamble=postamble)
    check_reconciliation(timing, ledger, rec)
    healthy, _, _, _ = run_with_plan(
        None, cfg, level, "doacross", trips, per,
        preamble=preamble, postamble=postamble)
    assert timing.total_time >= healthy.total_time * (1.0 - REL)
    # every lost signal was counted by the injector (stateless draws)
    assert inj.sync_retries == sum(
        1 for i in range(trips) if plan.sync_lost(i))


@given(trips=st.integers(min_value=1, max_value=100),
       per=st.floats(min_value=0.5, max_value=100.0, allow_nan=False),
       order=st.sampled_from(["doall", "doacross"]),
       level=st.sampled_from(["C", "S", "X"]))
@settings(max_examples=100, deadline=None)
def test_inactive_plan_is_bit_identical(trips, per, order, level):
    """A default FaultPlan must be a guaranteed no-op — same floats."""
    cfg = cedar_config1()
    faulted, ledger, _, _ = run_with_plan(
        FaultPlan(), cfg, level, order, trips, per)
    healthy, hledger, _, _ = run_with_plan(
        None, cfg, level, order, trips, per)
    assert faulted.total_time == healthy.total_time
    assert faulted.busy_time == healthy.busy_time
    assert faulted.fault_cycles == 0.0
    assert ledger.total() == hledger.total()
    assert ledger.fault == 0.0


@given(plan_seed=st.integers(min_value=0, max_value=10_000),
       p=st.integers(min_value=1, max_value=32))
@settings(max_examples=200, deadline=None)
def test_survivors_never_empty(plan_seed, p):
    """No plan can kill every worker — deadlock-free by construction."""
    plan = FaultPlan.sample(plan_seed)
    survivors = plan.survivors(p)
    assert len(survivors) >= 1
    assert all(0 <= w < p for w in survivors)
