"""Hardened harness: watchdog, crash isolation, checkpoint journal."""

import signal
import threading
import time

import pytest

from repro.errors import BudgetExceededError, ReproError
from repro.faults.harness import (FaultReport, SweepJournal, run_isolated,
                                  watchdog)

HAS_SIGALRM = hasattr(signal, "SIGALRM")


def _busy_wait(seconds: float) -> None:
    """Spin in Python bytecodes (async-exception interruptible), unlike
    ``time.sleep`` which blocks in C until it returns."""
    end = time.monotonic() + seconds
    while time.monotonic() < end:
        pass


class TestWatchdog:
    def test_disabled_is_a_noop(self):
        for seconds in (None, 0, -1.0):
            with watchdog(seconds):
                pass

    @pytest.mark.skipif(not HAS_SIGALRM, reason="needs SIGALRM")
    def test_fires_on_timeout(self):
        with pytest.raises(BudgetExceededError, match="wall-clock"):
            with watchdog(0.05, label="sleepy"):
                time.sleep(5.0)

    @pytest.mark.skipif(not HAS_SIGALRM, reason="needs SIGALRM")
    def test_no_fire_when_fast(self):
        with watchdog(5.0):
            x = sum(range(100))
        assert x == 4950
        # the alarm must be fully disarmed afterwards
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0

    @pytest.mark.skipif(not HAS_SIGALRM, reason="needs SIGALRM")
    def test_nested_inner_fires_and_outer_restored(self):
        with watchdog(30.0, label="outer"):
            with pytest.raises(BudgetExceededError, match="inner"):
                with watchdog(0.05, label="inner"):
                    time.sleep(5.0)
            # back under the outer guard: timer re-armed
            assert signal.getitimer(signal.ITIMER_REAL)[0] > 0.0
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0


class TestWatchdogThreadFallback:
    """Watchdogs armed off the main thread use the timer fallback —
    they must fire, not silently degrade to a no-op."""

    def _in_thread(self, fn):
        box = {}

        def runner():
            try:
                box["result"] = fn()
            except BaseException as exc:  # noqa: BLE001 - test capture
                box["error"] = exc

        t = threading.Thread(target=runner)
        t.start()
        t.join(30.0)
        assert not t.is_alive(), "worker thread hung"
        return box

    def test_fires_in_worker_thread(self):
        def work():
            with watchdog(0.05, label="threaded"):
                _busy_wait(10.0)

        box = self._in_thread(work)
        assert isinstance(box.get("error"), BudgetExceededError)
        # the async-raised error is re-stamped with the label/budget text
        assert "threaded" in str(box["error"])
        assert "wall-clock" in str(box["error"])

    def test_no_fire_when_fast_in_thread(self):
        def work():
            with watchdog(5.0, label="quick"):
                return sum(range(1000))

        box = self._in_thread(work)
        assert box.get("result") == 499500 and "error" not in box

    def test_late_fire_does_not_leak_into_later_code(self):
        # the timer firing just as the block completes must never
        # deliver the timeout into unrelated code after the watchdog
        def work():
            for _ in range(50):
                with watchdog(0.001, label="racy"):
                    pass        # completes ~when the timer fires
                _busy_wait(0.002)   # pending exc would surface here
            return "survived"

        box = self._in_thread(work)
        assert box.get("result") == "survived", box.get("error")

    def test_nested_inner_fires_outer_still_armed(self):
        def work():
            events = []
            with watchdog(0.5, label="outer"):
                try:
                    with watchdog(0.05, label="inner"):
                        _busy_wait(10.0)
                except BudgetExceededError as exc:
                    events.append(("inner", str(exc)))
                # the outer timer is independent: it must still fire
                try:
                    _busy_wait(10.0)
                except BudgetExceededError as exc:
                    events.append(("outer", str(exc)))
            return events

        box = self._in_thread(work)
        events = box.get("result")
        assert events is not None, box.get("error")
        assert [name for name, _ in events] == ["inner", "outer"]
        assert "inner" in events[0][1]
        assert "outer" in events[1][1]

    def test_run_isolated_timeout_in_thread(self):
        # the composition sweeps/the server actually use: run_isolated
        # off the main thread classifies a stall as kind "timeout"
        def work():
            return run_isolated(lambda: _busy_wait(10.0),
                                label="stall", timeout=0.05)

        box = self._in_thread(work)
        result, fault = box["result"]
        assert result is None
        assert fault.kind == "timeout"


class TestRunIsolated:
    def test_success_passes_result_through(self):
        result, fault = run_isolated(lambda: 42, label="ok")
        assert result == 42 and fault is None

    def test_repro_error_is_kind_error(self):
        def boom():
            raise ReproError("modelled failure")

        result, fault = run_isolated(boom, label="w")
        assert result is None
        assert fault.kind == "error"
        assert fault.error_type == "ReproError"
        assert "modelled failure" in fault.message

    def test_unexpected_error_is_kind_internal(self):
        result, fault = run_isolated(lambda: 1 / 0, label="w")
        assert fault.kind == "internal"
        assert fault.error_type == "ZeroDivisionError"
        assert "ZeroDivisionError" in fault.traceback

    @pytest.mark.skipif(not HAS_SIGALRM, reason="needs SIGALRM")
    def test_timeout_is_kind_timeout(self):
        result, fault = run_isolated(lambda: time.sleep(5.0),
                                     label="slow", timeout=0.05)
        assert fault.kind == "timeout"
        assert fault.elapsed_s < 2.0

    def test_never_isolates_system_exit(self):
        with pytest.raises(SystemExit):
            run_isolated(lambda: (_ for _ in ()).throw(SystemExit(3)),
                         label="w")

    def test_report_round_trips_to_dict(self):
        _, fault = run_isolated(lambda: 1 / 0, label="w")
        d = fault.to_dict()
        assert set(d) == {"label", "kind", "error_type", "message",
                          "elapsed_s", "traceback", "detail"}

    def test_traceback_trimmed(self):
        def deep(n=0):
            if n > 400:
                raise ValueError("bottom")
            deep(n + 1)

        _, fault = run_isolated(deep, label="w")
        assert len(fault.traceback) <= 4100
        assert "bottom" in fault.traceback  # the tail is what's kept


class TestSweepJournal:
    def test_none_path_is_noop(self):
        j = SweepJournal(None)
        j.record("a", {"x": 1})
        assert "a" in j and j.payload("a") == {"x": 1}
        j.clear()

    def test_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        j = SweepJournal(path)
        j.record("tridag:chaos", {"ok": True})
        j.record("cg:healthy", {"ok": False})
        j2 = SweepJournal(path)
        assert "tridag:chaos" in j2 and "cg:healthy" in j2
        assert j2.payload("cg:healthy") == {"ok": False}
        assert set(j2.completed) == {"tridag:chaos", "cg:healthy"}

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        j = SweepJournal(path)
        j.record("done", {"n": 1})
        with path.open("a") as fh:
            fh.write('{"key": "half-writ')  # killed mid-write
        j2 = SweepJournal(path)
        assert "done" in j2
        assert "half-writ" not in j2.completed

    def test_torn_middle_line_resume(self, tmp_path):
        # a torn write is not always the tail: a crashed parallel writer
        # can leave a mangled line *between* intact ones — resume must
        # keep every intact entry on both sides
        path = tmp_path / "journal.jsonl"
        j = SweepJournal(path)
        j.record("first", {"n": 1})
        j.record("second", {"n": 2})
        lines = path.read_text().splitlines()
        lines.insert(1, '{"key": "torn-mid')    # mid-line torn write
        path.write_text("\n".join(lines) + "\n")
        j2 = SweepJournal(path)
        assert "first" in j2 and "second" in j2
        assert j2.payload("second") == {"n": 2}
        assert set(j2.completed) == {"first", "second"}

    def test_record_after_torn_resume(self, tmp_path):
        # resuming over a torn line and then recording more work must
        # append cleanly; a third load sees old and new entries
        path = tmp_path / "journal.jsonl"
        j = SweepJournal(path)
        j.record("done", {"n": 1})
        with path.open("a") as fh:
            fh.write('{"key": "half')          # killed mid-write
        j2 = SweepJournal(path)
        j2.record("later", {"n": 2})
        j3 = SweepJournal(path)
        assert set(j3.completed) == {"done", "later"}
        assert j3.payload("later") == {"n": 2}

    def test_clear_removes_file(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        j = SweepJournal(path)
        j.record("a")
        assert path.exists()
        j.clear()
        assert not path.exists() and "a" not in j


class TestFaultReportClassification:
    def test_budget_beats_repro(self):
        # BudgetExceededError is a ReproError; timeout must win
        fr = FaultReport.from_exception("w", BudgetExceededError("late"))
        assert fr.kind == "timeout"
