"""Hardened harness: watchdog, crash isolation, checkpoint journal."""

import signal
import time

import pytest

from repro.errors import BudgetExceededError, ReproError
from repro.faults.harness import (FaultReport, SweepJournal, run_isolated,
                                  watchdog)

HAS_SIGALRM = hasattr(signal, "SIGALRM")


class TestWatchdog:
    def test_disabled_is_a_noop(self):
        for seconds in (None, 0, -1.0):
            with watchdog(seconds):
                pass

    @pytest.mark.skipif(not HAS_SIGALRM, reason="needs SIGALRM")
    def test_fires_on_timeout(self):
        with pytest.raises(BudgetExceededError, match="wall-clock"):
            with watchdog(0.05, label="sleepy"):
                time.sleep(5.0)

    @pytest.mark.skipif(not HAS_SIGALRM, reason="needs SIGALRM")
    def test_no_fire_when_fast(self):
        with watchdog(5.0):
            x = sum(range(100))
        assert x == 4950
        # the alarm must be fully disarmed afterwards
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0

    @pytest.mark.skipif(not HAS_SIGALRM, reason="needs SIGALRM")
    def test_nested_inner_fires_and_outer_restored(self):
        with watchdog(30.0, label="outer"):
            with pytest.raises(BudgetExceededError, match="inner"):
                with watchdog(0.05, label="inner"):
                    time.sleep(5.0)
            # back under the outer guard: timer re-armed
            assert signal.getitimer(signal.ITIMER_REAL)[0] > 0.0
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0


class TestRunIsolated:
    def test_success_passes_result_through(self):
        result, fault = run_isolated(lambda: 42, label="ok")
        assert result == 42 and fault is None

    def test_repro_error_is_kind_error(self):
        def boom():
            raise ReproError("modelled failure")

        result, fault = run_isolated(boom, label="w")
        assert result is None
        assert fault.kind == "error"
        assert fault.error_type == "ReproError"
        assert "modelled failure" in fault.message

    def test_unexpected_error_is_kind_internal(self):
        result, fault = run_isolated(lambda: 1 / 0, label="w")
        assert fault.kind == "internal"
        assert fault.error_type == "ZeroDivisionError"
        assert "ZeroDivisionError" in fault.traceback

    @pytest.mark.skipif(not HAS_SIGALRM, reason="needs SIGALRM")
    def test_timeout_is_kind_timeout(self):
        result, fault = run_isolated(lambda: time.sleep(5.0),
                                     label="slow", timeout=0.05)
        assert fault.kind == "timeout"
        assert fault.elapsed_s < 2.0

    def test_never_isolates_system_exit(self):
        with pytest.raises(SystemExit):
            run_isolated(lambda: (_ for _ in ()).throw(SystemExit(3)),
                         label="w")

    def test_report_round_trips_to_dict(self):
        _, fault = run_isolated(lambda: 1 / 0, label="w")
        d = fault.to_dict()
        assert set(d) == {"label", "kind", "error_type", "message",
                          "elapsed_s", "traceback", "detail"}

    def test_traceback_trimmed(self):
        def deep(n=0):
            if n > 400:
                raise ValueError("bottom")
            deep(n + 1)

        _, fault = run_isolated(deep, label="w")
        assert len(fault.traceback) <= 4100
        assert "bottom" in fault.traceback  # the tail is what's kept


class TestSweepJournal:
    def test_none_path_is_noop(self):
        j = SweepJournal(None)
        j.record("a", {"x": 1})
        assert "a" in j and j.payload("a") == {"x": 1}
        j.clear()

    def test_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        j = SweepJournal(path)
        j.record("tridag:chaos", {"ok": True})
        j.record("cg:healthy", {"ok": False})
        j2 = SweepJournal(path)
        assert "tridag:chaos" in j2 and "cg:healthy" in j2
        assert j2.payload("cg:healthy") == {"ok": False}
        assert set(j2.completed) == {"tridag:chaos", "cg:healthy"}

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        j = SweepJournal(path)
        j.record("done", {"n": 1})
        with path.open("a") as fh:
            fh.write('{"key": "half-writ')  # killed mid-write
        j2 = SweepJournal(path)
        assert "done" in j2
        assert "half-writ" not in j2.completed

    def test_clear_removes_file(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        j = SweepJournal(path)
        j.record("a")
        assert path.exists()
        j.clear()
        assert not path.exists() and "a" not in j


class TestFaultReportClassification:
    def test_budget_beats_repro(self):
        # BudgetExceededError is a ReproError; timeout must win
        fr = FaultReport.from_exception("w", BudgetExceededError("late"))
        assert fr.kind == "timeout"
