"""The repro.faults CLI and the shared exit-code convention."""

import json

import pytest

from repro.faults.__main__ import main


def test_list_exits_zero(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "chaos" in out and "healthy" in out


def test_unknown_scenario_is_usage_error():
    with pytest.raises(SystemExit) as exc:
        main(["sweep", "--scenarios", "meteor-strike"])
    assert exc.value.code == 2


def test_unknown_workload_is_usage_error(capsys):
    assert main(["sweep", "--workloads", "nope", "--scenarios",
                 "healthy"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_quick_cell_sweep_ok(tmp_path, capsys):
    out = tmp_path / "faults.json"
    rc = main(["sweep", "--quick", "--workloads", "tridag",
               "--scenarios", "healthy", "dead-ce", "-o", str(out)])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["schema"] == "repro-faults/1"
    assert payload["summary"]["ok"] == 2
    assert "fault sweep: 2/2 cells" in capsys.readouterr().out


def test_json_goes_to_stdout(capsys):
    rc = main(["sweep", "--quick", "--workloads", "tridag",
               "--scenarios", "healthy", "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro-faults/1"
