"""Integration tests for the Table 1 linear-algebra workloads.

Three layers per routine:

1. the serial Fortran source parses and, interpreted, computes a result
   numpy validates (correct algorithm);
2. the restructured (Cedar Fortran) program computes the **same** result
   under the parallel-simulating interpreter (correct transformation);
3. the restructurer parallelized what the paper says it parallelized.
"""

import numpy as np
import pytest

from repro.api import restructure
from repro.execmodel.interp import Interpreter
from repro.fortran.parser import parse_program
from repro.restructurer.options import RestructurerOptions
from repro.workloads.linalg import LINALG_ROUTINES

SMALL_N = {
    "cg": 24, "ludcmp": 24, "lubksb": 24, "sparse": 24, "gaussj": 24,
    "svbksb": 16, "svdcmp": 16, "mprove": 20, "toeplz": 20, "tridag": 24,
}


@pytest.fixture(params=sorted(LINALG_ROUTINES), scope="module")
def routine(request):
    return LINALG_ROUTINES[request.param]


class TestSerialCorrectness:
    def test_parses(self, routine):
        sf = parse_program(routine.source)
        assert any(u.name == routine.entry for u in sf.units)

    def test_computes_correct_result(self, routine):
        n = SMALL_N[routine.name]
        args, aux = routine.make_args(n, np.random.default_rng(3))
        res = Interpreter(parse_program(routine.source),
                          processors=1).call(routine.entry, *args)
        assert routine.verify(n, aux, res), routine.name


class TestRestructuredEquivalence:
    @pytest.mark.parametrize("processors", [2, 8])
    def test_parallel_matches_serial(self, routine, processors):
        n = SMALL_N[routine.name]
        cedar, _ = restructure(parse_program(routine.source))
        a0, _ = routine.make_args(n, np.random.default_rng(11))
        a1, _ = routine.make_args(n, np.random.default_rng(11))
        r0 = Interpreter(parse_program(routine.source),
                         processors=1).call(routine.entry, *a0)
        r1 = Interpreter(cedar, processors=processors).call(
            routine.entry, *a1)
        for key in r0:
            assert np.allclose(np.asarray(r0[key], dtype=float),
                               np.asarray(r1[key], dtype=float),
                               atol=1e-4, rtol=1e-4), (routine.name, key)

    def test_restructured_still_verifies(self, routine):
        n = SMALL_N[routine.name]
        cedar, _ = restructure(parse_program(routine.source))
        args, aux = routine.make_args(n, np.random.default_rng(5))
        res = Interpreter(cedar, processors=4).call(routine.entry, *args)
        assert routine.verify(n, aux, res), routine.name


class TestParallelizationShape:
    def test_parallel_routines_get_parallel_loops(self):
        """The paper: 'in all but two of the routines the compiler was able
        to parallelize all major loops'."""
        for name in ("cg", "sparse", "gaussj", "svbksb", "mprove", "ludcmp"):
            r = LINALG_ROUTINES[name]
            _, rep = restructure(parse_program(r.source))
            parallel = sum(u.parallelized_loops for u in rep.units.values())
            assert parallel >= 1, name

    def test_tridag_stays_serial(self):
        r = LINALG_ROUTINES["tridag"]
        _, rep = restructure(parse_program(r.source))
        assert all(p.chosen == "serial"
                   for u in rep.units.values() for p in u.plans)

    def test_cg_uses_library_dotproducts(self):
        r = LINALG_ROUTINES["cg"]
        cedar, rep = restructure(parse_program(r.source))
        from repro.cedar.unparse import unparse_cedar

        text = unparse_cedar(cedar)
        assert "ces_dotproduct" in text or "ces_sum" in text
