"""Integration tests for the Perfect Benchmarks proxies.

For every program: the automatic and the manual restructurings both
preserve semantics, and the manual configuration unlocks the loops its
documented §4.1 techniques are supposed to unlock.
"""

import numpy as np
import pytest

from repro.api import restructure
from repro.cedar.nodes import contains_parallelism
from repro.execmodel.interp import Interpreter
from repro.fortran.parser import parse_program
from repro.restructurer.options import RestructurerOptions
from repro.workloads.perfect import PERFECT_PROGRAMS

TEST_N = 16

#: programs whose results are order-sensitive only up to a permutation
#: (the critical-section hits list)
PERMUTATION_OK = {"TRACK"}


def _equivalent(name, r0, r1):
    for key in r0:
        x = np.asarray(r0[key], dtype=float)
        y = np.asarray(r1[key], dtype=float)
        if name in PERMUTATION_OK and getattr(x, "ndim", 0):
            x, y = np.sort(x.ravel()), np.sort(y.ravel())
        if not np.allclose(x, y, atol=1e-4, rtol=1e-3):
            return False, key
    return True, None


@pytest.fixture(params=sorted(PERFECT_PROGRAMS), scope="module")
def program(request):
    return PERFECT_PROGRAMS[request.param]


class TestEquivalence:
    @pytest.mark.parametrize("mode", ["auto", "manual"])
    def test_restructured_matches_serial(self, program, mode):
        opts = (RestructurerOptions.automatic() if mode == "auto"
                else RestructurerOptions.manual())
        cedar, _ = restructure(parse_program(program.source), opts)
        a0, _ = program.make_args(TEST_N, np.random.default_rng(7))
        a1, _ = program.make_args(TEST_N, np.random.default_rng(7))
        r0 = Interpreter(parse_program(program.source),
                         processors=1).call(program.entry, *a0)
        r1 = Interpreter(cedar, processors=4).call(program.entry, *a1)
        ok, key = _equivalent(program.name, r0, r1)
        assert ok, (program.name, mode, key)


class TestTechniqueUnlocks:
    """Each proxy's key loop must stay serial automatically and
    parallelize under the technique set the paper names for it."""

    @pytest.mark.parametrize("name", ["FLO52", "BDNA", "DYFESM", "MDG",
                                      "OCEAN", "TRACK", "TRFD", "SPEC77"])
    def test_manual_parallelizes_more(self, name):
        p = PERFECT_PROGRAMS[name]
        _, rep_a = restructure(parse_program(p.source),
                               RestructurerOptions.automatic())
        _, rep_m = restructure(parse_program(p.source),
                               RestructurerOptions.manual())

        def outer_parallel(rep):
            # the report's first plan per unit is the outermost hot loop
            for u in rep.units.values():
                for pl in u.plans:
                    if pl.parallelized and pl.chosen != "library":
                        return True
            return False

        a_serial_outers = sum(
            1 for u in rep_a.units.values() for pl in u.plans
            if pl.chosen == "serial")
        m_serial_outers = sum(
            1 for u in rep_m.units.values() for pl in u.plans
            if pl.chosen == "serial")
        assert m_serial_outers < max(a_serial_outers, 1), name

    def test_mdg_needs_array_reductions(self):
        """MDG: 'very little speedup is possible without it'."""
        p = PERFECT_PROGRAMS["MDG"]
        auto_plans = self._plans(p, RestructurerOptions.automatic())
        manual_plans = self._plans(p, RestructurerOptions.manual())
        assert auto_plans[0] == "serial"
        assert manual_plans[0] != "serial"

    def test_track_uses_critical_section(self):
        p = PERFECT_PROGRAMS["TRACK"]
        manual_plans = self._plans(p, RestructurerOptions.manual())
        assert "critical-xdoall" in manual_plans

    def test_ocean_uses_runtime_test(self):
        p = PERFECT_PROGRAMS["OCEAN"]
        manual_plans = self._plans(p, RestructurerOptions.manual())
        assert "runtime-two-version" in manual_plans

    def test_trfd_needs_giv_and_inlining(self):
        p = PERFECT_PROGRAMS["TRFD"]
        auto = self._plans(p, RestructurerOptions.automatic())
        manual = self._plans(p, RestructurerOptions.manual())
        # automatically, the call-hidden induction keeps the nests serial
        assert "serial" in auto
        assert any(c in ("sdoall-cdoall", "xdoall", "xdoall-vector",
                         "cdoall", "cdoall-vector") for c in manual)

    def test_qcd_rng_cycle_never_parallelizes(self):
        """The footnote: the seed recurrence must not be broken by an
        unordered critical section — both configurations keep it serial."""
        p = PERFECT_PROGRAMS["QCD"]
        for opts in (RestructurerOptions.automatic(),
                     RestructurerOptions.manual()):
            cedar, rep = restructure(parse_program(p.source), opts)
            first_plan = next(pl for u in rep.units.values()
                              for pl in u.plans)
            assert first_plan.chosen == "serial"

    @staticmethod
    def _plans(p, opts):
        _, rep = restructure(parse_program(p.source), opts)
        return [pl.chosen for u in rep.units.values() for pl in u.plans]
